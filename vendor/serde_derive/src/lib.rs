//! Vendored minimal `#[derive(Serialize, Deserialize)]` for the offline
//! build. Parses the item's token stream by hand (no syn/quote) and emits
//! impls of the vendored `serde::Serialize`/`serde::Deserialize` traits with
//! upstream-serde JSON semantics:
//!
//! - named struct  -> `{"field": value, ...}`
//! - newtype struct -> inner value
//! - tuple struct  -> `[v0, v1, ...]`
//! - unit enum variant    -> `"Variant"`
//! - newtype enum variant -> `{"Variant": value}`
//! - tuple enum variant   -> `{"Variant": [v0, ...]}`
//! - struct enum variant  -> `{"Variant": {"field": value, ...}}`
//!
//! Limitations (checked, not silent): no generic types, no `#[serde(...)]`
//! attributes. Nothing in this workspace needs either.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    match self.peek() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                            self.pos += 1;
                        }
                        _ => panic!("serde_derive: expected [...] after #"),
                    }
                }
                _ => break,
            }
        }
    }

    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1; // pub(crate) etc.
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, found {other:?}"),
        }
    }

    /// Skip tokens until a top-level comma (outside any `<...>` nesting);
    /// consumes the comma. Used to skip field types.
    fn skip_type_to_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.pos += 1;
                    return;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Count fields of a tuple-struct/-variant body: top-level comma-separated,
/// possibly with trailing comma.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut fields = 0usize;
    let mut in_field = false;
    for t in body {
        match t {
            TokenTree::Punct(ref p) if p.as_char() == '<' => {
                angle += 1;
                in_field = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == '>' => {
                angle -= 1;
                in_field = true;
            }
            TokenTree::Punct(ref p) if p.as_char() == ',' && angle == 0 => {
                if in_field {
                    fields += 1;
                }
                in_field = false;
            }
            _ => in_field = true,
        }
    }
    if in_field {
        fields += 1;
    }
    fields
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(body);
    let mut fields = Vec::new();
    while cur.peek().is_some() {
        cur.skip_attributes();
        cur.skip_visibility();
        let name = cur.expect_ident();
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        cur.skip_type_to_comma();
        fields.push(Field { name });
    }
    fields
}

fn parse_item(input: TokenStream) -> Item {
    let mut cur = Cursor::new(input);
    cur.skip_attributes();
    cur.skip_visibility();
    let kw = cur.expect_ident();
    let name;
    match kw.as_str() {
        "struct" => {
            name = cur.expect_ident();
            if let Some(TokenTree::Punct(p)) = cur.peek() {
                if p.as_char() == '<' {
                    panic!("serde_derive (vendored): generic type `{name}` not supported");
                }
            }
            let shape = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde_derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            name = cur.expect_ident();
            if let Some(TokenTree::Punct(p)) = cur.peek() {
                if p.as_char() == '<' {
                    panic!("serde_derive (vendored): generic type `{name}` not supported");
                }
            }
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            let mut variants = Vec::new();
            let mut vcur = Cursor::new(body);
            while vcur.peek().is_some() {
                vcur.skip_attributes();
                let vname = vcur.expect_ident();
                let shape = match vcur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let s = Shape::Tuple(count_tuple_fields(g.stream()));
                        vcur.pos += 1;
                        s
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let s = Shape::Named(parse_named_fields(g.stream()));
                        vcur.pos += 1;
                        s
                    }
                    _ => Shape::Unit,
                };
                // Consume the separating comma (tolerate trailing/absent).
                if let Some(TokenTree::Punct(p)) = vcur.peek() {
                    if p.as_char() == ',' {
                        vcur.pos += 1;
                    } else if p.as_char() == '=' {
                        panic!("serde_derive (vendored): explicit discriminants not supported");
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

/// Emit statements serializing an object body `{"f": <expr>, ...}` where each
/// field value is reachable through `prefix` (e.g. `&self.` or `` for bound
/// pattern idents).
fn gen_named_body(fields: &[Field], access: impl Fn(&str) -> String, out: &mut String) {
    out.push_str("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            out.push_str("out.push(',');\n");
        }
        out.push_str(&format!(
            "out.push_str(\"\\\"{}\\\":\");\nserde::Serialize::serialize_json({}, out);\n",
            f.name,
            access(&f.name)
        ));
    }
    out.push_str("out.push('}');\n");
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let type_name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name.clone(),
    };
    match item {
        Item::Struct { shape, .. } => match shape {
            Shape::Named(fields) => {
                gen_named_body(fields, |f| format!("&self.{f}"), &mut body);
            }
            Shape::Tuple(1) => {
                body.push_str("serde::Serialize::serialize_json(&self.0, out);\n");
            }
            Shape::Tuple(n) => {
                body.push_str("out.push('[');\n");
                for i in 0..*n {
                    if i > 0 {
                        body.push_str("out.push(',');\n");
                    }
                    body.push_str(&format!(
                        "serde::Serialize::serialize_json(&self.{i}, out);\n"
                    ));
                }
                body.push_str("out.push(']');\n");
            }
            Shape::Unit => body.push_str("out.push_str(\"null\");\n"),
        },
        Item::Enum { name, variants } => {
            if variants.is_empty() {
                body.push_str("match *self {}\n");
            } else {
                body.push_str("match self {\n");
                for v in variants {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => {
                            body.push_str(&format!(
                                "{name}::{vn} => serde::write_json_string(\"{vn}\", out),\n"
                            ));
                        }
                        Shape::Tuple(1) => {
                            body.push_str(&format!(
                                "{name}::{vn}(f0) => {{\nout.push_str(\"{{\\\"{vn}\\\":\");\nserde::Serialize::serialize_json(f0, out);\nout.push('}}');\n}}\n"
                            ));
                        }
                        Shape::Tuple(n) => {
                            let pats: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            body.push_str(&format!(
                                "{name}::{vn}({}) => {{\nout.push_str(\"{{\\\"{vn}\\\":[\");\n",
                                pats.join(", ")
                            ));
                            for (i, p) in pats.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                body.push_str(&format!(
                                    "serde::Serialize::serialize_json({p}, out);\n"
                                ));
                            }
                            body.push_str("out.push_str(\"]}\");\n}\n");
                        }
                        Shape::Named(fields) => {
                            let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                            body.push_str(&format!(
                                "{name}::{vn} {{ {} }} => {{\nout.push_str(\"{{\\\"{vn}\\\":\");\n",
                                pats.join(", ")
                            ));
                            gen_named_body(fields, |f| f.to_string(), &mut body);
                            body.push_str("out.push('}');\n}\n");
                        }
                    }
                }
                body.push_str("}\n");
            }
        }
    }
    format!(
        "impl serde::Serialize for {type_name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\
         }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = match &item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!("impl serde::Deserialize for {name} {{}}\n")
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
