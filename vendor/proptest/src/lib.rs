//! Vendored minimal stand-in for `proptest` so the workspace builds and
//! tests offline. Implements the subset regnet's property tests use:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] ... }`
//!   with one or more `pattern in strategy` bindings per test;
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! - range strategies over ints and floats, `any::<T>()`, tuple strategies,
//!   `.prop_map`, `Just`, `prop::sample::select`, `prop::collection::vec`.
//!
//! Sampling is deterministic: the RNG is seeded from a hash of the test's
//! module path and name, so failures reproduce run-to-run. Unlike upstream
//! there is **no shrinking** — a failing case reports the case index and the
//! assertion message only.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Why a single case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// Upstream-compatible alias.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Deterministic xoshiro256++ used to drive all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn seeded(seed: u64) -> TestRng {
            let mut st = seed;
            TestRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }

        /// Seed from the fully-qualified test name so every test draws an
        /// independent, reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform in `[0, n)`, n > 0.
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;
pub use test_runner::{Config, TestCaseError};

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// `.prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end);
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `vec(element, len_range)`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[doc(hidden)]
pub struct CaseReport<'a> {
    pub test: &'a str,
    pub case: u32,
}

impl fmt::Display for CaseReport<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} case #{}", self.test, self.case)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let strategy = ($($strat,)+);
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::for_test(test_name);
            for case in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!("[{} case {}/{}] {}", test_name, case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\nassertion failed: left {:?} != right {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}\nassertion failed: both sides are {:?}", format!($($fmt)+), l),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let s = (0u32..100, crate::sample::select(vec![1u8, 2, 3]));
        let mut r1 = crate::test_runner::TestRng::for_test("x");
        let mut r2 = crate::test_runner::TestRng::for_test("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold((a, b) in (1u32..10, 5usize..9), f in 0.25f64..0.75) {
            prop_assert!((1..10).contains(&a));
            prop_assert!((5..9).contains(&b));
            prop_assert!((0.25..0.75).contains(&f), "f was {}", f);
        }

        #[test]
        fn mapping_works(v in (0u32..5).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert_ne!(v, 11);
        }

        #[test]
        fn collections_and_any(xs in prop::collection::vec(0u32..16, 0..3), seed in any::<u64>()) {
            prop_assert!(xs.len() < 3);
            for x in xs {
                prop_assert!(x < 16, "x={} seed={}", x, seed);
            }
        }
    }
}
