//! Vendored minimal stand-in for `serde_json` so the workspace builds
//! offline. Supports the serialization half only — `to_string` and
//! `to_string_pretty` over the vendored `serde::Serialize` trait (regnet
//! never parses JSON). Pretty output re-indents the compact form with a
//! small string-aware formatter (2-space indent, serde_json style).

use std::fmt;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Pretty-printed JSON (2-space indentation, matching upstream serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(pretty(&compact))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut chars = compact.chars().peekable();
    let push_indent = |out: &mut String, n: usize| {
        out.push('\n');
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                // Copy the string literal verbatim, honouring escapes.
                out.push('"');
                while let Some(s) = chars.next() {
                    out.push(s);
                    if s == '\\' {
                        if let Some(esc) = chars.next() {
                            out.push(esc);
                        }
                    } else if s == '"' {
                        break;
                    }
                }
            }
            '{' | '[' => {
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(c);
                    out.push(close);
                    chars.next();
                } else {
                    out.push(c);
                    indent += 1;
                    push_indent(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                push_indent(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(',');
                push_indent(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_passthrough() {
        assert_eq!(to_string(&vec![1u8, 2]).unwrap(), "[1,2]");
    }

    #[test]
    fn pretty_shapes() {
        let v: Vec<(String, Vec<u32>)> = vec![("a".to_string(), vec![1, 2])];
        let p = to_string_pretty(&v).unwrap();
        assert_eq!(
            p,
            "[\n  [\n    \"a\",\n    [\n      1,\n      2\n    ]\n  ]\n]"
        );
        let empty: Vec<u8> = vec![];
        assert_eq!(to_string_pretty(&empty).unwrap(), "[]");
    }

    #[test]
    fn pretty_preserves_escaped_strings() {
        let s = "a\"b:{,}".to_string();
        let p = to_string_pretty(&s).unwrap();
        assert_eq!(p, "\"a\\\"b:{,}\"");
    }
}
