//! Vendored minimal stand-in for the `rand` crate so the workspace builds in
//! fully offline environments (no registry access).
//!
//! It is **not** the upstream crate: it implements exactly the API surface
//! regnet uses — `rngs::SmallRng` (xoshiro256++ seeded via splitmix64),
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` and
//! `seq::SliceRandom::shuffle` — with deterministic, portable output.
//! Streams differ from upstream rand, which is fine: the simulator only
//! requires a deterministic, well-mixed source, never a specific stream.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the generator's full bit stream
/// (the `Standard` distribution in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a u64 to `[0, n)` with a widening multiply. The modulo bias is at
/// most n/2^64, irrelevant at simulation scales, and the mapping is
/// deterministic and portable.
#[inline]
fn bounded(rng_word: u64, n: u64) -> u64 {
    ((rng_word as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

signed_range!(i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing convenience trait, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

mod small {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; the same family
    /// upstream rand's `SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod rngs {
    pub use super::small::SmallRng;
}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` API regnet uses.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::bounded(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::bounded(rng.next_u64(), self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
        for _ in 0..100 {
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations; identity is implausible");
    }
}
