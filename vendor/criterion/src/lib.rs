//! Vendored minimal stand-in for `criterion` so benches build and run
//! offline. Implements the API surface the regnet benches use — groups,
//! `sample_size`/`warm_up_time`/`measurement_time`/`throughput`,
//! `Bencher::{iter, iter_batched}`, the `criterion_group!`/`criterion_main!`
//! macros and `black_box` — with plain wall-clock timing: per benchmark it
//! warms up, then takes `sample_size` timed samples and prints mean /
//! min / max ns per iteration (plus derived throughput). No statistics
//! beyond that, no HTML reports, no comparison to saved baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How throughput is derived from iteration time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched`; the vendored harness always runs
/// one setup per measured invocation, so this is accepted and ignored.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    NumIterations(u64),
    PerIteration,
}

#[derive(Clone, Debug)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }
}

/// One benchmark's measured samples (ns per iteration).
struct Samples {
    per_iter_ns: Vec<f64>,
}

impl Samples {
    fn mean(&self) -> f64 {
        self.per_iter_ns.iter().sum::<f64>() / self.per_iter_ns.len().max(1) as f64
    }

    fn min(&self) -> f64 {
        self.per_iter_ns
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    fn max(&self) -> f64 {
        self.per_iter_ns.iter().copied().fold(0.0, f64::max)
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(id: &str, samples: &Samples, throughput: Option<Throughput>) {
    let mean = samples.mean();
    let mut line = format!(
        "{id:<50} time: [{} {} {}]",
        fmt_ns(samples.min()),
        fmt_ns(mean),
        fmt_ns(samples.max())
    );
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => format!("{:.3} Kelem/s", n as f64 / mean * 1e9 / 1e3),
            Throughput::Bytes(n) => {
                format!("{:.3} MiB/s", n as f64 / mean * 1e9 / (1 << 20) as f64)
            }
        };
        line.push_str(&format!("  thrpt: {per_sec}"));
    }
    println!("{line}");
}

/// Passed to the benchmark closure; records timing for the harness.
pub struct Bencher {
    settings: Settings,
    samples: Option<Samples>,
}

impl Bencher {
    /// Time `routine` repeatedly: warm-up phase, then `sample_size` samples
    /// whose iteration counts are sized to fill `measurement_time`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and calibrate: how many iterations fit in the warm-up
        // window tells us the per-iteration cost order of magnitude.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1 && warm_start.elapsed() >= self.settings.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.settings.measurement_time.as_secs_f64();
        let total_iters =
            ((budget / per_iter.max(1e-9)) as u64).max(self.settings.sample_size as u64);
        let iters_per_sample = (total_iters / self.settings.sample_size as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.settings.sample_size);
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.samples = Some(Samples { per_iter_ns });
    }

    /// Like `iter`, but with untimed per-invocation setup.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // One warm-up invocation to page everything in.
        black_box(routine(setup()));
        let mut per_iter_ns = Vec::with_capacity(self.settings.sample_size);
        let deadline = Instant::now() + self.settings.measurement_time;
        for i in 0..self.settings.sample_size {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            per_iter_ns.push(t.elapsed().as_nanos() as f64);
            black_box(out);
            // Keep at least two samples even if the budget is blown.
            if Instant::now() > deadline && i >= 1 {
                break;
            }
        }
        self.samples = Some(Samples { per_iter_ns });
    }

    /// Upstream-compatible alias used by some benches.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, routine: R) {
        self.iter(routine);
    }
}

/// A named collection of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.settings.throughput = Some(tp);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher {
            settings: self.settings.clone(),
            samples: None,
        };
        f(&mut b);
        match b.samples {
            Some(s) => report(&id, &s, self.settings.throughput),
            None => println!("{id:<50} (no measurement recorded)"),
        }
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings.clone();
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            settings,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            settings: self.settings.clone(),
            samples: None,
        };
        f(&mut b);
        match b.samples {
            Some(s) => report(&id, &s, self.settings.throughput),
            None => println!("{id:<50} (no measurement recorded)"),
        }
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("iter", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput)
        });
        group.finish();
        assert!(ran > 0);
    }
}
