//! Vendored minimal stand-in for `serde` so the workspace builds offline.
//!
//! The data model is deliberately narrow: `Serialize` writes JSON directly
//! into a `String` (that is the only serialization regnet performs — via
//! `serde_json::to_string_pretty`), and `Deserialize` is a marker trait so
//! `#[derive(Deserialize)]` on result types keeps compiling. The derive
//! macros live in the vendored `serde_derive` crate and emit impls of these
//! traits with upstream-serde JSON semantics (externally tagged enums,
//! `Option` as value-or-null, structs as objects).

pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker so `#[derive(Deserialize)]` stays accepted; no input format is
/// implemented (nothing in regnet deserializes).
pub trait Deserialize: Sized {}

/// Escape and quote a string per RFC 8259.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // `1.0f64` displays as "1"; that is already a valid JSON number.
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self, out);
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        write_f64(*self as f64, out);
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}
impl Deserialize for char {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}
impl<T: Deserialize> Deserialize for Box<T> {}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {}
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for std::collections::BTreeSet<T> {}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: sort the serialized elements.
        let mut items: Vec<String> = self
            .iter()
            .map(|v| {
                let mut s = String::new();
                v.serialize_json(&mut s);
                s
            })
            .collect();
        items.sort();
        out.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(item);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}
impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_json(&self, out: &mut String) {
        // Deterministic output: sort entries by serialized key.
        let mut entries: Vec<(String, &V)> = self
            .iter()
            .map(|(k, v)| {
                let mut ks = String::new();
                k.serialize_json(&mut ks);
                (ks, v)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        out.push('{');
        for (i, (ks, v)) in entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if ks.starts_with('"') {
                out.push_str(ks);
            } else {
                // JSON object keys must be strings.
                write_json_string(ks, out);
            }
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut ks = String::new();
            k.serialize_json(&mut ks);
            if ks.starts_with('"') {
                out.push_str(&ks);
            } else {
                write_json_string(&ks, out);
            }
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize_json(&mut s);
        s
    }

    #[test]
    fn primitives() {
        assert_eq!(json(&3u32), "3");
        assert_eq!(json(&-7i64), "-7");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&1.0f64), "1");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&"a\"b\n".to_string()), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(json(&vec![1u8, 2, 3]), "[1,2,3]");
        assert_eq!(json(&[1u8, 2]), "[1,2]");
        assert_eq!(json(&Some(5u8)), "5");
        assert_eq!(json(&Option::<u8>::None), "null");
        assert_eq!(json(&(1u8, "x".to_string())), "[1,\"x\"]");
        assert_eq!(
            json(&vec![("a".to_string(), vec![1.0f64])]),
            "[[\"a\",[1]]]"
        );
    }
}
