//! Hotspot clinic: how a single overloaded host erodes each routing
//! scheme's throughput (the phenomenon behind the paper's Tables 1–3).
//!
//! Run with: `cargo run --release --example hotspot_clinic`

use regnet::prelude::*;

fn main() {
    let topo = gen::torus_2d(4, 4, 4).expect("topology");
    let cfg = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let opts = RunOptions {
        warmup_cycles: 20_000,
        measure_cycles: 60_000,
        seed: 5,
        ..RunOptions::default()
    };
    let search = ThroughputSearch {
        start: 0.003,
        growth: 1.4,
        ..ThroughputSearch::default()
    };
    let hotspot = HostId(37); // an arbitrary host away from the root switch

    println!("saturation throughput (flits/ns/switch) on a 4x4 torus, 4 hosts/switch\n");
    println!("hotspot%   UP/DOWN    ITB-SP    ITB-RR    (ITB-RR gain)");
    for fraction in [0.0, 0.05, 0.10, 0.20] {
        let pattern = if fraction == 0.0 {
            PatternSpec::Uniform
        } else {
            PatternSpec::Hotspot {
                fraction,
                host: hotspot,
            }
        };
        let mut row = Vec::new();
        for scheme in RoutingScheme::all() {
            let exp = Experiment::new(
                topo.clone(),
                scheme,
                RouteDbConfig::default(),
                pattern,
                cfg.clone(),
            )
            .expect("experiment");
            row.push(exp.find_throughput(&search, &opts));
        }
        println!(
            "{:>6.0}%    {:.4}    {:.4}    {:.4}    (x{:.2})",
            fraction * 100.0,
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        );
    }
    println!("\nthe hotspot host's single injection link caps everyone; the ITB");
    println!("schemes keep an edge because the rest of the traffic no longer");
    println!("competes for the root switch, but the gap narrows as the hotspot");
    println!("fraction grows — exactly the trend in the paper's Table 1.");
}
