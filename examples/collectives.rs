//! Collective phases, closed-loop: instead of an open-loop rate, inject a
//! fixed communication phase — broadcast, shift, halo exchange, bit
//! reversal, all-to-all — and measure its completion time under each
//! routing scheme.
//!
//! Run with: `cargo run --release --example collectives`

use rand::rngs::SmallRng;
use rand::SeedableRng;

use regnet::netsim::collective::run_collective;
use regnet::prelude::*;
use regnet::traffic::collectives;

fn main() {
    let topo = gen::torus_2d(8, 8, 1).unwrap();
    let cfg = SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    };
    let mut rng = SmallRng::seed_from_u64(4);

    let phases: Vec<(&str, Vec<(HostId, HostId)>)> = vec![
        (
            "broadcast from h0",
            collectives::broadcast(&topo, HostId(0)),
        ),
        ("gather to h0", collectives::gather(&topo, HostId(0))),
        ("shift by 8", collectives::shift(&topo, 8)),
        (
            "bit-reversal phase",
            collectives::bit_reversal_phase(&topo).unwrap(),
        ),
        (
            "halo exchange",
            collectives::neighbor_exchange(&topo, &mut rng),
        ),
        ("all-to-all", collectives::all_to_all(&topo)),
    ];

    println!("collective phase completion time (µs) — 8x8 torus, 64-byte messages\n");
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>11}",
        "phase", "messages", "UP/DOWN", "ITB-SP", "ITB-RR"
    );
    for (name, msgs) in &phases {
        print!("{name:<22} {:>9}", msgs.len());
        for scheme in RoutingScheme::all() {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            let s =
                run_collective(&topo, &db, cfg.clone(), msgs, 100_000_000, 1).expect("collective");
            print!(" {:>10.1}", s.makespan_ns / 1000.0);
        }
        println!();
    }
    println!("\nphases dominated by a single link (broadcast, gather, shift) are");
    println!("routing-insensitive; congestion-dominated phases (all-to-all, bit");
    println!("reversal) finish markedly faster with in-transit buffers.");
}
