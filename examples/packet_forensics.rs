//! Packet forensics: replay one packet's journey from the event journal.
//!
//! Drives the paper torus well past saturation, freezes it mid-flight,
//! asks the journal which packets are currently blocked, and prints the
//! most recently blocked packet's full life as a human-readable timeline —
//! injection, per-switch routing, the block itself and (for ITB schemes)
//! any in-transit-buffer hops. This is the terminal-only sibling of the
//! Chrome trace export: `probe --events trace.json` produces the same
//! story for every packet at once, Perfetto-rendered.
//!
//! Run with: `cargo run --release --example packet_forensics`

use regnet::core::{RouteDb, RouteDbConfig};
use regnet::prelude::*;
use regnet::traffic::Pattern;

fn main() {
    let topo = gen::torus_2d(8, 8, 8).expect("topology");
    let db = RouteDb::build(&topo, RoutingScheme::ItbSp, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).expect("pattern");
    // Offered load far beyond saturation: plenty of worms end the run
    // parked behind busy outputs, which is exactly what we want to dissect.
    let mut sim = Simulator::new(&topo, &db, &pattern, SimConfig::default(), 0.1, 11);
    sim.enable_counters();
    sim.enable_events(EventOptions {
        capacity: 1 << 18,
        ..EventOptions::default()
    });
    sim.run(30_000);

    let journal = sim.journal().expect("journal enabled");
    println!(
        "journal: {} events retained ({} recorded, {} evicted)\n",
        journal.len(),
        journal.recorded(),
        journal.evicted()
    );

    let blocked = journal.blocked_packets();
    println!("{} packets are blocked right now", blocked.len());
    let Some(&pid) = blocked.first() else {
        println!("nothing to dissect — raise the load or run longer");
        return;
    };

    println!("\n--- forensics for packet {pid} (most recently blocked) ---");
    for event in journal.journey(pid) {
        println!("  {}", event.describe());
    }

    println!("\nhow the whole run looked:");
    let snapshot = sim.counter_snapshot().expect("counters enabled");
    for line in snapshot.to_table().lines() {
        println!("  {line}");
    }
    println!(
        "\nread the timeline bottom-up: the last line says which output the\n\
         worm is parked behind; every earlier line is a hop it already won.\n\
         For the full picture load `probe --events trace.json` into Perfetto."
    );
}
