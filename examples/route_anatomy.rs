//! Route anatomy: a walk through the paper's Figures 1–3.
//!
//! Shows a minimal path that up*/down* routing forbids, the detour the
//! legal routing must take, and how the in-transit buffer mechanism splits
//! the minimal path into legal segments through an intermediate host.
//!
//! Run with: `cargo run --example route_anatomy`

use regnet::core::analysis::RouteStats;
use regnet::prelude::*;
use regnet::routing::minimal;

fn main() {
    // An 8-switch ring: small enough to trace by hand, cyclic enough that
    // up*/down* must forbid minimal paths somewhere.
    let mut b = TopologyBuilder::new("ring8", 4);
    b.add_switches(8);
    for i in 0..8u32 {
        b.connect(SwitchId(i), SwitchId((i + 1) % 8)).unwrap();
    }
    b.attach_hosts_everywhere(2).unwrap();
    let topo = b.build().unwrap();

    let tree = SpanningTree::bfs(&topo, SwitchId(0));
    let orient = Orientation::from_tree(&topo, &tree);
    println!("ring of 8 switches, BFS tree rooted at s0");
    println!(
        "tree levels: {:?}",
        topo.switches().map(|s| tree.level(s)).collect::<Vec<_>>()
    );

    // The far side of the ring: minimal path s3 -> s4 -> s5 crosses the
    // point diametrically opposite the root, where levels peak, so it must
    // contain a down -> up transition.
    let dm = DistanceMatrix::compute(&topo);
    let path = &minimal::k_minimal_paths(&topo, &dm, SwitchId(3), SwitchId(5), 1, 0)[0];
    println!(
        "\nminimal path {path}: legal under up*/down*? {}",
        path.is_legal(&orient)
    );
    if let Some(hop) = path.first_violation(&orient) {
        let sw = path.switches()[hop];
        println!("forbidden down->up transition at hop {hop} (switch {sw})");
    }

    // What the original routing must do instead: the shortest legal path.
    let legal = LegalDistances::to_dest(&topo, &orient, SwitchId(5));
    println!(
        "shortest legal distance s3 -> s5: {} links (minimal would be {})",
        legal.from(SwitchId(3)),
        dm.get(SwitchId(3), SwitchId(5))
    );

    // The ITB mechanism keeps the minimal path by splitting it.
    let template = split_minimal_path(&topo, &orient, path, ItbHostPicker::Spread);
    println!("\nITB split into {} segment(s):", template.segments.len());
    for (i, seg) in template.segments.iter().enumerate() {
        let switches: Vec<String> = seg.switches.iter().map(|s| s.to_string()).collect();
        match seg.end {
            SegmentEnd::Itb(h) => println!(
                "  segment {i}: {} -> eject into in-transit buffer at {h}",
                switches.join("->")
            ),
            SegmentEnd::Deliver => {
                println!("  segment {i}: {} -> deliver", switches.join("->"))
            }
        }
    }

    // Materialise for a concrete host pair and show the wire header.
    let src = topo.hosts_of(SwitchId(3))[0];
    let dst = topo.hosts_of(SwitchId(5))[1];
    let journey = template.materialise(src, dst, topo.host_port(dst));
    journey.validate().unwrap();
    println!(
        "\njourney {src} -> {dst}: {} header flits at injection \
         ({} port bytes + {} ITB mark(s) + 1 type byte)",
        journey.header_flits_at_injection(),
        journey
            .segments
            .iter()
            .map(|s| s.ports.len())
            .sum::<usize>(),
        journey.num_itbs()
    );

    // Finally: the same analysis over the whole paper-scale torus.
    let torus = gen::torus_2d(8, 8, 8).unwrap();
    for scheme in RoutingScheme::all() {
        let db = RouteDb::build(&torus, scheme, &RouteDbConfig::default());
        let stats = RouteStats::compute(&torus, &db);
        println!(
            "\n8x8 torus / {}: {:.0}% minimal routes, avg distance {:.2} links, {:.2} ITBs/route",
            scheme.label(),
            stats.minimal_fraction * 100.0,
            stats.avg_distance,
            stats.avg_itbs
        );
    }
    println!("(paper section 4.7.1: 80% minimal / 4.57 avg for UP/DOWN; 100% / 4.06 for ITB)");
}
