//! Link heatmap: the paper's Figure 8 as ASCII art — per-switch link
//! utilization on the full 8x8 torus at UP/DOWN's saturation point,
//! under UP/DOWN and under ITB-RR.
//!
//! Run with: `cargo run --release --example link_heatmap`

use regnet::prelude::*;

fn shade(u: f64) -> char {
    match (u * 100.0) as u32 {
        0..=4 => '.',
        5..=9 => ':',
        10..=19 => '+',
        20..=34 => '*',
        35..=49 => '#',
        _ => '@',
    }
}

fn main() {
    let opts = RunOptions {
        warmup_cycles: 30_000,
        measure_cycles: 80_000,
        seed: 9,
        ..RunOptions::default()
    };
    for scheme in [RoutingScheme::UpDown, RoutingScheme::ItbRr] {
        let exp = Experiment::new(
            gen::torus_2d(8, 8, 8).unwrap(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            SimConfig::default(),
        )
        .unwrap();
        let (util, descs) = exp.link_utilization(0.015, &opts);

        // Average outgoing switch-link utilization per switch.
        let mut sum = vec![0.0f64; 64];
        let mut cnt = vec![0usize; 64];
        for (d, &u) in descs.iter().zip(&util.per_channel) {
            if let NodeId::Switch(s) = d.from {
                sum[s.idx()] += u;
                cnt[s.idx()] += 1;
            }
        }
        println!(
            "\n{} @ 0.015 flits/ns/switch   (. <5%  : <10%  + <20%  * <35%  # <50%  @ >=50%)",
            scheme.label()
        );
        println!("root switch s0 is top-left");
        for r in 0..8 {
            let mut line = String::new();
            for c in 0..8 {
                let s = r * 8 + c;
                let u = sum[s] / cnt[s].max(1) as f64;
                line.push(shade(u));
                line.push(' ');
            }
            println!("  {line}");
        }
        println!(
            "  max link {:.1}%  mean {:.1}%  links under 10%: {:.0}%  imbalance {:.2}",
            util.max() * 100.0,
            util.mean() * 100.0,
            util.fraction_below(0.10) * 100.0,
            util.imbalance()
        );
    }
    println!("\nUP/DOWN concentrates load near the root (top-left); ITB-RR spreads it.");
}
