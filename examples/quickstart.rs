//! Quickstart: build a torus, route it three ways, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use regnet::prelude::*;

fn main() {
    // A 4x4 torus with 4 hosts per switch — a scaled-down version of the
    // paper's 8x8/512-host network, so this example finishes in seconds.
    let topo = gen::torus_2d(4, 4, 4).expect("topology");
    println!(
        "network: {} — {} switches, {} hosts, {} links",
        topo.name(),
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );

    let cfg = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let opts = RunOptions {
        warmup_cycles: 20_000,
        measure_cycles: 80_000,
        seed: 42,
        ..RunOptions::default()
    };

    println!("\nscheme    offered  accepted  avg-latency  itbs/msg");
    for scheme in RoutingScheme::all() {
        let exp = Experiment::new(
            topo.clone(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg.clone(),
        )
        .expect("experiment");
        for offered in [0.004, 0.12] {
            let p = exp.run_point(offered, &opts);
            println!(
                "{:8}  {:.4}   {:.4}    {:8.0} ns   {:.3}",
                scheme.label(),
                p.offered,
                p.accepted,
                p.avg_latency_ns,
                p.avg_itbs_per_msg
            );
        }
    }

    println!("\nat the higher load every scheme is saturated, but the in-transit");
    println!("buffer schemes accept ~30% more traffic than UP/DOWN — on the");
    println!("paper's full-size 8x8 torus the gap grows to the headline 2x.");
}
