//! Failure recovery: the Myrinet maintenance loop in action. A link dies,
//! then a switch (including the up*/down* root!), and after each event the
//! mapper re-explores the surviving network, rebuilds the routing tables
//! and traffic keeps flowing.
//!
//! Run with: `cargo run --release --example failure_recovery`

use regnet::mapper::{FaultSet, ManagedNetwork};
use regnet::prelude::*;

fn measure(net: &ManagedNetwork, label: &str) {
    let topo = net.topology().clone();
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, net.route_db(), &pattern, cfg, 0.01, 17);
    sim.run(15_000);
    sim.begin_measurement();
    sim.run(60_000);
    let stats = sim.end_measurement(60_000);
    println!(
        "{label:<28} {} switches / {} hosts  accepted {:.4} fl/ns/sw  latency {:>6.0} ns  itbs {:.2}",
        topo.num_switches(),
        topo.num_hosts(),
        stats.accepted_flits_per_ns_per_switch(topo.num_switches()),
        stats.avg_latency_ns,
        stats.avg_itbs_per_msg
    );
}

fn main() {
    let physical = gen::torus_2d(4, 4, 4).unwrap();
    // Manage from a host that will survive everything we break below.
    let mut net = ManagedNetwork::with_config(
        physical,
        RoutingScheme::ItbRr,
        RouteDbConfig::default(),
        HostId(60),
    )
    .unwrap();

    measure(&net, "healthy network");

    // A cable dies.
    let link = net
        .physical()
        .links()
        .iter()
        .find(|l| l.is_switch_link())
        .unwrap()
        .id;
    let report = net.inject(FaultSet::link(link)).unwrap();
    println!(
        "  -> link {link:?} down: lost {} hosts, {} switch links remain",
        report.lost_hosts, report.live_switch_links
    );
    measure(&net, "after link failure");

    // The root switch of the up*/down* tree dies: a whole new spanning
    // tree, a whole new set of in-transit buffer placements.
    let report = net.inject(FaultSet::switch(SwitchId(0))).unwrap();
    println!(
        "  -> switch s0 (the up*/down* root!) down: lost {} hosts",
        report.lost_hosts
    );
    measure(&net, "after root switch failure");

    // And one more arbitrary switch.
    let report = net.inject(FaultSet::switch(SwitchId(9))).unwrap();
    println!("  -> switch s9 down: lost {} hosts", report.lost_hosts);
    measure(&net, "after second switch failure");

    println!("\nevery reconfiguration rebuilt minimal ITB routes on the survivors;");
    println!("traffic never deadlocks because ejection at in-transit hosts still");
    println!("breaks every cyclic channel dependency on the degraded graph.");
}
