//! Topology gallery: prints the paper's three networks as Graphviz `dot`
//! (pipe into `dot -Tpng` to draw them) plus their headline statistics.
//!
//! Run with: `cargo run --example topology_gallery > gallery.dot`

use regnet::prelude::*;
use regnet::topology::dot::to_dot;

fn main() {
    for topo in [
        gen::torus_2d(8, 8, 8).unwrap(),
        gen::torus_2d_express(8, 8, 8).unwrap(),
        gen::cplant().unwrap(),
    ] {
        let dm = DistanceMatrix::compute(&topo);
        let orient = Orientation::compute(&topo, SwitchId(0));
        eprintln!(
            "{}: {} switches, {} hosts, {} switch links, diameter {}, avg distance {:.2}, tree depth {}",
            topo.name(),
            topo.num_switches(),
            topo.num_hosts(),
            topo.num_switch_links(),
            dm.diameter(),
            dm.average(),
            topo.switches().map(|s| orient.level(s)).max().unwrap()
        );
        // The dot output shows every link pointing at its "up" end.
        println!("{}", to_dot(&topo, Some(&orient)));
    }
}
