//! Custom topology: the ITB mechanism is not tied to the paper's three
//! networks — wire up your own switches and it works the same. This
//! example builds a small "two rooms joined by a thin corridor" network,
//! where up*/down* routing funnels everything through the corridor's root
//! side, and measures what in-transit buffers buy.
//!
//! Run with: `cargo run --release --example custom_topology`

use regnet::prelude::*;

fn two_rooms() -> Topology {
    let mut b = TopologyBuilder::new("two-rooms", 8);
    // Room A: switches 0..4 fully meshed; room B: switches 4..8 fully
    // meshed; two corridor links join them.
    b.add_switches(8);
    for room in [0u32, 4] {
        for i in room..room + 4 {
            for j in i + 1..room + 4 {
                b.connect(SwitchId(i), SwitchId(j)).unwrap();
            }
        }
    }
    b.connect(SwitchId(1), SwitchId(5)).unwrap();
    b.connect(SwitchId(3), SwitchId(7)).unwrap();
    b.attach_hosts_everywhere(3).unwrap();
    b.build().unwrap()
}

fn main() {
    let topo = two_rooms();
    println!(
        "{}: {} switches / {} hosts / {} links",
        topo.name(),
        topo.num_switches(),
        topo.num_hosts(),
        topo.num_links()
    );

    // Route analysis first: how restrictive is up*/down* here?
    let db_ud = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
    let db_itb = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let stats_ud = regnet::core::analysis::RouteStats::compute(&topo, &db_ud);
    let stats_itb = regnet::core::analysis::RouteStats::compute(&topo, &db_itb);
    println!(
        "UP/DOWN: {:.0}% minimal routes, avg {:.2} links",
        stats_ud.minimal_fraction * 100.0,
        stats_ud.avg_distance
    );
    println!(
        "ITB-RR : {:.0}% minimal routes, avg {:.2} links, {:.2} ITBs/route",
        stats_itb.minimal_fraction * 100.0,
        stats_itb.avg_distance,
        stats_itb.avg_itbs
    );

    // Then simulate.
    let cfg = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let opts = RunOptions {
        warmup_cycles: 20_000,
        measure_cycles: 60_000,
        seed: 11,
        ..RunOptions::default()
    };
    let search = ThroughputSearch {
        start: 0.005,
        growth: 1.4,
        ..ThroughputSearch::default()
    };
    println!("\nsaturation throughput (flits/ns/switch):");
    for scheme in RoutingScheme::all() {
        let exp = Experiment::new(
            topo.clone(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            cfg.clone(),
        )
        .unwrap();
        println!(
            "  {:8} {:.4}",
            scheme.label(),
            exp.find_throughput(&search, &opts)
        );
    }
}
