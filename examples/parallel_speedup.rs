//! Parallel cycle engine: run the same saturated 8×8-torus ITB-RR point
//! under the sequential active-set scheduler and the shard-parallel
//! engine, check the results are bit-identical, and report the wall-clock
//! ratio.
//!
//! Run with: `cargo run --release --example parallel_speedup`
//!
//! The shard count is fixed by `Scheduler::Parallel { threads }` and is
//! part of the simulation configuration only in the sense that it picks
//! the partition — the results are bit-identical to the sequential
//! engines at every thread count. The live OS thread count is capped by
//! the host (override with `REGNET_PAR_WORKERS`), so the speedup you see
//! depends on the machine; the determinism never does.

use std::time::Instant;

use regnet::prelude::*;

fn run(scheduler: Scheduler) -> (RunStats, f64) {
    let exp = Experiment::new(
        gen::torus_2d(8, 8, 8).expect("topology"),
        RoutingScheme::ItbRr,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        SimConfig::default(),
    )
    .expect("experiment");
    let opts = RunOptions {
        warmup_cycles: 30_000,
        measure_cycles: 120_000,
        seed: 7,
        scheduler,
        ..RunOptions::default()
    };
    // A load past the ITB-RR saturation point, so every shard has work
    // every cycle — the regime the parallel engine is built for.
    let start = Instant::now();
    let stats = exp.run_stats(0.12, &opts);
    (stats, start.elapsed().as_secs_f64())
}

fn main() {
    let threads = 4;
    println!("8x8 torus / ITB-RR / saturated (0.12 flits/ns/switch)\n");

    let (seq, t_seq) = run(Scheduler::ActiveSet);
    println!("active-set: {t_seq:8.2} s  ({} delivered)", seq.delivered);

    let (par, t_par) = run(Scheduler::Parallel { threads });
    println!(
        "parallel-{threads}: {t_par:8.2} s  ({} delivered)",
        par.delivered
    );

    assert_eq!(
        seq, par,
        "the parallel engine must be bit-identical to the active set"
    );
    println!("\nRunStats identical across engines — determinism holds.");

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "wall-clock ratio: {:.2}x on {cores} available core(s)",
        t_seq / t_par
    );
    if cores == 1 {
        println!("(single-core host: the ratio measures engine overhead, not speedup)");
    }
}
