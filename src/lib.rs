//! # regnet
//!
//! A production-quality reproduction of *"Improving the Performance of
//! Regular Networks with Source Routing"* (J. Flich, P. López,
//! M. P. Malumbres, J. Duato — ICPP 2000): the **in-transit buffer (ITB)**
//! mechanism for minimal source routing on regular networks, together with
//! everything needed to evaluate it — topology generators, up\*/down\*
//! routing, a cycle-accurate Myrinet-style network simulator, traffic
//! patterns and measurement tooling.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`topology`] | `regnet-topology` | switch/host/link graphs, torus / express-torus / CPLANT / mesh / hypercube / irregular generators, spanning trees, up/down orientation |
//! | [`routing`] | `regnet-routing` | up\*/down\* legal paths, `simple_routes` emulation, minimal-path enumeration |
//! | [`core`] | `regnet-core` | the ITB mechanism: journey splitting, route databases, path-selection policies, route analysis |
//! | [`netsim`] | `regnet-netsim` | the flit-level simulator (pipelined links, stop&go, cut-through switches, ITB NICs) and the experiment driver |
//! | [`traffic`] | `regnet-traffic` | uniform / bit-reversal / hotspot / local patterns, offered-load conversion |
//! | [`metrics`] | `regnet-metrics` | latency statistics, curves, saturation detection, link-utilization summaries |
//!
//! ## Quickstart
//!
//! ```
//! use regnet::prelude::*;
//!
//! // The paper's 2-D torus, scaled down for a doc test.
//! let topo = regnet::topology::gen::torus_2d(4, 4, 2).unwrap();
//!
//! // Compare the original Myrinet routing with in-transit buffers.
//! let exp = Experiment::new(
//!     topo,
//!     RoutingScheme::ItbRr,
//!     RouteDbConfig::default(),
//!     PatternSpec::Uniform,
//!     SimConfig { payload_flits: 64, ..SimConfig::default() },
//! )
//! .unwrap();
//!
//! let point = exp.run_point(
//!     0.005,
//!     &RunOptions {
//!         warmup_cycles: 5_000,
//!         measure_cycles: 20_000,
//!         seed: 7,
//!         ..RunOptions::default()
//!     },
//! );
//! assert!(point.delivered > 0);
//! ```
//!
//! The `regnet-bench` crate regenerates every table and figure of the
//! paper; see `DESIGN.md` and `EXPERIMENTS.md` at the repository root.

pub use regnet_core as core;
pub use regnet_mapper as mapper;
pub use regnet_metrics as metrics;
pub use regnet_netsim as netsim;
pub use regnet_routing as routing;
pub use regnet_topology as topology;
pub use regnet_traffic as traffic;

/// The types needed by typical experiments, in one import.
pub mod prelude {
    pub use regnet_core::{
        split_minimal_path, ItbHostPicker, Journey, JourneyTemplate, RouteDb, RouteDbConfig,
        RoutingScheme, Segment, SegmentEnd,
    };
    pub use regnet_mapper::{rebuild_physical_routes, FaultSet, PhysicalRoutes};
    pub use regnet_metrics::{ChromeTrace, Curve, CurvePoint, UtilizationSummary};
    pub use regnet_netsim::experiment::{
        par_map, Experiment, RunObservation, RunOptions, ThroughputSearch,
    };
    pub use regnet_netsim::{
        BlockCause, CounterSnapshot, EventJournal, EventKind, EventMask, EventOptions, FaultEvent,
        FaultOptions, FaultPlan, FaultTarget, GenerationProcess, ProfileReport, ReliabilityStats,
        RunStats, Scheduler, SimConfig, Simulator, StallClass, StallReport, TraceOptions,
        TraceReport,
    };
    pub use regnet_routing::{LegalDistances, SwitchPath};
    pub use regnet_topology::{
        gen, DistanceMatrix, HostId, LinkId, NodeId, Orientation, Port, SpanningTree, SwitchId,
        Topology, TopologyBuilder,
    };
    pub use regnet_traffic::{Pattern, PatternSpec};
}
