//! The maintenance loop: accumulate faults, re-map, rebuild routing
//! tables, report what changed.

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_topology::{HostId, Topology};

use crate::discovery::{discover, DiscoveredNetwork, MapperError};
use crate::fault::FaultSet;

/// What a reconfiguration changed.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigReport {
    /// Hosts that became unreachable in this reconfiguration.
    pub lost_hosts: usize,
    /// Switches that became unreachable.
    pub lost_switches: usize,
    /// Switch-to-switch links in the surviving network.
    pub live_switch_links: usize,
    /// Average route length (links) after the rebuild.
    pub avg_route_length: f64,
}

/// A network under management: the physical plant, the accumulated fault
/// set, the current (discovered) topology and its routing tables.
///
/// Mirrors the paper's description of the MCP: on any topology change the
/// adapter re-explores the network and rebuilds its routing table, so
/// traffic keeps flowing on the surviving component — with in-transit
/// buffer routes recomputed for the *new* up\*/down\* tree.
pub struct ManagedNetwork {
    physical: Topology,
    faults: FaultSet,
    scheme: RoutingScheme,
    db_cfg: RouteDbConfig,
    seed: HostId,
    current: DiscoveredNetwork,
    db: RouteDb,
}

impl ManagedNetwork {
    /// Bring up a fault-free network under `scheme` with default table
    /// parameters, managed from host 0.
    pub fn new(physical: Topology, scheme: RoutingScheme) -> Result<ManagedNetwork, MapperError> {
        ManagedNetwork::with_config(physical, scheme, RouteDbConfig::default(), HostId(0))
    }

    /// Full-control constructor.
    pub fn with_config(
        physical: Topology,
        scheme: RoutingScheme,
        db_cfg: RouteDbConfig,
        seed: HostId,
    ) -> Result<ManagedNetwork, MapperError> {
        let current = discover(&physical, &FaultSet::new(), seed)?;
        let db = RouteDb::build(&current.topo, scheme, &db_cfg);
        Ok(ManagedNetwork {
            physical,
            faults: FaultSet::new(),
            scheme,
            db_cfg,
            seed,
            current,
            db,
        })
    }

    /// The physical plant (including dead elements).
    pub fn physical(&self) -> &Topology {
        &self.physical
    }

    /// The current surviving topology.
    pub fn topology(&self) -> &Topology {
        &self.current.topo
    }

    /// The current discovery result (id maps included).
    pub fn discovered(&self) -> &DiscoveredNetwork {
        &self.current
    }

    /// The routing tables for the current topology.
    pub fn route_db(&self) -> &RouteDb {
        &self.db
    }

    /// The accumulated fault set.
    pub fn faults(&self) -> &FaultSet {
        &self.faults
    }

    /// Inject additional faults, re-map and rebuild the routing tables.
    ///
    /// Fails (leaving the previous state intact) if the managing host
    /// itself dies or nothing else remains reachable.
    pub fn inject(&mut self, new_faults: FaultSet) -> Result<ReconfigReport, MapperError> {
        let mut faults = self.faults.clone();
        faults.merge(&new_faults);
        let prev_hosts = self.current.topo.num_hosts();
        let prev_switches = self.current.topo.num_switches();
        let next = discover(&self.physical, &faults, self.seed)?;
        let db = RouteDb::build(&next.topo, self.scheme, &self.db_cfg);
        let stats = regnet_core::analysis::RouteStats::compute(&next.topo, &db);
        let report = ReconfigReport {
            lost_hosts: prev_hosts.saturating_sub(next.topo.num_hosts()),
            lost_switches: prev_switches.saturating_sub(next.topo.num_switches()),
            live_switch_links: next.topo.num_switch_links(),
            avg_route_length: stats.avg_distance,
        };
        self.faults = faults;
        self.current = next;
        self.db = db;
        Ok(report)
    }

    /// Translate a physical host id into the current network, if it
    /// survived.
    pub fn locate_host(&self, physical: HostId) -> Option<HostId> {
        self.current
            .host_to_new
            .get(physical.idx())
            .copied()
            .flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_core::analysis::RouteStats;
    use regnet_topology::{gen, SwitchId};

    #[test]
    fn rebuild_after_link_failure_keeps_all_hosts() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::new(physical, RoutingScheme::ItbRr).unwrap();
        let before = RouteStats::compute(net.topology(), net.route_db());
        // Kill a switch link.
        let l = net
            .physical()
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .unwrap()
            .id;
        let report = net.inject(FaultSet::link(l)).unwrap();
        assert_eq!(report.lost_hosts, 0);
        assert_eq!(report.lost_switches, 0);
        assert_eq!(report.live_switch_links, 31);
        // Routes still minimal (ITB always is) but on the degraded graph —
        // average distance cannot shrink.
        assert!(report.avg_route_length >= before.avg_distance - 1e-9);
        let after = RouteStats::compute(net.topology(), net.route_db());
        assert_eq!(after.minimal_fraction, 1.0);
    }

    #[test]
    fn rebuild_after_root_switch_failure() {
        // Killing the up*/down* root forces a whole new spanning tree; the
        // rebuilt tables must still be valid and ITB-minimal.
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::with_config(
            physical,
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            HostId(9), // manage from a host not on switch 0
        )
        .unwrap();
        let report = net.inject(FaultSet::switch(SwitchId(0))).unwrap();
        assert_eq!(report.lost_switches, 1);
        assert_eq!(report.lost_hosts, 2);
        let stats = RouteStats::compute(net.topology(), net.route_db());
        assert_eq!(stats.minimal_fraction, 1.0);
        assert_eq!(net.topology().num_switches(), 15);
    }

    #[test]
    fn faults_accumulate_across_injections() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::new(physical, RoutingScheme::UpDown).unwrap();
        net.inject(FaultSet::switch(SwitchId(5))).unwrap();
        net.inject(FaultSet::switch(SwitchId(10))).unwrap();
        assert_eq!(net.topology().num_switches(), 14);
        assert_eq!(net.faults().counts(), (0, 2, 0));
    }

    #[test]
    fn failed_injection_preserves_previous_state() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::new(physical, RoutingScheme::ItbSp).unwrap();
        let hosts_before = net.topology().num_hosts();
        // Killing the seed host must fail and change nothing.
        let err = net.inject(FaultSet::host(HostId(0)));
        assert!(err.is_err());
        assert_eq!(net.topology().num_hosts(), hosts_before);
        assert!(net.faults().is_empty());
    }

    #[test]
    fn locate_host_translates_ids() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::new(physical, RoutingScheme::ItbRr).unwrap();
        // Before faults: identity-ish (seed on switch 0, BFS order).
        let loc = net.locate_host(HostId(31)).unwrap();
        assert_eq!(net.discovered().host_from_new[loc.idx()], HostId(31));
        // After killing switch 5 (hosts 10, 11): they vanish; others remap.
        net.inject(FaultSet::switch(SwitchId(5))).unwrap();
        assert_eq!(net.locate_host(HostId(10)), None);
        assert_eq!(net.locate_host(HostId(11)), None);
        let moved = net.locate_host(HostId(31)).unwrap();
        assert_eq!(net.discovered().host_from_new[moved.idx()], HostId(31));
    }

    #[test]
    fn degraded_network_still_simulates_and_conserves() {
        use regnet_netsim::{SimConfig, Simulator};
        use regnet_traffic::{Pattern, PatternSpec};

        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut net = ManagedNetwork::new(physical, RoutingScheme::ItbRr).unwrap();
        net.inject(FaultSet::switch(SwitchId(6))).unwrap();
        let topo = net.topology();
        let pattern = Pattern::resolve(PatternSpec::Uniform, topo).unwrap();
        let cfg = SimConfig {
            payload_flits: 64,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(topo, net.route_db(), &pattern, cfg, 0.008, 3);
        sim.begin_measurement();
        sim.run(30_000);
        sim.stop_generation();
        let mut guard = 0;
        while sim.packets_in_flight() > 0 {
            sim.run(2_000);
            guard += 1;
            assert!(guard < 1_000, "degraded network failed to drain");
        }
        let stats = sim.end_measurement(30_000);
        assert!(stats.generated > 50);
        assert_eq!(stats.delivered, stats.generated);
    }
}
