//! Fault sets: which links, switches and hosts are currently dead.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use regnet_topology::{HostId, LinkEnd, LinkId, SwitchId, Topology};

/// The set of failed network elements. A dead switch implicitly kills all
/// its links and the reachability of its hosts; a dead host kills its NIC
/// (and its link); a dead link kills just the cable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    dead_links: BTreeSet<LinkId>,
    dead_switches: BTreeSet<SwitchId>,
    dead_hosts: BTreeSet<HostId>,
}

impl FaultSet {
    pub fn new() -> FaultSet {
        FaultSet::default()
    }

    /// A fault set with a single dead link.
    pub fn link(l: LinkId) -> FaultSet {
        let mut f = FaultSet::new();
        f.kill_link(l);
        f
    }

    /// A fault set with a single dead switch.
    pub fn switch(s: SwitchId) -> FaultSet {
        let mut f = FaultSet::new();
        f.kill_switch(s);
        f
    }

    /// A fault set with a single dead host.
    pub fn host(h: HostId) -> FaultSet {
        let mut f = FaultSet::new();
        f.kill_host(h);
        f
    }

    pub fn kill_link(&mut self, l: LinkId) -> &mut Self {
        self.dead_links.insert(l);
        self
    }

    pub fn kill_switch(&mut self, s: SwitchId) -> &mut Self {
        self.dead_switches.insert(s);
        self
    }

    pub fn kill_host(&mut self, h: HostId) -> &mut Self {
        self.dead_hosts.insert(h);
        self
    }

    /// Undo [`kill_link`](FaultSet::kill_link) — the cable was repaired.
    pub fn revive_link(&mut self, l: LinkId) -> &mut Self {
        self.dead_links.remove(&l);
        self
    }

    /// Undo [`kill_switch`](FaultSet::kill_switch).
    pub fn revive_switch(&mut self, s: SwitchId) -> &mut Self {
        self.dead_switches.remove(&s);
        self
    }

    /// Undo [`kill_host`](FaultSet::kill_host).
    pub fn revive_host(&mut self, h: HostId) -> &mut Self {
        self.dead_hosts.remove(&h);
        self
    }

    /// Merge another fault set into this one (faults accumulate).
    pub fn merge(&mut self, other: &FaultSet) {
        self.dead_links.extend(&other.dead_links);
        self.dead_switches.extend(&other.dead_switches);
        self.dead_hosts.extend(&other.dead_hosts);
    }

    pub fn is_switch_alive(&self, s: SwitchId) -> bool {
        !self.dead_switches.contains(&s)
    }

    pub fn is_host_alive(&self, topo: &Topology, h: HostId) -> bool {
        !self.dead_hosts.contains(&h)
            && self.is_switch_alive(topo.host_switch(h))
            && !self.dead_links.contains(&topo.host_link(h))
    }

    /// A link is usable iff the cable itself and both endpoints live.
    pub fn is_link_alive(&self, topo: &Topology, l: LinkId) -> bool {
        if self.dead_links.contains(&l) {
            return false;
        }
        topo.link(l).ends.iter().all(|end| match *end {
            LinkEnd::Switch { sw, .. } => self.is_switch_alive(sw),
            LinkEnd::Host { host } => !self.dead_hosts.contains(&host),
        })
    }

    pub fn is_empty(&self) -> bool {
        self.dead_links.is_empty() && self.dead_switches.is_empty() && self.dead_hosts.is_empty()
    }

    /// Counts of (links, switches, hosts) explicitly marked dead.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.dead_links.len(),
            self.dead_switches.len(),
            self.dead_hosts.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::gen;

    #[test]
    fn dead_switch_kills_its_links() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let f = FaultSet::switch(SwitchId(0));
        for link in topo.links() {
            let touches_s0 = link
                .ends
                .iter()
                .any(|e| matches!(*e, LinkEnd::Switch { sw, .. } if sw == SwitchId(0)));
            assert_eq!(f.is_link_alive(&topo, link.id), !touches_s0);
        }
        // Hosts on the dead switch are unreachable.
        assert!(!f.is_host_alive(&topo, topo.hosts_of(SwitchId(0))[0]));
        assert!(f.is_host_alive(&topo, topo.hosts_of(SwitchId(5))[0]));
    }

    #[test]
    fn dead_host_kills_only_its_link() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let h = topo.hosts_of(SwitchId(3))[0];
        let f = FaultSet::host(h);
        assert!(!f.is_host_alive(&topo, h));
        assert!(!f.is_link_alive(&topo, topo.host_link(h)));
        // Its sibling on the same switch is fine.
        let sibling = topo.hosts_of(SwitchId(3))[1];
        assert!(f.is_host_alive(&topo, sibling));
        assert!(f.is_switch_alive(SwitchId(3)));
    }

    #[test]
    fn dead_host_link_isolates_the_host() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let h = topo.hosts_of(SwitchId(7))[0];
        let f = FaultSet::link(topo.host_link(h));
        assert!(!f.is_host_alive(&topo, h));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = FaultSet::link(LinkId(1));
        let b = FaultSet::switch(SwitchId(2));
        a.merge(&b);
        assert_eq!(a.counts(), (1, 1, 0));
        assert!(!a.is_empty());
        assert!(FaultSet::new().is_empty());
    }
}
