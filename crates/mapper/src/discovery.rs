//! BFS network exploration, as the Myrinet mapper performs it after a
//! topology change: probe outward from a seed host, enumerate the surviving
//! switches/links/hosts, and build a fresh (renumbered) topology.

use std::collections::VecDeque;

use regnet_topology::{HostId, LinkEnd, SwitchId, Topology, TopologyBuilder, TopologyError};

use crate::fault::FaultSet;

/// Errors during discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapperError {
    /// The seed host (the one running the mapper) is itself dead.
    SeedDead(HostId),
    /// The surviving component contains no other host than the seed —
    /// there is no network left to route on.
    NothingReachable,
    /// Rebuilding the discovered component failed (should not happen for a
    /// component found by BFS).
    Rebuild(TopologyError),
}

impl std::fmt::Display for MapperError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapperError::SeedDead(h) => write!(f, "seed host {h} is dead"),
            MapperError::NothingReachable => write!(f, "no other live host is reachable"),
            MapperError::Rebuild(e) => write!(f, "failed to rebuild discovered topology: {e}"),
        }
    }
}

impl std::error::Error for MapperError {}

/// The result of a mapping run: the surviving network as a fresh
/// [`Topology`] with dense ids, plus the translations between physical and
/// discovered ids.
#[derive(Debug, Clone)]
pub struct DiscoveredNetwork {
    /// The surviving network. Switch/host/port numbering is the mapper's
    /// own (just as a real re-mapping renumbers routes); use the maps below
    /// to relate it to the physical network.
    pub topo: Topology,
    /// Physical switch id → discovered id (None if dead/unreachable).
    pub switch_to_new: Vec<Option<SwitchId>>,
    /// Physical host id → discovered id.
    pub host_to_new: Vec<Option<HostId>>,
    /// Discovered switch id → physical id.
    pub switch_from_new: Vec<SwitchId>,
    /// Discovered host id → physical id.
    pub host_from_new: Vec<HostId>,
}

impl DiscoveredNetwork {
    /// Hosts of the physical network that are no longer reachable.
    pub fn lost_hosts(&self) -> usize {
        self.host_to_new.iter().filter(|h| h.is_none()).count()
    }

    /// Switches of the physical network that are no longer reachable.
    pub fn lost_switches(&self) -> usize {
        self.switch_to_new.iter().filter(|s| s.is_none()).count()
    }
}

/// Explore the network from `seed`'s switch, honouring `faults`, and build
/// the surviving topology.
///
/// Exploration order is deterministic (BFS by physical switch id), so two
/// mappers starting anywhere in the same component agree on the surviving
/// *set*; ids are assigned in BFS order from the seed.
pub fn discover(
    physical: &Topology,
    faults: &FaultSet,
    seed: HostId,
) -> Result<DiscoveredNetwork, MapperError> {
    if !faults.is_host_alive(physical, seed) {
        return Err(MapperError::SeedDead(seed));
    }
    let n_sw = physical.num_switches();

    // BFS over live switches through live links.
    let mut reached = vec![false; n_sw];
    let mut order: Vec<SwitchId> = Vec::new();
    let start = physical.host_switch(seed);
    let mut queue = VecDeque::new();
    reached[start.idx()] = true;
    queue.push_back(start);
    while let Some(s) = queue.pop_front() {
        order.push(s);
        let mut neighbours: Vec<(SwitchId, _)> = physical
            .switch_neighbors(s)
            .filter(|&(_, t, l)| faults.is_switch_alive(t) && faults.is_link_alive(physical, l))
            .map(|(_, t, l)| (t, l))
            .collect();
        neighbours.sort_unstable_by_key(|&(t, _)| t);
        for (t, _) in neighbours {
            if !reached[t.idx()] {
                reached[t.idx()] = true;
                queue.push_back(t);
            }
        }
    }

    // Assign new switch ids in BFS order.
    let mut switch_to_new = vec![None; n_sw];
    for (new, &old) in order.iter().enumerate() {
        switch_to_new[old.idx()] = Some(SwitchId(new as u32));
    }

    // Rebuild: switch links first (each once, in physical link order), then
    // hosts in physical host order.
    let mut b = TopologyBuilder::new(format!("{}-mapped", physical.name()), physical.max_ports());
    b.add_switches(order.len());
    for link in physical.links() {
        if !faults.is_link_alive(physical, link.id) {
            continue;
        }
        if let (LinkEnd::Switch { sw: a, .. }, LinkEnd::Switch { sw: bb, .. }) =
            (link.ends[0], link.ends[1])
        {
            if let (Some(na), Some(nb)) = (switch_to_new[a.idx()], switch_to_new[bb.idx()]) {
                b.connect(na, nb).map_err(MapperError::Rebuild)?;
            }
        }
    }
    let mut host_to_new = vec![None; physical.num_hosts()];
    let mut host_from_new = Vec::new();
    for h in physical.hosts() {
        if !faults.is_host_alive(physical, h) {
            continue;
        }
        if let Some(ns) = switch_to_new[physical.host_switch(h).idx()] {
            let nh = b.attach_host(ns).map_err(MapperError::Rebuild)?;
            host_to_new[h.idx()] = Some(nh);
            host_from_new.push(h);
        }
    }
    if host_from_new.len() < 2 {
        return Err(MapperError::NothingReachable);
    }
    let topo = b.build().map_err(MapperError::Rebuild)?;
    Ok(DiscoveredNetwork {
        topo,
        switch_to_new,
        host_to_new,
        switch_from_new: order,
        host_from_new,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::{gen, LinkId};

    #[test]
    fn fault_free_discovery_preserves_everything() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let d = discover(&physical, &FaultSet::new(), HostId(0)).unwrap();
        assert_eq!(d.topo.num_switches(), 16);
        assert_eq!(d.topo.num_hosts(), 32);
        assert_eq!(d.topo.num_switch_links(), physical.num_switch_links());
        assert_eq!(d.lost_hosts(), 0);
        assert_eq!(d.lost_switches(), 0);
        // Round-trip maps.
        for s in physical.switches() {
            let n = d.switch_to_new[s.idx()].unwrap();
            assert_eq!(d.switch_from_new[n.idx()], s);
        }
        for h in physical.hosts() {
            let n = d.host_to_new[h.idx()].unwrap();
            assert_eq!(d.host_from_new[n.idx()], h);
        }
    }

    #[test]
    fn discovery_renumbers_from_seed() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        // Seed on physical switch 10: that switch becomes discovered s0.
        let seed = physical.hosts_of(SwitchId(10))[0];
        let d = discover(&physical, &FaultSet::new(), seed).unwrap();
        assert_eq!(d.switch_from_new[0], SwitchId(10));
        assert_eq!(d.switch_to_new[10], Some(SwitchId(0)));
    }

    #[test]
    fn dead_link_survives_with_fewer_links() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        // Find a switch-switch link.
        let l = physical
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .unwrap()
            .id;
        let d = discover(&physical, &FaultSet::link(l), HostId(0)).unwrap();
        assert_eq!(d.topo.num_switch_links(), physical.num_switch_links() - 1);
        assert_eq!(d.lost_hosts(), 0);
    }

    #[test]
    fn dead_switch_loses_its_hosts() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let d = discover(&physical, &FaultSet::switch(SwitchId(5)), HostId(0)).unwrap();
        assert_eq!(d.topo.num_switches(), 15);
        assert_eq!(d.topo.num_hosts(), 30);
        assert_eq!(d.lost_hosts(), 2);
        assert_eq!(d.lost_switches(), 1);
        assert!(d.switch_to_new[5].is_none());
    }

    #[test]
    fn partition_keeps_only_the_seed_side() {
        // A line of 3 switches: killing the middle one splits the network.
        let mut b = TopologyBuilder::new("line3", 4);
        b.add_switches(3);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.connect(SwitchId(1), SwitchId(2)).unwrap();
        b.attach_hosts_everywhere(2).unwrap();
        let physical = b.build().unwrap();
        let d = discover(&physical, &FaultSet::switch(SwitchId(1)), HostId(0)).unwrap();
        assert_eq!(d.topo.num_switches(), 1);
        assert_eq!(d.topo.num_hosts(), 2);
        assert_eq!(d.lost_hosts(), 4); // middle switch's 2 + far side's 2
    }

    #[test]
    fn seed_dead_is_an_error() {
        let physical = gen::torus_2d(4, 4, 1).unwrap();
        let e = discover(&physical, &FaultSet::host(HostId(0)), HostId(0));
        assert_eq!(e.unwrap_err(), MapperError::SeedDead(HostId(0)));
        let e2 = discover(&physical, &FaultSet::switch(SwitchId(0)), HostId(0));
        assert_eq!(e2.unwrap_err(), MapperError::SeedDead(HostId(0)));
    }

    #[test]
    fn nothing_reachable_is_an_error() {
        // Two switches, one host each; kill the other host: only the seed
        // remains -> nothing to route to.
        let mut b = TopologyBuilder::new("pair", 4);
        b.add_switches(2);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        let physical = b.build().unwrap();
        let e = discover(&physical, &FaultSet::host(HostId(1)), HostId(0));
        assert_eq!(e.unwrap_err(), MapperError::NothingReachable);
    }

    #[test]
    fn multiple_faults_accumulate() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let mut f = FaultSet::new();
        f.kill_switch(SwitchId(3))
            .kill_host(HostId(20))
            .kill_link(LinkId(2));
        let d = discover(&physical, &f, HostId(0)).unwrap();
        assert_eq!(d.topo.num_switches(), 15);
        assert_eq!(d.topo.num_hosts(), 32 - 2 - 1);
    }
}
