//! Network management for source-routed networks — the functions the paper
//! attributes to the Myrinet Control Program (section 2): "each network
//! adapter checks for changes in the network topology (shutdown of hosts,
//! link/switch failures, start-up of new hosts, etc.), in order to maintain
//! the routing tables".
//!
//! * [`FaultSet`] — the set of failed links, switches and hosts.
//! * [`discover`] — BFS exploration of the surviving network from a seed
//!   host, producing a fresh, renumbered [`Topology`](regnet_topology::Topology) plus the id maps
//!   between the physical and the discovered network (the real Myrinet
//!   mapper also renumbers after re-mapping).
//! * [`ManagedNetwork`] — the full maintenance loop: inject faults,
//!   re-map, rebuild the routing tables for any
//!   [`RoutingScheme`](regnet_core::RoutingScheme), and
//!   report what was lost.
//!
//! # Example
//!
//! ```
//! use regnet_topology::{gen, LinkId, HostId};
//! use regnet_core::RoutingScheme;
//! use regnet_mapper::{FaultSet, ManagedNetwork};
//!
//! let physical = gen::torus_2d(4, 4, 2).unwrap();
//! let mut net = ManagedNetwork::new(physical, RoutingScheme::ItbRr).unwrap();
//! // A cable dies; the mapper re-explores and rebuilds the routes.
//! let report = net.inject(FaultSet::link(LinkId(0))).unwrap();
//! assert_eq!(report.lost_hosts, 0);
//! assert!(net.route_db().iter_pairs().count() > 0);
//! ```

mod discovery;
mod fault;
mod managed;
mod runtime;

pub use discovery::{discover, DiscoveredNetwork, MapperError};
pub use fault::FaultSet;
pub use managed::{ManagedNetwork, ReconfigReport};
pub use runtime::{rebuild_physical_routes, PhysicalRoutes};
