//! Runtime-callable reconfiguration: rebuild the routing tables for the
//! surviving component of a faulted network and translate them back into
//! **physical** identifiers.
//!
//! [`discover`] renumbers the surviving network (as the real Myrinet mapper
//! does), which is the right model for static re-mapping — but a *running*
//! simulator keeps its physical switch/channel state and cannot renumber
//! mid-flight. [`rebuild_physical_routes`] bridges the two worlds: it runs
//! discovery, builds a fresh [`RouteDb`] for the requested scheme on the
//! discovered topology (root = the seed's switch, exactly what the MCP's
//! re-mapping would elect), and rewrites every route template with physical
//! switch ids, physical port bytes and physical in-transit host ids. Pairs
//! that ended up in different components simply have no route — the
//! resulting table is *partial* (see [`RouteDb::from_templates_partial`]).

use regnet_core::{JourneyTemplate, RouteDb, RouteDbConfig, RoutingScheme, Segment, SegmentEnd};
use regnet_routing::SwitchPath;
use regnet_topology::{HostId, Orientation, Port, PortTarget, SwitchId, Topology};

use crate::discovery::{discover, DiscoveredNetwork, MapperError};
use crate::fault::FaultSet;

/// Routing tables rebuilt after a fault, expressed in physical ids, plus
/// everything needed to audit them.
#[derive(Debug, Clone)]
pub struct PhysicalRoutes {
    /// The rebuilt tables in **physical** coordinates. Partial: switch
    /// pairs separated by the faults have no alternatives; check
    /// [`RouteDb::has_route`] before selecting.
    pub db: RouteDb,
    /// Physical host id → still reachable from the seed's component.
    pub reachable_hosts: Vec<bool>,
    /// The discovery result the tables were built from (id maps included).
    pub discovered: DiscoveredNetwork,
    /// The same tables in discovered coordinates (what `RouteDb::build`
    /// produced); kept for legality audits.
    pub mapped_db: RouteDb,
}

impl PhysicalRoutes {
    /// Number of physical hosts that are no longer reachable.
    pub fn lost_hosts(&self) -> usize {
        self.reachable_hosts.iter().filter(|r| !**r).count()
    }

    /// Ordered host pairs (src ≠ dst) that can no longer communicate.
    pub fn unreachable_pairs(&self, physical: &Topology) -> u64 {
        let n = physical.num_hosts() as u64;
        let live = self.reachable_hosts.iter().filter(|r| **r).count() as u64;
        // Every pair involving a lost host, plus nothing else: within the
        // seed's component the rebuilt tables are complete.
        n * (n - 1) - live * (live - 1)
    }

    /// Audit the rebuilt tables: every route must be up\*/down\*-legal on
    /// the discovered topology (the scheme's deadlock-freedom invariant)
    /// and its physical translation must traverse only live links, with
    /// live, reachable in-transit hosts. Cheap enough to run after every
    /// reconfiguration in tests.
    pub fn verify(&self, physical: &Topology, faults: &FaultSet) -> Result<(), String> {
        // Legality in discovered coordinates (where the up*/down* tree
        // lives; the root is the seed's switch = discovered switch 0).
        let orient = Orientation::compute(&self.discovered.topo, SwitchId(0));
        for (s, d, alts) in self.mapped_db.iter_pairs() {
            for t in alts {
                for seg in &t.segments {
                    let path = SwitchPath::new(seg.switches.clone());
                    if !path.is_connected(&self.discovered.topo) {
                        return Err(format!("{s}->{d}: segment not connected: {path}"));
                    }
                    if !path.is_legal(&orient) {
                        return Err(format!("{s}->{d}: illegal segment: {path}"));
                    }
                }
            }
        }
        // Physical translation: ports, links and in-transit hosts.
        for (ps, pd, alts) in self.db.iter_pairs() {
            for t in alts {
                let mut entry_switch: Option<SwitchId> = None;
                for (si, seg) in t.segments.iter().enumerate() {
                    let is_final = si == t.segments.len() - 1;
                    let expect_ports = seg.switches.len() - usize::from(is_final);
                    if seg.ports.len() != expect_ports {
                        return Err(format!("{ps}->{pd}: segment {si} port count"));
                    }
                    if let Some(entry) = entry_switch {
                        if seg.switches.first() != Some(&entry) {
                            return Err(format!("{ps}->{pd}: segment {si} entry switch"));
                        }
                    }
                    for i in 0..seg.switches.len() - 1 {
                        match physical.port_target(seg.switches[i], seg.ports[i]) {
                            Some(PortTarget::Switch { to, link, .. })
                                if to == seg.switches[i + 1]
                                    && faults.is_link_alive(physical, link) => {}
                            other => {
                                return Err(format!(
                                    "{ps}->{pd}: segment {si} hop {i} does not cross a live \
                                     link to {}: {other:?}",
                                    seg.switches[i + 1]
                                ));
                            }
                        }
                    }
                    match seg.end {
                        SegmentEnd::Deliver => {}
                        SegmentEnd::Itb(h) => {
                            if !faults.is_host_alive(physical, h) {
                                return Err(format!("{ps}->{pd}: dead in-transit host {h}"));
                            }
                            if !self.reachable_hosts[h.idx()] {
                                return Err(format!("{ps}->{pd}: unreachable in-transit host {h}"));
                            }
                            if seg.ports.last() != Some(&physical.host_port(h)) {
                                return Err(format!("{ps}->{pd}: wrong port for ITB host {h}"));
                            }
                            entry_switch = Some(physical.host_switch(h));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Lowest-numbered port of `from` that reaches `to` over a live link
/// (parallel links: a dead sibling is skipped).
fn pick_live_port(
    physical: &Topology,
    faults: &FaultSet,
    from: SwitchId,
    to: SwitchId,
) -> Option<Port> {
    physical.ports_of(from).find_map(|(p, t)| match t {
        PortTarget::Switch { to: next, link, .. }
            if next == to && faults.is_link_alive(physical, link) =>
        {
            Some(p)
        }
        _ => None,
    })
}

fn translate_template(
    physical: &Topology,
    faults: &FaultSet,
    d: &DiscoveredNetwork,
    t: &JourneyTemplate,
) -> JourneyTemplate {
    let segments = t
        .segments
        .iter()
        .map(|seg| {
            let switches: Vec<SwitchId> = seg
                .switches
                .iter()
                .map(|s| d.switch_from_new[s.idx()])
                .collect();
            let mut ports: Vec<Port> = switches
                .windows(2)
                .map(|w| {
                    pick_live_port(physical, faults, w[0], w[1])
                        .expect("discovered link lost its physical counterpart")
                })
                .collect();
            let end = match seg.end {
                SegmentEnd::Deliver => SegmentEnd::Deliver,
                SegmentEnd::Itb(h) => {
                    let ph = d.host_from_new[h.idx()];
                    ports.push(physical.host_port(ph));
                    SegmentEnd::Itb(ph)
                }
            };
            Segment {
                switches,
                ports,
                end,
            }
        })
        .collect();
    JourneyTemplate { segments }
}

/// Re-map the network after `faults` and rebuild `scheme`'s routing tables
/// in **physical** coordinates (see the module docs). `cfg.root` is
/// ignored: the up\*/down\* root is the seed's switch, as a real
/// re-mapping from that vantage point would elect.
pub fn rebuild_physical_routes(
    physical: &Topology,
    faults: &FaultSet,
    seed: HostId,
    scheme: RoutingScheme,
    cfg: &RouteDbConfig,
) -> Result<PhysicalRoutes, MapperError> {
    let discovered = discover(physical, faults, seed)?;
    let mut db_cfg = cfg.clone();
    db_cfg.root = SwitchId(0);
    let mapped_db = RouteDb::build(&discovered.topo, scheme, &db_cfg);

    let n = physical.num_switches();
    let mut templates: Vec<Vec<JourneyTemplate>> = vec![Vec::new(); n * n];
    for ps in physical.switches() {
        let Some(ns) = discovered.switch_to_new[ps.idx()] else {
            continue;
        };
        for pd in physical.switches() {
            let Some(nd) = discovered.switch_to_new[pd.idx()] else {
                continue;
            };
            templates[ps.idx() * n + pd.idx()] = mapped_db
                .alternatives(ns, nd)
                .iter()
                .map(|t| translate_template(physical, faults, &discovered, t))
                .collect();
        }
    }
    let db = RouteDb::from_templates_partial(scheme, n, physical.num_hosts(), templates);
    let reachable_hosts: Vec<bool> = discovered.host_to_new.iter().map(|h| h.is_some()).collect();
    Ok(PhysicalRoutes {
        db,
        reachable_hosts,
        discovered,
        mapped_db,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::{gen, LinkId};

    #[test]
    fn fault_free_rebuild_covers_every_pair() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        for scheme in RoutingScheme::all() {
            let pr = rebuild_physical_routes(
                &physical,
                &FaultSet::new(),
                HostId(0),
                scheme,
                &RouteDbConfig::default(),
            )
            .unwrap();
            for s in physical.switches() {
                for d in physical.switches() {
                    assert!(pr.db.has_route(s, d), "{scheme} {s}->{d}");
                }
            }
            assert!(pr.reachable_hosts.iter().all(|&r| r));
            assert_eq!(pr.unreachable_pairs(&physical), 0);
            pr.verify(&physical, &FaultSet::new()).unwrap();
        }
    }

    #[test]
    fn dead_link_rebuild_avoids_the_link_and_verifies() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let l = physical
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .unwrap()
            .id;
        let faults = FaultSet::link(l);
        for scheme in RoutingScheme::all() {
            let pr = rebuild_physical_routes(
                &physical,
                &faults,
                HostId(0),
                scheme,
                &RouteDbConfig::default(),
            )
            .unwrap();
            pr.verify(&physical, &faults).unwrap();
            assert_eq!(pr.lost_hosts(), 0);
            // No route template may cross the dead link.
            let (a, b) = physical.link(l).switch_ends().unwrap();
            for (_, _, alts) in pr.db.iter_pairs() {
                for t in alts {
                    for seg in &t.segments {
                        for (i, w) in seg.switches.windows(2).enumerate() {
                            if w == [a, b] || w == [b, a] {
                                // A parallel live link is fine; the exact
                                // dead one is not.
                                let pt = physical.port_target(seg.switches[i], seg.ports[i]);
                                if let Some(PortTarget::Switch { link, .. }) = pt {
                                    assert_ne!(link, l, "route crosses the dead link");
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn translated_routes_materialise_and_validate() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        let faults = FaultSet::switch(SwitchId(5));
        let pr = rebuild_physical_routes(
            &physical,
            &faults,
            HostId(0),
            RoutingScheme::ItbRr,
            &RouteDbConfig::default(),
        )
        .unwrap();
        pr.verify(&physical, &faults).unwrap();
        let mut sel = pr.db.selector();
        for src in physical.hosts() {
            for dst in physical.hosts() {
                if src == dst || !pr.reachable_hosts[src.idx()] || !pr.reachable_hosts[dst.idx()] {
                    continue;
                }
                let j = pr.db.select(&physical, src, dst, &mut sel);
                j.validate().unwrap();
                assert_eq!((j.src, j.dst), (src, dst));
            }
        }
        assert_eq!(pr.lost_hosts(), 2);
        assert!(pr.unreachable_pairs(&physical) > 0);
    }

    #[test]
    fn renumbered_root_follows_the_seed() {
        let physical = gen::torus_2d(4, 4, 2).unwrap();
        // Manage from a host on physical switch 10: the rebuilt up*/down*
        // tree is rooted there (discovered switch 0 = physical switch 10).
        let seed = physical.hosts_of(SwitchId(10))[0];
        let pr = rebuild_physical_routes(
            &physical,
            &FaultSet::new(),
            seed,
            RoutingScheme::UpDown,
            &RouteDbConfig::default(),
        )
        .unwrap();
        assert_eq!(pr.discovered.switch_from_new[0], SwitchId(10));
        pr.verify(&physical, &FaultSet::new()).unwrap();
    }

    #[test]
    fn parallel_link_fault_uses_the_sibling() {
        // 2-ary torus rows create parallel links; killing one of a parallel
        // pair must re-route over its sibling, not around the ring.
        let physical = gen::torus_2d(2, 2, 1).unwrap();
        let (mut para, mut seen) = (None, std::collections::HashMap::new());
        for link in physical.links() {
            if let Some((a, b)) = link.switch_ends() {
                let key = if a < b { (a, b) } else { (b, a) };
                if let Some(&first) = seen.get(&key) {
                    para = Some((first, link.id));
                    break;
                }
                seen.insert(key, link.id);
            }
        }
        let (dead, _alive): (LinkId, LinkId) = para.expect("2-ary torus has parallel links");
        let faults = FaultSet::link(dead);
        let pr = rebuild_physical_routes(
            &physical,
            &faults,
            HostId(0),
            RoutingScheme::UpDown,
            &RouteDbConfig::default(),
        )
        .unwrap();
        pr.verify(&physical, &faults).unwrap();
        assert_eq!(pr.lost_hosts(), 0);
    }
}
