//! Property tests: arbitrary fault sets on arbitrary topologies either
//! fail cleanly or yield a connected, fully-routable surviving network.

use proptest::prelude::*;

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_mapper::{discover, FaultSet, MapperError};
use regnet_topology::{gen, DistanceMatrix, HostId, LinkId, SwitchId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn discovery_is_total_and_sound(
        tseed in 0u64..500,
        kill_switches in prop::collection::vec(0u32..16, 0..3),
        kill_links in prop::collection::vec(0u32..200, 0..4),
        kill_hosts in prop::collection::vec(0u32..32, 0..3),
    ) {
        let physical = gen::irregular_random(8 + (tseed % 8) as usize, 3, 2, tseed).unwrap();
        let mut faults = FaultSet::new();
        for s in kill_switches {
            faults.kill_switch(SwitchId(s % physical.num_switches() as u32));
        }
        for l in kill_links {
            faults.kill_link(LinkId(l % physical.num_links() as u32));
        }
        for h in kill_hosts {
            faults.kill_host(HostId(h % physical.num_hosts() as u32));
        }
        match discover(&physical, &faults, HostId(0)) {
            Err(MapperError::SeedDead(_)) => {
                prop_assert!(!faults.is_host_alive(&physical, HostId(0)));
            }
            Err(MapperError::NothingReachable) => {}
            Err(MapperError::Rebuild(e)) => {
                return Err(TestCaseError::fail(format!("rebuild failed: {e}")));
            }
            Ok(d) => {
                // Surviving topology is valid by construction (builder
                // validates connectivity); check the id maps are a
                // bijection between survivors.
                for (new, &old) in d.host_from_new.iter().enumerate() {
                    prop_assert_eq!(d.host_to_new[old.idx()], Some(HostId(new as u32)));
                }
                for (new, &old) in d.switch_from_new.iter().enumerate() {
                    prop_assert_eq!(d.switch_to_new[old.idx()], Some(SwitchId(new as u32)));
                }
                // Dead elements are never in the maps.
                for s in physical.switches() {
                    if !faults.is_switch_alive(s) {
                        prop_assert!(d.switch_to_new[s.idx()].is_none());
                    }
                }
                for h in physical.hosts() {
                    if !faults.is_host_alive(&physical, h) {
                        prop_assert!(d.host_to_new[h.idx()].is_none());
                    }
                }
                // And the survivors are fully routable on the new graph:
                // minimal ITB routes, except for pairs that fell back to a
                // plain legal path because every minimal path needed an
                // in-transit host at a hostless switch (possible after
                // faults strip all hosts from a switch).
                let db = RouteDb::build(&d.topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
                let dm = DistanceMatrix::compute(&d.topo);
                for (s, t, alts) in db.iter_pairs() {
                    prop_assert!(!alts.is_empty());
                    for a in alts {
                        if a.num_itbs() == 0 && alts.len() == 1 {
                            // Possibly a legal-path fallback: may be longer
                            // than minimal, but never shorter.
                            prop_assert!(a.total_links() >= dm.get(s, t) as usize);
                        } else {
                            prop_assert_eq!(a.total_links(), dm.get(s, t) as usize);
                        }
                    }
                }
            }
        }
    }
}
