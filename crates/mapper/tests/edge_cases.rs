//! Mapper edge cases: reconfiguring when the management host itself dies,
//! when a fault partitions the network, and when a repair must restore the
//! original pair coverage.

use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_mapper::{rebuild_physical_routes, FaultSet, MapperError};
use regnet_topology::{gen, HostId, LinkId, SwitchId, Topology, TopologyBuilder};

fn rebuild(
    topo: &Topology,
    faults: &FaultSet,
    seed: HostId,
) -> Result<regnet_mapper::PhysicalRoutes, MapperError> {
    rebuild_physical_routes(
        topo,
        faults,
        seed,
        RoutingScheme::ItbRr,
        &RouteDbConfig::default(),
    )
}

/// A dumbbell: two 2x2 meshes joined by a single bridge link. Killing the
/// bridge partitions the network into two equal components.
fn dumbbell() -> (Topology, LinkId) {
    let mut b = TopologyBuilder::new("dumbbell", 8);
    b.add_switches(8);
    for base in [0u32, 4] {
        b.connect(SwitchId(base), SwitchId(base + 1)).unwrap();
        b.connect(SwitchId(base), SwitchId(base + 2)).unwrap();
        b.connect(SwitchId(base + 1), SwitchId(base + 3)).unwrap();
        b.connect(SwitchId(base + 2), SwitchId(base + 3)).unwrap();
    }
    let bridge = b.connect(SwitchId(3), SwitchId(4)).unwrap();
    b.attach_hosts_everywhere(1).unwrap();
    (b.build().unwrap(), bridge)
}

/// Killing the host running the mapper (or its switch) makes
/// reconfiguration impossible from that vantage point — a typed error, not
/// a bogus map. A different live seed still succeeds.
#[test]
fn dead_seed_host_fails_cleanly() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let seed = HostId(0);
    let e = rebuild(&topo, &FaultSet::host(seed), seed);
    assert_eq!(e.unwrap_err(), MapperError::SeedDead(seed));
    let e = rebuild(&topo, &FaultSet::switch(topo.host_switch(seed)), seed);
    assert_eq!(e.unwrap_err(), MapperError::SeedDead(seed));

    // Another host takes over and maps around the dead one.
    let pr = rebuild(&topo, &FaultSet::host(seed), HostId(1)).unwrap();
    pr.verify(&topo, &FaultSet::host(seed)).unwrap();
    assert_eq!(pr.lost_hosts(), 1);
    assert!(!pr.reachable_hosts[seed.idx()]);
}

/// A partition is survivable: each half rebuilds a consistent, legal,
/// partial table covering exactly its own component, and the two halves'
/// reachability views are complementary.
#[test]
fn partition_rebuilds_both_halves() {
    let (topo, bridge) = dumbbell();
    let faults = FaultSet::link(bridge);
    let left_seed = topo.hosts_of(SwitchId(0))[0];
    let right_seed = topo.hosts_of(SwitchId(4))[0];

    let left = rebuild(&topo, &faults, left_seed).unwrap();
    let right = rebuild(&topo, &faults, right_seed).unwrap();
    left.verify(&topo, &faults).unwrap();
    right.verify(&topo, &faults).unwrap();

    assert_eq!(left.lost_hosts(), 4);
    assert_eq!(right.lost_hosts(), 4);
    for h in topo.hosts() {
        assert_ne!(
            left.reachable_hosts[h.idx()],
            right.reachable_hosts[h.idx()],
            "{h} must belong to exactly one half"
        );
    }
    // The left view routes within its own half and never across the cut.
    for s in topo.switches() {
        for d in topo.switches() {
            if s == d {
                continue;
            }
            if s.0 < 4 && d.0 < 4 {
                assert!(left.db.has_route(s, d), "{s}->{d} should stay routable");
            } else if (s.0 < 4) != (d.0 < 4) {
                assert!(!left.db.has_route(s, d), "{s}->{d} crosses the cut");
            }
        }
    }
    // 8 hosts, 4 live per side: 8*7 - 4*3 = 44 ordered pairs lost per view.
    assert_eq!(left.unreachable_pairs(&topo), 44);
    assert_eq!(right.unreachable_pairs(&topo), 44);
}

/// Repairing the fault restores exactly the original pair coverage.
#[test]
fn repair_restores_pair_coverage() {
    let (topo, bridge) = dumbbell();
    let seed = HostId(0);

    let baseline = rebuild(&topo, &FaultSet::new(), seed).unwrap();

    let mut faults = FaultSet::link(bridge);
    let broken = rebuild(&topo, &faults, seed).unwrap();
    assert!(broken.lost_hosts() > 0);
    assert!(broken.unreachable_pairs(&topo) > 0);

    faults.revive_link(bridge);
    assert!(faults.is_empty(), "repair must cancel the fault");
    let healed = rebuild(&topo, &faults, seed).unwrap();
    healed.verify(&topo, &faults).unwrap();
    assert_eq!(healed.lost_hosts(), 0);
    assert_eq!(healed.unreachable_pairs(&topo), 0);
    for s in topo.switches() {
        for d in topo.switches() {
            assert_eq!(
                healed.db.has_route(s, d),
                baseline.db.has_route(s, d),
                "{s}->{d} coverage differs from the pre-fault tables"
            );
        }
    }
}
