//! The shard-parallel cycle engine behind [`Scheduler::Parallel`].
//!
//! # Architecture
//!
//! The topology is cut into `threads` shards ([`crate::partition`]); each
//! shard owns its switches, the NICs attached to them, and runs a private
//! [`ActiveSched`] over them. A cycle executes as two barrier-separated
//! regions on a persistent [`WorkerPool`]:
//!
//! * **Region A** — per shard: drain the shard's ctl wheel and flip sender
//!   flags (phase 1), then drain its data wheel and deliver arrivals
//!   (phase 2). The two sequential phases fuse safely because arrival
//!   processing never reads a `stopped` flag.
//! * **Mid-barrier** (main thread) — apply cross-shard control symbols
//!   emitted during region A, in ascending channel order. They cannot be
//!   written in-region: the owner of the channel's *sender* side may still
//!   be draining that very slot.
//! * **Region B** — per shard: advance its switches (phase 3) and transmit
//!   from its NICs (phase 4), with the same sorted-active-list visit order
//!   as the sequential active-set engine.
//! * **Fold** (main thread) — apply cross-shard timing-wheel notes, replay
//!   the deferred observable effects in sequential order, merge per-shard
//!   counter/measure deltas, then run generation and observers inline.
//!
//! # Why results are bit-identical to the sequential engines
//!
//! *Lookahead.* Every channel has `delay ≥ 1` (asserted in
//! `Channel::new`), so anything sent at cycle `t` is consumed at `t+delay
//! ≥ t+1`: a region never reads a same-cycle write of another shard. The
//! only same-cycle cross-shard interactions are the control-symbol
//! supersede (handled by the mid-barrier) and the timing-wheel notes
//! (applied at the fold, before cycle `t+1` starts; buckets are
//! sorted+dedup'd at drain, so note insertion order is immaterial).
//!
//! * **State.** Each switch, NIC and per-shard scheduler is touched by
//!   exactly one shard per region. Channels and packets can be touched by
//!   two shards, but only through disjoint fields (see `channel::raw`,
//!   `packet::raw`).
//! * **Visit order.** Within a shard, components are visited in ascending
//!   index order (sorted buckets/lists), exactly like the sequential
//!   engines; effects that are order-sensitive *across* shards (journal
//!   records, trace digest folds, delivery completions — the arena and
//!   message free-lists reuse slots in removal order) are buffered
//!   per-shard keyed by channel/switch/NIC index and replayed at the fold
//!   in one stream per phase, stably sorted by key. BFS shards are not
//!   index-contiguous, so the sort (not concatenation) is what
//!   reconstructs the global sequential order.
//! * **Order-free folds.** Counters and the measurement deltas folded at
//!   the barrier are sums/maxes; `last_activity` is "any shard moved a
//!   flit this cycle ⇒ cycle", matching the sequential last-writer value.
//! * **RNG and generation.** Message generation stays on the main thread
//!   (phase 5), so per-NIC RNG draws happen in the sequential order.
//!
//! The number of live executors is [`crate::threads::par_executors`] —
//! capped by the host's cores (override: `REGNET_PAR_WORKERS`) — and each
//! executor processes shards `e, e+E, e+2E, …` in order. Because every
//! cross-shard effect is buffered and folded deterministically, results
//! depend only on the shard count, never on the executor count or
//! interleaving: `Parallel { threads: 4 }` is bit-identical on a 1-core
//! and a 64-core host. `tests/scheduler_equivalence.rs` pins all of this
//! against `ActiveSet`.
//!
//! # Faults
//!
//! Fault injection runs shard-parallel and stays bit-identical to the
//! sequential engines. The cross-shard pieces of the fault machinery are
//! confined to the main thread; the work splits by phase:
//!
//! * **Phase 0** (main thread, workers parked, before region A) — fault
//!   events fire, their victims are purged globally and reconfiguration
//!   advances, exactly as in the sequential engines. Purge control
//!   fix-ups and retransmission timers route their wakes to the owner
//!   shard's scheduler (`Simulator::sched_note_ctl` /
//!   `sched_wake_nic_at`).
//! * **Regions** — the mirrors below carry the same fault branches as
//!   their sequential counterparts: dead-switch skip, dead-output
//!   detection at routing, the dead-cable transfer gate, the
//!   reconfiguration source freeze, and the per-packet routability check
//!   with journey re-selection. All fault state read in-region
//!   (`FaultSet`, `host_ok`, the installed tables) only mutates in phase
//!   0, and path-selection state is sharded per source host
//!   ([`regnet_core::SrcSelector`]), so nothing here crosses a shard.
//! * **Loss phase** (main thread, after the fold) — mid-cycle worm
//!   truncations and source drops are *never* applied in-region, in any
//!   engine: the switch/NIC phases record `(component, packet)` pairs
//!   ([`ShardState::sw_loss`] / [`ShardState::nic_drop`] here, the
//!   simulator's pending lists sequentially) and `Simulator::loss_phase`
//!   replays them stably sorted by component index after NIC
//!   transmission. The packet/message arenas therefore mutate in the
//!   same within-cycle order — deliveries, then losses, then generation
//!   — under every scheduler, keeping free-list reuse bit-identical.
//!
//! # Safety model
//!
//! Workers address simulator state through [`ParCtx`], a bundle of raw
//! pointers built fresh each cycle from `&mut Simulator`. Soundness
//! arguments, in one place:
//!
//! * Different elements of the `channels`/`switches`/`nics`/packet-slot
//!   arrays are disjoint objects; two shards never form `&mut` to the same
//!   element (same-element access goes through the field-disjoint raw
//!   helpers in `channel::raw`/`packet::raw`).
//! * Resolving a packet id momentarily materializes `&mut Packet` to take
//!   its address ([`pkt_ptr`]). Creating a reference is not a memory
//!   access; all real loads/stores after it go through field-disjoint
//!   places, so no data race exists. (This pattern is stricter-aliasing
//!   folklore rather than a formal guarantee; it is confined to this
//!   module on purpose.)
//! * `Vec`s never grow/shrink while raw pointers are live: arena/message
//!   inserts and removes happen only on the main thread between regions.
//! * The pool's job pointer is valid for the duration of `run` because
//!   `run` blocks until every worker reports done (release/acquire on
//!   `done`), and the epoch bump that publishes the job is a release
//!   store matched by the workers' acquire loads.

use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use regnet_core::{RouteDb, SegmentEnd, SrcSelector};
use regnet_topology::{SwitchId, Topology};

use crate::channel::{self, Channel, Receiver, Sender, CTL_NONE, CTL_STOP};
use crate::config::SimConfig;
use crate::counters::Counters;
use crate::events::{BlockCause, EventKind, NO_PACKET};
use crate::faultplan::FaultRuntime;
use crate::nic::{Nic, RxState, TxKind, TxState};
use crate::packet::{self, Packet};
use crate::partition::ShardPlan;
use crate::sched::ActiveSched;
use crate::sim::MsgState;
use crate::switch::{HeadState, InPkt, SwitchState};

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

type Job = dyn Fn(usize) + Sync;

struct PoolShared {
    /// Bumped (release) to publish a new job; workers acquire-load it.
    epoch: AtomicU64,
    /// Workers that finished the current epoch's job.
    done: AtomicUsize,
    quit: AtomicBool,
    /// The job for the current epoch. Only written by the main thread
    /// while every worker is provably idle (previous epoch fully done).
    job: UnsafeCell<Option<*const Job>>,
}

// SAFETY: `job` is written only between epochs (all workers idle, main
// thread owns the cell) and read only after the release/acquire epoch
// handshake; everything else is atomics.
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// Persistent barrier-synchronized workers, spawned once per simulator.
/// Executor 0 is the calling thread; executors `1..=n` are pool threads.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool driving `executors` executors total (so `executors - 1`
    /// spawned threads; `executors == 1` spawns nothing and `run` degrades
    /// to a plain call).
    pub(crate) fn new(executors: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            done: AtomicUsize::new(0),
            quit: AtomicBool::new(false),
            job: UnsafeCell::new(None),
        });
        let handles = (1..executors)
            .map(|e| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("regnet-par-{e}"))
                    .spawn(move || worker_loop(&shared, e))
                    .expect("spawn parallel-engine worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    pub(crate) fn executors(&self) -> usize {
        self.handles.len() + 1
    }

    /// Run `job(e)` once per executor `e ∈ 0..executors`, on this thread
    /// for `e = 0`; returns when every executor finished.
    pub(crate) fn run(&self, job: &Job) {
        let n = self.handles.len();
        if n == 0 {
            job(0);
            return;
        }
        // SAFETY: workers are idle (previous run drained `done`), so the
        // cell is unobserved; the raw pointer outlives the call because we
        // block on `done` below before `job` can go out of scope.
        unsafe { *self.shared.job.get() = Some(job as *const Job) };
        self.shared.done.store(0, Ordering::Relaxed);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        job(0);
        let mut spins = 0u32;
        while self.shared.done.load(Ordering::Acquire) != n {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.quit.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for h in &self.handles {
            h.thread().unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, executor: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for a new epoch: spin briefly, then yield, then park with a
        // timeout (a pure spin is catastrophic on an oversubscribed host,
        // and the timeout bounds a lost unpark between check and park).
        let mut spins = 0u32;
        loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else if spins < 512 {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(Duration::from_micros(200));
            }
        }
        if shared.quit.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: the acquire load of `epoch` synchronized with the
        // release store in `run`, which wrote `job` beforehand.
        let job = unsafe { (*shared.job.get()).expect("epoch bumped without a job") };
        (unsafe { &*job })(executor);
        shared.done.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Deferred cross-shard effects
// ---------------------------------------------------------------------------

/// Observable side effect of an arrival (region A), replayed at the fold
/// in ascending-channel order so journal/trace/free-list mutations happen
/// exactly as the sequential arrival phase would.
pub(crate) enum ArrFx {
    /// Journal-only record (switch arrival).
    Journal { pid: u32, kind: EventKind },
    /// ITB ejection: trace hook + journal record.
    ItbEject { pid: u32, host: u32, overflow: bool },
    /// Packet fully received at its destination: the entire delivery
    /// completion (arena/message bookkeeping, measurement, trace digest)
    /// is replayed by `Simulator::complete_delivery`.
    Deliver { pid: u32, host: u32 },
}

/// Observable NIC-transmit side effect (region B), keyed by NIC index.
pub(crate) enum NicFx {
    Inject { pid: u32, src: u32, dst: u32 },
    Reinject { pid: u32, host: u32 },
}

/// One shard's private scheduler plus its per-cycle outboxes. Everything
/// here is written by exactly one executor per region and drained by the
/// main thread at the barriers.
pub(crate) struct ShardState {
    pub(crate) sched: ActiveSched,
    /// Event counts this cycle; folded into the global registry (sums).
    pub(crate) counters: Counters,
    /// Any flit/ctl movement this cycle (watchdog feed).
    pub(crate) activity: bool,
    // Measurement deltas (only maintained while measuring).
    pub(crate) max_pool_flits: u32,
    pub(crate) itb_overflows: u64,
    pub(crate) reinject_bubbles: u64,
    /// Region A cross-shard control symbols `(channel, symbol)`; applied
    /// by the main thread at the mid-barrier in ascending channel order.
    pub(crate) ctl_out: Vec<(u32, u8)>,
    /// Cross-shard ctl-wheel notes (region B sends; region A cross-shard
    /// sends are noted when the mid-barrier applies them).
    pub(crate) note_ctl_out: Vec<u32>,
    /// Cross-shard data-wheel notes (region B sends into another shard).
    pub(crate) note_data_out: Vec<u32>,
    /// Deferred effects, keyed for the stable global replay sort.
    pub(crate) arr_fx: Vec<(u32, ArrFx)>,
    pub(crate) sw_fx: Vec<(u32, u32, EventKind)>,
    pub(crate) nic_fx: Vec<(u32, NicFx)>,
    /// Worms routed into a dead output this cycle `(switch, packet)`;
    /// truncated by `Simulator::loss_phase` after the fold.
    pub(crate) sw_loss: Vec<(u32, u32)>,
    /// Unroutable packets skipped at their source NIC `(host, packet)`;
    /// dropped by `Simulator::loss_phase` after the fold.
    pub(crate) nic_drop: Vec<(u32, u32)>,
    /// Per-shard span wall time this cycle, ns: ctl deliveries, data
    /// arrivals (region A), switch advance, NIC transmit (region B).
    /// Written only when `ParCtx::prof_on`; drained by `step_parallel`.
    pub(crate) span_ns: [u64; 4],
}

impl ShardState {
    fn new(delay: u32, n_switches: usize, n_nics: usize) -> ShardState {
        ShardState {
            sched: ActiveSched::new(delay, n_switches, n_nics),
            counters: Counters::new(),
            activity: false,
            max_pool_flits: 0,
            itb_overflows: 0,
            reinject_bubbles: 0,
            ctl_out: Vec::new(),
            note_ctl_out: Vec::new(),
            note_data_out: Vec::new(),
            arr_fx: Vec::new(),
            sw_fx: Vec::new(),
            nic_fx: Vec::new(),
            sw_loss: Vec::new(),
            nic_drop: Vec::new(),
            span_ns: [0; 4],
        }
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Everything `Scheduler::Parallel` adds to a simulator: the plan, one
/// [`ShardState`] per shard, channel ownership maps and the worker pool.
pub(crate) struct ParEngine {
    /// Shard count as requested (reported by `Simulator::scheduler`).
    pub(crate) requested: usize,
    pub(crate) plan: ShardPlan,
    pub(crate) shards: Vec<ShardState>,
    pub(crate) pool: WorkerPool,
    /// Shard that drains each channel's data side (owner of the receiver).
    pub(crate) data_owner: Vec<u32>,
    /// Shard that drains each channel's ctl side (owner of the sender,
    /// whose `stopped` flags the symbols flip).
    pub(crate) ctl_owner: Vec<u32>,
    // Reused fold scratch.
    pub(crate) merged_ctl: Vec<(u32, u8)>,
    pub(crate) merged_arr: Vec<(u32, ArrFx)>,
    pub(crate) merged_sw: Vec<(u32, u32, EventKind)>,
    pub(crate) merged_nic: Vec<(u32, NicFx)>,
}

impl ParEngine {
    pub(crate) fn new(
        topo: &Topology,
        requested: usize,
        delay: u32,
        channels: &[Channel],
        n_switches: usize,
        n_nics: usize,
    ) -> ParEngine {
        let plan = ShardPlan::new(topo, requested);
        let shards = (0..plan.n_shards())
            // Active lists are indexed by global component id (the
            // membership bitmaps are cheap), but each shard only ever
            // inserts its own components.
            .map(|_| ShardState::new(delay, n_switches, n_nics))
            .collect();
        let shard_of = |end: ComponentRef| match end {
            ComponentRef::Switch(sw) => plan.switch_shard(sw as usize) as u32,
            ComponentRef::Nic(host) => plan.nic_shard(host as usize) as u32,
        };
        let data_owner = channels
            .iter()
            .map(|c| {
                shard_of(match c.receiver {
                    Receiver::SwitchIn { sw, .. } => ComponentRef::Switch(sw),
                    Receiver::Nic { host } => ComponentRef::Nic(host),
                })
            })
            .collect();
        let ctl_owner = channels
            .iter()
            .map(|c| {
                shard_of(match c.sender {
                    Sender::SwitchOut { sw, .. } => ComponentRef::Switch(sw),
                    Sender::Nic { host } => ComponentRef::Nic(host),
                })
            })
            .collect();
        let pool = WorkerPool::new(crate::threads::par_executors(plan.n_shards()));
        ParEngine {
            requested,
            plan,
            shards,
            pool,
            data_owner,
            ctl_owner,
            merged_ctl: Vec::new(),
            merged_arr: Vec::new(),
            merged_sw: Vec::new(),
            merged_nic: Vec::new(),
        }
    }
}

enum ComponentRef {
    Switch(u32),
    Nic(u32),
}

/// Raw-pointer view of the simulator for one parallel cycle. Built by
/// `Simulator::step_parallel`; see the module-level safety notes.
pub(crate) struct ParCtx {
    pub(crate) channels: *mut Channel,
    pub(crate) switches: *mut SwitchState,
    pub(crate) nics: *mut Nic,
    pub(crate) pkt_slots: *mut Option<Packet>,
    pub(crate) msg_slots: *mut Option<MsgState>,
    pub(crate) shards: *mut ShardState,
    pub(crate) n_shards: usize,
    pub(crate) executors: usize,
    pub(crate) data_owner: *const u32,
    pub(crate) ctl_owner: *const u32,
    pub(crate) cfg: *const SimConfig,
    pub(crate) topo: *const Topology,
    /// Faults armed. When false, `faults` is null and every fault branch
    /// below is dead.
    pub(crate) faults_on: bool,
    /// Read-only in-region: `FaultSet`/`host_ok`/`reconfig_due` and the
    /// installed tables only mutate in phase 0 (main thread, workers
    /// parked). Null when `faults_on` is false.
    pub(crate) faults: *const FaultRuntime,
    /// The table fresh/retransmitted packets route from: the
    /// reconfigured tables once installed, the build-time `RouteDb`
    /// otherwise. Always valid.
    pub(crate) eff_db: *const RouteDb,
    /// Reconfigured tables are installed: re-select journeys at the
    /// source NIC (mirror of the sequential `f.routes.is_some()` branch).
    pub(crate) reselect: bool,
    /// Per-source path-selection state, indexed by host. A shard only
    /// touches the entries of hosts it owns, so selection is race-free
    /// and draws the same per-source sequence as the sequential engines.
    pub(crate) selectors: *mut SrcSelector,
    pub(crate) cycle: u64,
    pub(crate) measure_on: bool,
    /// Counters or journal enabled: compute block-cause diagnostics.
    pub(crate) diag: bool,
    pub(crate) journal_on: bool,
    pub(crate) trace_on: bool,
    /// Profiler enabled: workers time their region sub-drains into
    /// `ShardState::span_ns` (no `Instant` calls otherwise).
    pub(crate) prof_on: bool,
}

// SAFETY: shared across executors for the duration of one region; the
// disjointness discipline is documented at module level.
unsafe impl Sync for ParCtx {}

/// Resolve a live packet id to a raw pointer. Materializes a transient
/// `&mut Packet` (see the module safety notes); all subsequent access must
/// go through field places / `packet::raw`.
#[inline]
unsafe fn pkt_ptr(ctx: &ParCtx, pid: u32) -> *mut Packet {
    match &mut *ctx.pkt_slots.add(pid as usize) {
        Some(p) => p as *mut Packet,
        None => panic!("stale packet id"),
    }
}

#[inline]
unsafe fn msg_ptr(ctx: &ParCtx, midx: u32) -> *mut MsgState {
    match &mut *ctx.msg_slots.add(midx as usize) {
        Some(m) => m as *mut MsgState,
        None => panic!("stale message id"),
    }
}

/// Run the region-A job for every shard of `executor`.
pub(crate) fn run_region_a(ctx: &ParCtx, executor: usize) {
    let mut s = executor;
    while s < ctx.n_shards {
        unsafe { region_a(ctx, s) };
        s += ctx.executors;
    }
}

/// Run the region-B job for every shard of `executor`.
pub(crate) fn run_region_b(ctx: &ParCtx, executor: usize) {
    let mut s = executor;
    while s < ctx.n_shards {
        unsafe { region_b(ctx, s) };
        s += ctx.executors;
    }
}

// ---------------------------------------------------------------------------
// Region A: ctl deliveries + data arrivals (sequential phases 1 + 2)
// ---------------------------------------------------------------------------

/// Mirrors `Simulator::ctl_phase` + `arrival_phase` for one shard. The
/// fusion is safe: arrival processing never reads the flags ctl delivery
/// flips, and each shard drains its own ctl before its own arrivals so
/// intra-shard `send_ctl` calls find their slot already taken — exactly
/// the sequential call-order contract.
unsafe fn region_a(ctx: &ParCtx, s: usize) {
    let cycle = ctx.cycle;
    let sh = &mut *ctx.shards.add(s);
    let mut mark = ctx.prof_on.then(std::time::Instant::now);

    let bucket = sh.sched.take_ctl(cycle);
    for &ci in &bucket {
        let c = ctx.channels.add(ci as usize);
        let symbol = channel::raw::take_ctl_arrival(c, cycle);
        if symbol != CTL_NONE {
            // Mirror of `Simulator::deliver_ctl`.
            let stopped = symbol == CTL_STOP;
            if stopped {
                sh.counters.ctl_stops += 1;
            } else {
                sh.counters.ctl_gos += 1;
            }
            sh.activity = true;
            match (*c).sender {
                Sender::SwitchOut { sw, port } => {
                    (&mut (*ctx.switches.add(sw as usize)).outp)[port as usize]
                        .as_mut()
                        .expect("ctl for unconnected port")
                        .stopped = stopped;
                }
                Sender::Nic { host } => (*ctx.nics.add(host as usize)).stopped = stopped,
            }
        }
    }
    sh.sched.recycle(bucket);
    if let Some(m) = mark.as_mut() {
        let now = std::time::Instant::now();
        sh.span_ns[0] += (now - *m).as_nanos() as u64;
        *m = now;
    }

    let bucket = sh.sched.take_data(cycle);
    for &ci in &bucket {
        let c = ctx.channels.add(ci as usize);
        if let Some(pid) = channel::raw::take_arrival(c, cycle) {
            sh.activity = true;
            match (*c).receiver {
                Receiver::SwitchIn { sw, port } => switch_rx(ctx, sh, s, ci, sw, port, pid, cycle),
                Receiver::Nic { host } => nic_rx(ctx, sh, ci, host, pid, cycle),
            }
        }
    }
    sh.sched.recycle(bucket);
    if let Some(m) = mark {
        sh.span_ns[1] += m.elapsed().as_nanos() as u64;
    }
}

/// Emit a control symbol from region A. Intra-shard (this shard owns the
/// sender side too, so it already drained the slot): write directly.
/// Cross-shard: the owner may not have drained yet — defer to the
/// mid-barrier.
#[inline]
unsafe fn emit_ctl_region_a(ctx: &ParCtx, sh: &mut ShardState, s: usize, ci: u32, sym: u8) {
    if *ctx.ctl_owner.add(ci as usize) as usize == s {
        channel::raw::send_ctl(ctx.channels.add(ci as usize), ctx.cycle, sym);
        sh.sched.note_ctl(ctx.cycle, ci);
    } else {
        sh.ctl_out.push((ci, sym));
    }
}

/// Mirror of `Simulator::switch_rx`.
#[allow(clippy::too_many_arguments)]
unsafe fn switch_rx(
    ctx: &ParCtx,
    sh: &mut ShardState,
    s: usize,
    ci: u32,
    sw: u32,
    port: u8,
    pid: u32,
    _cycle: u64,
) {
    sh.sched.activate_switch(sw);
    let inp = (&mut (*ctx.switches.add(sw as usize)).inp)[port as usize]
        .as_mut()
        .expect("flit into unconnected port");
    let continuation = inp
        .queue
        .back()
        .map(|p| p.received < p.expected)
        .unwrap_or(false);
    if continuation {
        let back = inp.queue.back_mut().unwrap();
        debug_assert_eq!(back.pid, pid, "interleaved packets on one channel");
        back.received += 1;
    } else {
        let expected = packet::raw::expected_at_next_receiver(pkt_ptr(ctx, pid));
        debug_assert!(expected >= 2);
        inp.queue.push_back(InPkt {
            pid,
            expected,
            received: 1,
            forwarded: 0,
            header_consumed: false,
        });
        sh.counters.switch_arrivals += 1;
        if ctx.journal_on {
            sh.arr_fx.push((
                ci,
                ArrFx::Journal {
                    pid,
                    kind: EventKind::SwitchArrival { sw, port },
                },
            ));
        }
    }
    if let Some(ctl) = inp.on_flit_in(&*ctx.cfg) {
        let chan = inp.in_chan;
        emit_ctl_region_a(ctx, sh, s, chan, ctl);
    }
}

/// Mirror of `Simulator::nic_rx`, with the delivery completion deferred to
/// the fold (`ArrFx::Deliver`): it mutates globally shared state (arena
/// and message free-lists, measurement, trace digest) whose order across
/// shards must match the sequential channel order.
unsafe fn nic_rx(ctx: &ParCtx, sh: &mut ShardState, ci: u32, host: u32, pid: u32, cycle: u64) {
    let cfg = &*ctx.cfg;
    let nic = &mut *ctx.nics.add(host as usize);
    let is_new = match nic.rx {
        Some(rx) => {
            debug_assert_eq!(rx.pid, pid, "interleaved packets into NIC");
            false
        }
        None => true,
    };
    if is_new {
        let pkt = pkt_ptr(ctx, pid);
        let expected = packet::raw::expected_at_next_receiver(pkt);
        let deliver = match (&(*pkt).journey.segments)[(*pkt).seg as usize].end {
            SegmentEnd::Deliver => {
                debug_assert_eq!((*pkt).journey.dst.0, host, "misrouted packet");
                true
            }
            SegmentEnd::Itb(itb_host) => {
                debug_assert_eq!(itb_host.0, host, "misrouted in-transit packet");
                (*pkt).itbs_used += 1;
                let mut ready = cycle + (cfg.itb_detect_cycles + cfg.itb_dma_cycles) as u64;
                let overflow = nic.pool_used + expected > cfg.itb_pool_flits;
                if !overflow {
                    nic.pool_used += expected;
                    (*pkt).pool_reserved = expected;
                    if ctx.measure_on {
                        sh.max_pool_flits = sh.max_pool_flits.max(nic.pool_used);
                    }
                } else {
                    (*pkt).pool_reserved = 0;
                    ready += cfg.itb_overflow_penalty_cycles as u64;
                    if ctx.measure_on {
                        sh.itb_overflows += 1;
                    }
                }
                (*pkt).seg += 1;
                (*pkt).hop = 0;
                nic.reinject.push(Reverse((ready, pid)));
                sh.sched.wake_nic_at(ready, host);
                sh.counters.itb_ejections += 1;
                if overflow {
                    sh.counters.itb_overflows += 1;
                }
                if ctx.trace_on || ctx.journal_on {
                    sh.arr_fx.push((
                        ci,
                        ArrFx::ItbEject {
                            pid,
                            host,
                            overflow,
                        },
                    ));
                }
                false
            }
        };
        nic.rx = Some(RxState {
            pid,
            received: 0,
            expected,
            deliver,
        });
    }

    let rx = nic.rx.as_mut().unwrap();
    rx.received += 1;
    let finished = rx.received == rx.expected;
    let deliver = rx.deliver;
    if finished {
        nic.rx = None;
        if deliver {
            sh.arr_fx.push((ci, ArrFx::Deliver { pid, host }));
        }
    }
}

// ---------------------------------------------------------------------------
// Region B: switch advance + NIC transmit (sequential phases 3 + 4)
// ---------------------------------------------------------------------------

/// Mirrors `Simulator::switches_phase` + `nic_tx_phase` for one shard,
/// with the active-set retire/merge discipline intact (quiescence is a
/// per-component predicate, so it shards cleanly).
unsafe fn region_b(ctx: &ParCtx, s: usize) {
    let cycle = ctx.cycle;
    let sh = &mut *ctx.shards.add(s);
    let mut mark = ctx.prof_on.then(std::time::Instant::now);

    let mut list = sh.sched.take_active_switches();
    list.sort_unstable();
    list.retain(|&sw| {
        switch_phase(ctx, sh, s, sw as usize, cycle);
        if (*ctx.switches.add(sw as usize)).is_quiescent() {
            sh.sched.retire_switch(sw);
            false
        } else {
            true
        }
    });
    sh.sched.merge_switches(list);
    if let Some(m) = mark.as_mut() {
        let now = std::time::Instant::now();
        sh.span_ns[2] += (now - *m).as_nanos() as u64;
        *m = now;
    }

    sh.sched.drain_wakes(cycle);
    let mut list = sh.sched.take_active_nics();
    list.sort_unstable();
    list.retain(|&h| {
        nic_tx(ctx, sh, s, h as usize, cycle);
        if (*ctx.nics.add(h as usize)).quiescent_for_tx(cycle) {
            sh.sched.retire_nic(h);
            false
        } else {
            true
        }
    });
    sh.sched.merge_nics(list);
    if let Some(m) = mark {
        sh.span_ns[3] += m.elapsed().as_nanos() as u64;
    }
}

/// Emit a control symbol from region B. The write is always direct — this
/// shard's in-port is the channel's unique ctl writer this region and
/// nothing reads ctl until next cycle's region A (the mid-barrier applied
/// region A's cross-shard symbols *before* region B, preserving the
/// STOP-then-GO supersede order). Only the wheel note can be cross-shard.
#[inline]
unsafe fn emit_ctl_region_b(ctx: &ParCtx, sh: &mut ShardState, s: usize, ci: u32, sym: u8) {
    channel::raw::send_ctl(ctx.channels.add(ci as usize), ctx.cycle, sym);
    if *ctx.ctl_owner.add(ci as usize) as usize == s {
        sh.sched.note_ctl(ctx.cycle, ci);
    } else {
        sh.note_ctl_out.push(ci);
    }
}

/// Mirror of `Simulator::switch_phase`, fault branches included; losses
/// are recorded in `ShardState::sw_loss` for the deferred loss phase.
unsafe fn switch_phase(ctx: &ParCtx, sh: &mut ShardState, s_shard: usize, s: usize, cycle: u64) {
    let cfg = &*ctx.cfg;
    // A dead switch routes nothing (its resident packets were purged
    // when it failed).
    if ctx.faults_on && !(*ctx.faults).active.is_switch_alive(SwitchId(s as u32)) {
        return;
    }
    let sw = &mut *ctx.switches.add(s);
    let nports = sw.active_ports.len();

    for k in 0..nports {
        let p = sw.active_ports[k] as usize;
        let inp = sw.inp[p].as_mut().unwrap();
        match inp.head {
            HeadState::Idle => {
                if let Some(head) = inp.queue.front_mut() {
                    if head.received >= 1 && !head.header_consumed {
                        head.header_consumed = true;
                        let pid = head.pid;
                        let out = packet::raw::consume_port_byte(pkt_ptr(ctx, pid));
                        inp.head_out = out;
                        inp.head = HeadState::Routing {
                            ready: cycle + cfg.switch_routing_cycles as u64,
                        };
                        if let Some(ctl) = inp.on_flit_out(cfg) {
                            let chan = inp.in_chan;
                            emit_ctl_region_b(ctx, sh, s_shard, chan, ctl);
                        }
                        if ctx.faults_on {
                            // Routing towards a dead cable (or a port that
                            // never existed in a stale route): the worm is
                            // lost. Truncation is deferred to the loss
                            // phase (see `Simulator::loss_phase`).
                            let dead_out = match sw.outp.get(out as usize).and_then(|o| o.as_ref())
                            {
                                Some(o) => {
                                    channel::raw::is_dead(ctx.channels.add(o.out_chan as usize))
                                }
                                None => true,
                            };
                            if dead_out {
                                sh.sw_loss.push((s as u32, pid));
                            }
                        }
                        sh.counters.route_lookups += 1;
                        if ctx.journal_on {
                            sh.sw_fx.push((
                                s as u32,
                                pid,
                                EventKind::Route {
                                    sw: s as u32,
                                    port: p as u8,
                                    out,
                                },
                            ));
                        }
                    }
                }
            }
            HeadState::Routing { ready } => {
                if cycle >= ready {
                    inp.head = HeadState::Requesting;
                    if ctx.diag {
                        let out = inp.head_out;
                        let pid = inp.queue.front().map(|q| q.pid).unwrap_or(NO_PACKET);
                        let cause = match sw.outp.get(out as usize).and_then(|o| o.as_ref()) {
                            Some(o) if o.conn_in.is_some() => Some(BlockCause::OutputBusy),
                            Some(o) if o.stopped => Some(BlockCause::FlowStopped),
                            Some(_) => {
                                let contended = sw.active_ports.iter().any(|&q| {
                                    q as usize != p
                                        && sw.inp[q as usize].as_ref().is_some_and(|ip| {
                                            ip.head == HeadState::Requesting && ip.head_out == out
                                        })
                                });
                                contended.then_some(BlockCause::Arbitration)
                            }
                            None => None,
                        };
                        if let Some(cause) = cause {
                            sh.counters.worms_blocked += 1;
                            if ctx.journal_on {
                                sh.sw_fx.push((
                                    s as u32,
                                    pid,
                                    EventKind::Block {
                                        sw: s as u32,
                                        out,
                                        cause,
                                    },
                                ));
                            }
                        }
                    }
                }
            }
            HeadState::Requesting | HeadState::Granted => {}
        }
    }

    for k in 0..nports {
        let p = sw.active_ports[k] as usize;
        if sw.outp[p].as_ref().unwrap().conn_in.is_none() {
            let rr = sw.outp[p].as_ref().unwrap().rr;
            let start = sw
                .active_ports
                .iter()
                .position(|&ap| ap == rr)
                .map(|i| i + 1)
                .unwrap_or(0);
            let mut grant = None;
            for off in 0..nports {
                let cand = sw.active_ports[(start + off) % nports];
                let inp = sw.inp[cand as usize].as_ref().unwrap();
                if inp.head == HeadState::Requesting && inp.head_out as usize == p {
                    grant = Some(cand);
                    break;
                }
            }
            if let Some(g) = grant {
                let outp = sw.outp[p].as_mut().unwrap();
                outp.conn_in = Some(g);
                outp.rr = g;
                sw.inp[g as usize].as_mut().unwrap().head = HeadState::Granted;
                sh.counters.arbitration_grants += 1;
                if ctx.journal_on {
                    let pid = sw.inp[g as usize]
                        .as_ref()
                        .unwrap()
                        .queue
                        .front()
                        .map(|q| q.pid)
                        .unwrap_or(NO_PACKET);
                    sh.sw_fx.push((
                        s as u32,
                        pid,
                        EventKind::HeadAdvance {
                            sw: s as u32,
                            in_port: g,
                            out: p as u8,
                        },
                    ));
                }
            }
        }
        let outp = sw.outp[p].as_ref().unwrap();
        let Some(g) = outp.conn_in else { continue };
        if outp.stopped {
            continue;
        }
        let out_chan = outp.out_chan;
        if ctx.faults_on && channel::raw::is_dead(ctx.channels.add(out_chan as usize)) {
            // The granted head is already queued for loss handling;
            // never stream flits into a dead cable.
            continue;
        }
        let inp = sw.inp[g as usize].as_mut().unwrap();
        let head = inp.queue.front_mut().expect("granted without head");
        if head.available() == 0 {
            continue;
        }
        let pid = head.pid;
        head.forwarded += 1;
        let done = head.done();
        channel::raw::send(ctx.channels.add(out_chan as usize), cycle, pid);
        sh.activity = true;
        if *ctx.data_owner.add(out_chan as usize) as usize == s_shard {
            sh.sched.note_data(cycle, out_chan);
        } else {
            sh.note_data_out.push(out_chan);
        }
        sh.counters.flits_forwarded += 1;
        if let Some(ctl) = inp.on_flit_out(cfg) {
            let chan = inp.in_chan;
            emit_ctl_region_b(ctx, sh, s_shard, chan, ctl);
        }
        if done {
            inp.queue.pop_front();
            inp.head = HeadState::Idle;
            sw.outp[p].as_mut().unwrap().conn_in = None;
        }
    }
}

/// Mirror of `Simulator::nic_tx`, fault branches included; unroutable
/// packets are recorded in `ShardState::nic_drop` for the deferred loss
/// phase. A NIC's access channel always stays intra-shard (the NIC lives
/// in its host switch's shard), so the data note is direct.
unsafe fn nic_tx(ctx: &ParCtx, sh: &mut ShardState, _s_shard: usize, h: usize, cycle: u64) {
    let cfg = &*ctx.cfg;
    let nic = &mut *ctx.nics.add(h);
    if ctx.faults_on {
        let f = &*ctx.faults;
        // Sources freeze while the mapper redistributes routes; the
        // transmission already in progress may finish.
        if f.reconfig_due.is_some() && nic.tx.is_none() {
            return;
        }
        // A NIC on a dead host link cannot move flits at all.
        if channel::raw::is_dead(ctx.channels.add(nic.out_chan as usize)) {
            return;
        }
    }
    if nic.tx.is_none() {
        while let Some((pid, kind)) = nic.pick_next_tx(cycle, cfg.itb_priority) {
            // Fresh and retransmitted packets route from scratch: under
            // faults, re-validate the pair and — once a rebuild has been
            // installed — re-select the journey from the current tables
            // (in-transit packets keep their remaining route).
            if ctx.faults_on && kind != TxKind::Reinject {
                let f = &*ctx.faults;
                let topo = &*ctx.topo;
                let db = &*ctx.eff_db;
                let pkt = pkt_ptr(ctx, pid);
                let (src, dst) = ((*pkt).journey.src, (*pkt).journey.dst);
                let routable = f.host_ok[src.idx()]
                    && f.host_ok[dst.idx()]
                    && db.has_route(topo.host_switch(src), topo.host_switch(dst));
                if !routable {
                    // Skip it now (the NIC still transmits the next
                    // routable packet this cycle); the drop bookkeeping
                    // runs in the loss phase.
                    sh.nic_drop.push((h as u32, pid));
                    continue;
                }
                if ctx.reselect {
                    // `src` is this NIC's host, so the selector entry is
                    // shard-owned.
                    let journey =
                        db.select_from(topo, src, dst, &mut *ctx.selectors.add(src.idx()));
                    (*pkt).journey = journey;
                    (*pkt).seg = 0;
                    (*pkt).hop = 0;
                }
            }
            let total = packet::raw::wire_len_current_segment(pkt_ptr(ctx, pid));
            nic.tx = Some(TxState {
                pid,
                sent: 0,
                total,
                reinjection: kind == TxKind::Reinject,
            });
            break;
        }
    }
    let Some(tx) = nic.tx else { return };
    if nic.stopped {
        return;
    }
    let pkt = pkt_ptr(ctx, tx.pid);
    let available = if tx.reinjection {
        let arrived_here = match nic.rx {
            Some(rx) if rx.pid == tx.pid => rx.received,
            _ => tx.total + 1, // fully received (wire included the ITB mark)
        };
        if cfg.itb_cut_through {
            arrived_here.saturating_sub(1)
        } else if arrived_here > tx.total {
            tx.total
        } else {
            0
        }
    } else {
        tx.total
    };
    if tx.sent >= available {
        if tx.reinjection && tx.sent > 0 && ctx.measure_on {
            sh.reinject_bubbles += 1;
        }
        return;
    }
    if tx.sent == 0 && !tx.reinjection {
        (*pkt).inject_cycle = cycle;
        let ms = msg_ptr(ctx, (*pkt).msg);
        if (*ms).first_inject == u64::MAX {
            (*ms).first_inject = cycle;
        }
        if ctx.journal_on {
            sh.nic_fx.push((
                h as u32,
                NicFx::Inject {
                    pid: tx.pid,
                    src: (*pkt).journey.src.0,
                    dst: (*pkt).journey.dst.0,
                },
            ));
        }
    }
    channel::raw::send(ctx.channels.add(nic.out_chan as usize), cycle, tx.pid);
    sh.activity = true;
    sh.sched.note_data(cycle, nic.out_chan);
    sh.counters.flits_injected += 1;
    if tx.sent == 0 && tx.reinjection {
        sh.counters.itb_reinjections += 1;
        if ctx.trace_on || ctx.journal_on {
            sh.nic_fx.push((
                h as u32,
                NicFx::Reinject {
                    pid: tx.pid,
                    host: h as u32,
                },
            ));
        }
    }
    let tx_ref = nic.tx.as_mut().unwrap();
    tx_ref.sent += 1;
    if tx_ref.sent == tx_ref.total {
        if tx_ref.reinjection && (*pkt).pool_reserved > 0 {
            nic.pool_used -= (*pkt).pool_reserved;
            (*pkt).pool_reserved = 0;
        }
        nic.tx = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn pool_runs_every_executor_each_epoch() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.executors(), 4);
        let hits: Arc<Vec<AtomicU32>> = Arc::new((0..4).map(|_| AtomicU32::new(0)).collect());
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            pool.run(&move |e| {
                hits[e].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in hits.iter() {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_executor_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.executors(), 1);
        let hit = Arc::new(AtomicU32::new(0));
        let hit2 = Arc::clone(&hit);
        pool.run(&move |e| {
            assert_eq!(e, 0);
            hit2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }
}
