//! Unified event-counter registry.
//!
//! A single boxed struct of plain `u64` counters, owned by the simulator as
//! `Option<Box<Counters>>` — the same pattern as the trace observers, so a
//! disabled registry costs one branch per hook site and no memory. Unlike
//! the histogram/time-series observers in [`trace`](crate::trace), counters
//! are pure event counts: incrementing them never perturbs simulation
//! state, so two same-seed runs produce identical snapshots (asserted by
//! the determinism suite). The hook sites sit inside the shared
//! per-component delivery/advance helpers, *below* the scheduler's
//! dispatch: whether a phase reached a component by scanning everything
//! or by draining a wake list, the same hooks fire in the same
//! ascending-index order, so snapshots are also identical across
//! [`Scheduler`](crate::Scheduler) modes (`tests/scheduler_equivalence.rs`).
//!
//! [`CounterSnapshot`] is the frozen, serializable view: it rides inside
//! [`RunStats`](crate::RunStats) and is printed by the `probe`/`diagnose`
//! binaries.

use std::cell::Cell;

use serde::{Deserialize, Serialize};

/// Immutable counter values at a point in time. Field order matches
/// [`CounterSnapshot::NAMES`]; iterate with
/// [`as_pairs`](CounterSnapshot::as_pairs).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Flits moved through a switch crossbar.
    pub flits_forwarded: u64,
    /// Flits sent from a NIC into its access link (fresh, re-injected and
    /// retransmitted traffic alike).
    pub flits_injected: u64,
    /// Packet headers consumed by a routing control unit.
    pub route_lookups: u64,
    /// Crossbar connections established by output-port arbitration.
    pub arbitration_grants: u64,
    /// Worms whose head found its output busy, stopped, or contended when
    /// it finished routing (the paper's blocking events).
    pub worms_blocked: u64,
    /// Packets that started arriving at a switch input port.
    pub switch_arrivals: u64,
    /// STOP symbols delivered to senders.
    pub ctl_stops: u64,
    /// GO symbols delivered to senders.
    pub ctl_gos: u64,
    /// Messages created by the generators.
    pub messages_generated: u64,
    /// Messages fully reassembled at their destination.
    pub messages_delivered: u64,
    /// Packets delivered (== messages unless MTU segmentation is on).
    pub packets_delivered: u64,
    /// Packets abandoned for good (fault machinery).
    pub packets_dropped: u64,
    /// Packets ejected into an in-transit buffer.
    pub itb_ejections: u64,
    /// Ejected packets that started re-injecting.
    pub itb_reinjections: u64,
    /// ITB ejections that overflowed the pool to host memory.
    pub itb_overflows: u64,
    /// Source retransmissions queued after a worm was truncated.
    pub retransmits: u64,
    /// Fault events fired (links/switches/hosts going down).
    pub fault_fires: u64,
    /// Fault repairs applied.
    pub fault_repairs: u64,
    /// Wait-for-graph stall analyses run.
    pub wfg_invocations: u64,
}

impl CounterSnapshot {
    /// Counter names, in [`as_pairs`](CounterSnapshot::as_pairs) order.
    pub const NAMES: [&'static str; 19] = [
        "flits_forwarded",
        "flits_injected",
        "route_lookups",
        "arbitration_grants",
        "worms_blocked",
        "switch_arrivals",
        "ctl_stops",
        "ctl_gos",
        "messages_generated",
        "messages_delivered",
        "packets_delivered",
        "packets_dropped",
        "itb_ejections",
        "itb_reinjections",
        "itb_overflows",
        "retransmits",
        "fault_fires",
        "fault_repairs",
        "wfg_invocations",
    ];

    /// `(name, value)` pairs in a fixed order, for table printing.
    pub fn as_pairs(&self) -> [(&'static str, u64); 19] {
        [
            ("flits_forwarded", self.flits_forwarded),
            ("flits_injected", self.flits_injected),
            ("route_lookups", self.route_lookups),
            ("arbitration_grants", self.arbitration_grants),
            ("worms_blocked", self.worms_blocked),
            ("switch_arrivals", self.switch_arrivals),
            ("ctl_stops", self.ctl_stops),
            ("ctl_gos", self.ctl_gos),
            ("messages_generated", self.messages_generated),
            ("messages_delivered", self.messages_delivered),
            ("packets_delivered", self.packets_delivered),
            ("packets_dropped", self.packets_dropped),
            ("itb_ejections", self.itb_ejections),
            ("itb_reinjections", self.itb_reinjections),
            ("itb_overflows", self.itb_overflows),
            ("retransmits", self.retransmits),
            ("fault_fires", self.fault_fires),
            ("fault_repairs", self.fault_repairs),
            ("wfg_invocations", self.wfg_invocations),
        ]
    }

    /// Sum of every counter — a cheap proxy for "events observed", used by
    /// the bench pipeline's events/sec figure.
    pub fn total_events(&self) -> u64 {
        self.as_pairs().iter().map(|&(_, v)| v).sum()
    }

    /// Multi-line `name value` table, non-zero counters only (all-zero
    /// registries print a placeholder line).
    pub fn to_table(&self) -> String {
        let pairs = self.as_pairs();
        let width = pairs.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        let mut out = String::new();
        let mut any = false;
        for (name, v) in pairs {
            if v == 0 {
                continue;
            }
            any = true;
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        if !any {
            out.push_str("(all counters zero)\n");
        }
        out
    }
}

/// Live registry, boxed inside the simulator when counting is on. Fields
/// are incremented inline at the hook sites; `wfg_invocations` is a `Cell`
/// because [`Simulator::analyze_stall`](crate::Simulator::analyze_stall)
/// takes `&self`.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub flits_forwarded: u64,
    pub flits_injected: u64,
    pub route_lookups: u64,
    pub arbitration_grants: u64,
    pub worms_blocked: u64,
    pub switch_arrivals: u64,
    pub ctl_stops: u64,
    pub ctl_gos: u64,
    pub messages_generated: u64,
    pub messages_delivered: u64,
    pub packets_delivered: u64,
    pub packets_dropped: u64,
    pub itb_ejections: u64,
    pub itb_reinjections: u64,
    pub itb_overflows: u64,
    pub retransmits: u64,
    pub fault_fires: u64,
    pub fault_repairs: u64,
    pub wfg_invocations: Cell<u64>,
}

impl Counters {
    pub(crate) fn new() -> Counters {
        Counters::default()
    }

    pub(crate) fn reset(&mut self) {
        *self = Counters::default();
    }

    /// Fold another registry into this one (shard-parallel engine: each
    /// shard counts into a private registry, merged at the cycle barrier).
    /// Counters are pure sums, so fold order cannot affect the snapshot.
    pub(crate) fn add(&mut self, other: &Counters) {
        self.flits_forwarded += other.flits_forwarded;
        self.flits_injected += other.flits_injected;
        self.route_lookups += other.route_lookups;
        self.arbitration_grants += other.arbitration_grants;
        self.worms_blocked += other.worms_blocked;
        self.switch_arrivals += other.switch_arrivals;
        self.ctl_stops += other.ctl_stops;
        self.ctl_gos += other.ctl_gos;
        self.messages_generated += other.messages_generated;
        self.messages_delivered += other.messages_delivered;
        self.packets_delivered += other.packets_delivered;
        self.packets_dropped += other.packets_dropped;
        self.itb_ejections += other.itb_ejections;
        self.itb_reinjections += other.itb_reinjections;
        self.itb_overflows += other.itb_overflows;
        self.retransmits += other.retransmits;
        self.fault_fires += other.fault_fires;
        self.fault_repairs += other.fault_repairs;
        self.wfg_invocations
            .set(self.wfg_invocations.get() + other.wfg_invocations.get());
    }

    pub(crate) fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            flits_forwarded: self.flits_forwarded,
            flits_injected: self.flits_injected,
            route_lookups: self.route_lookups,
            arbitration_grants: self.arbitration_grants,
            worms_blocked: self.worms_blocked,
            switch_arrivals: self.switch_arrivals,
            ctl_stops: self.ctl_stops,
            ctl_gos: self.ctl_gos,
            messages_generated: self.messages_generated,
            messages_delivered: self.messages_delivered,
            packets_delivered: self.packets_delivered,
            packets_dropped: self.packets_dropped,
            itb_ejections: self.itb_ejections,
            itb_reinjections: self.itb_reinjections,
            itb_overflows: self.itb_overflows,
            retransmits: self.retransmits,
            fault_fires: self.fault_fires,
            fault_repairs: self.fault_repairs,
            wfg_invocations: self.wfg_invocations.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_mirrors_registry() {
        let mut c = Counters::new();
        c.flits_forwarded = 10;
        c.worms_blocked = 3;
        c.wfg_invocations.set(2);
        let s = c.snapshot();
        assert_eq!(s.flits_forwarded, 10);
        assert_eq!(s.worms_blocked, 3);
        assert_eq!(s.wfg_invocations, 2);
        assert_eq!(s.total_events(), 15);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn pairs_cover_every_name() {
        let s = CounterSnapshot {
            flits_forwarded: 1,
            ..CounterSnapshot::default()
        };
        let pairs = s.as_pairs();
        assert_eq!(pairs.len(), CounterSnapshot::NAMES.len());
        for ((n1, _), n2) in pairs.iter().zip(CounterSnapshot::NAMES) {
            assert_eq!(*n1, n2);
        }
        assert!(s.to_table().contains("flits_forwarded"));
        assert!(!s.to_table().contains("ctl_stops"), "zero rows are elided");
        assert!(CounterSnapshot::default()
            .to_table()
            .contains("all counters zero"));
    }
}
