//! Structured event journal: what happened to *which packet*, *where*,
//! *when*.
//!
//! The trace observers ([`trace`](crate::trace)) aggregate; the journal
//! records. Each entry is a typed [`Event`] — injection, per-switch
//! arrival/route/head-advance, block with cause, ITB eject/re-inject,
//! delivery, drop, fault fire/repair — stamped with the cycle and the
//! packet id. Entries live in a bounded ring: when the ring fills, the
//! oldest entries are evicted (and counted), so a journal on a long run
//! degrades to "the most recent N events" instead of unbounded memory.
//!
//! The journal exports Chrome `trace_event` JSON
//! ([`EventJournal::to_chrome`]): switches and NICs become tracks, events
//! become instants on them, and each packet journey becomes an async span
//! plus a flow arrow threading injection → ITB hops → delivery. Load the
//! file in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`.
//!
//! Like every observer, the journal is `Option<Box<...>>` inside the
//! simulator: disabled, each hook site costs one branch. The journal is
//! order-sensitive (entries are appended as hooks fire), so the hook
//! sites live in the shared helpers below the scheduler dispatch and the
//! active-set scheduler sorts every wake list before draining it — the
//! recorded sequence, and therefore the Chrome trace export, is
//! byte-identical between [`Scheduler`](crate::Scheduler) modes
//! (`tests/scheduler_equivalence.rs::chrome_trace_export_schedulers_agree`).

use std::collections::VecDeque;

use regnet_metrics::{ChromeArg, ChromeTrace};

use crate::config::CYCLE_NS;
use crate::faultplan::FaultTarget;

/// `Event::pid` value for events not tied to a packet (fault events).
pub const NO_PACKET: u32 = u32::MAX;

/// Why a worm's head could not advance when it finished routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockCause {
    /// The output port is crossbar-connected to another input.
    OutputBusy,
    /// The output port's downstream buffer sent STOP.
    FlowStopped,
    /// Another head is requesting the same free output (arbitration race).
    Arbitration,
}

/// One journal entry's payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// First flit of a fresh (or retransmitted) packet left the source NIC.
    Inject { src: u32, dst: u32 },
    /// A packet started arriving at a switch input port.
    SwitchArrival { sw: u32, port: u8 },
    /// The routing control unit consumed the header and selected `out`.
    Route { sw: u32, port: u8, out: u8 },
    /// The head finished routing but cannot advance yet.
    Block { sw: u32, out: u8, cause: BlockCause },
    /// Arbitration connected input `in_port` to output `out` (the head
    /// advances — this is the unblock edge).
    HeadAdvance { sw: u32, in_port: u8, out: u8 },
    /// The packet was ejected into this host's in-transit buffer.
    ItbEject { host: u32, overflow: bool },
    /// A previously ejected packet started re-injecting.
    Reinject { host: u32 },
    /// The packet reached its destination NIC completely.
    Deliver { dst: u32 },
    /// The packet was abandoned (fault machinery, retry budget exhausted).
    Drop,
    /// A truncated packet was queued for source retransmission.
    Retransmit { src: u32 },
    /// A fault event fired.
    FaultFire { target: FaultTarget },
    /// A fault was repaired.
    FaultRepair { target: FaultTarget },
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    pub cycle: u64,
    /// Packet id ([`NO_PACKET`] for fault events). Packet ids are arena
    /// slots and are reused; journeys are delimited by `Inject` …
    /// `Deliver`/`Drop` pairs, not by pid alone.
    pub pid: u32,
    pub kind: EventKind,
}

impl Event {
    /// One human-readable line, used by `diagnose` and the
    /// `packet_forensics` example.
    pub fn describe(&self) -> String {
        let t_ns = self.cycle as f64 * CYCLE_NS;
        let what = match self.kind {
            EventKind::Inject { src, dst } => format!("inject at host {src}, bound for {dst}"),
            EventKind::SwitchArrival { sw, port } => format!("arrives at S{sw} port {port}"),
            EventKind::Route { sw, port, out } => {
                format!("S{sw} routes header (in p{port} -> out p{out})")
            }
            EventKind::Block { sw, out, cause } => {
                let why = match cause {
                    BlockCause::OutputBusy => "output busy",
                    BlockCause::FlowStopped => "downstream STOP",
                    BlockCause::Arbitration => "arbitration",
                };
                format!("BLOCKED at S{sw} waiting for out p{out} ({why})")
            }
            EventKind::HeadAdvance { sw, in_port, out } => {
                format!("S{sw} grants p{in_port} -> p{out}, head advances")
            }
            EventKind::ItbEject { host, overflow } => format!(
                "ejected into in-transit buffer at host {host}{}",
                if overflow { " (pool OVERFLOW)" } else { "" }
            ),
            EventKind::Reinject { host } => format!("re-injection starts at host {host}"),
            EventKind::Deliver { dst } => format!("delivered at host {dst}"),
            EventKind::Drop => "dropped".to_string(),
            EventKind::Retransmit { src } => {
                format!("queued for retransmission at host {src}")
            }
            EventKind::FaultFire { target } => format!("fault fires: {target:?}"),
            EventKind::FaultRepair { target } => format!("repair: {target:?}"),
        };
        format!("cycle {:>10} ({:>12.1} ns)  {}", self.cycle, t_ns, what)
    }
}

/// Which event families the journal keeps. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask(pub u16);

impl EventMask {
    pub const INJECT: EventMask = EventMask(1 << 0);
    /// Switch arrivals, routes and head advances.
    pub const SWITCH: EventMask = EventMask(1 << 1);
    pub const BLOCK: EventMask = EventMask(1 << 2);
    /// ITB ejections and re-injections.
    pub const ITB: EventMask = EventMask(1 << 3);
    /// Deliveries, drops and retransmission queuing.
    pub const DELIVER: EventMask = EventMask(1 << 4);
    pub const FAULT: EventMask = EventMask(1 << 5);
    pub const ALL: EventMask = EventMask(0x3f);

    pub fn contains(self, other: EventMask) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for EventMask {
    type Output = EventMask;
    fn bitor(self, rhs: EventMask) -> EventMask {
        EventMask(self.0 | rhs.0)
    }
}

/// Journal configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventOptions {
    /// Ring capacity in events; the oldest entries are evicted beyond it.
    pub capacity: usize,
    /// Event families to record.
    pub mask: EventMask,
}

impl Default for EventOptions {
    fn default() -> Self {
        EventOptions {
            capacity: 1 << 16,
            mask: EventMask::ALL,
        }
    }
}

/// The ring-buffered journal.
#[derive(Debug)]
pub struct EventJournal {
    opts: EventOptions,
    ring: VecDeque<Event>,
    recorded: u64,
    evicted: u64,
}

impl EventJournal {
    pub fn new(opts: EventOptions) -> EventJournal {
        let cap = opts.capacity.max(1);
        EventJournal {
            ring: VecDeque::with_capacity(cap.min(1 << 20)),
            opts: EventOptions {
                capacity: cap,
                ..opts
            },
            recorded: 0,
            evicted: 0,
        }
    }

    fn family(kind: &EventKind) -> EventMask {
        match kind {
            EventKind::Inject { .. } => EventMask::INJECT,
            EventKind::SwitchArrival { .. }
            | EventKind::Route { .. }
            | EventKind::HeadAdvance { .. } => EventMask::SWITCH,
            EventKind::Block { .. } => EventMask::BLOCK,
            EventKind::ItbEject { .. } | EventKind::Reinject { .. } => EventMask::ITB,
            EventKind::Deliver { .. } | EventKind::Drop | EventKind::Retransmit { .. } => {
                EventMask::DELIVER
            }
            EventKind::FaultFire { .. } | EventKind::FaultRepair { .. } => EventMask::FAULT,
        }
    }

    #[inline]
    pub(crate) fn record(&mut self, cycle: u64, pid: u32, kind: EventKind) {
        if !self.opts.mask.contains(Self::family(&kind)) {
            return;
        }
        if self.ring.len() == self.opts.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(Event { cycle, pid, kind });
        self.recorded += 1;
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total events accepted (including those since evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted from the ring to make room.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// All retained events of one packet id, oldest first. Packet ids are
    /// reused; the caller should cut at `Inject` boundaries (see
    /// `examples/packet_forensics.rs`).
    pub fn journey(&self, pid: u32) -> Vec<&Event> {
        self.ring.iter().filter(|e| e.pid == pid).collect()
    }

    /// Pids of packets whose last retained event is a `Block` — worms
    /// sitting blocked at the journal horizon, newest block first.
    pub fn blocked_packets(&self) -> Vec<u32> {
        use std::collections::HashMap;
        let mut last: HashMap<u32, (usize, bool)> = HashMap::new();
        for (i, e) in self.ring.iter().enumerate() {
            if e.pid == NO_PACKET {
                continue;
            }
            let blocked = matches!(e.kind, EventKind::Block { .. });
            last.insert(e.pid, (i, blocked));
        }
        let mut out: Vec<(usize, u32)> = last
            .into_iter()
            .filter(|&(_, (_, blocked))| blocked)
            .map(|(pid, (i, _))| (i, pid))
            .collect();
        out.sort_unstable_by_key(|&(i, _)| std::cmp::Reverse(i));
        out.into_iter().map(|(_, pid)| pid).collect()
    }

    /// Export the retained events as Chrome `trace_event` JSON.
    ///
    /// Tracks: process 1 = switches (one thread per switch), process 2 =
    /// NICs (one thread per host), process 3 = packet journeys (async
    /// spans). Every `Inject` opens a journey span and a flow arrow; each
    /// `ItbEject` adds a flow step (the ITB hops the paper's schemes
    /// introduce); `Deliver`/`Drop` close both.
    pub fn to_chrome(&self) -> ChromeTrace {
        const PID_SWITCHES: u32 = 1;
        const PID_NICS: u32 = 2;
        const PID_JOURNEYS: u32 = 3;
        let us = |cycle: u64| cycle as f64 * CYCLE_NS / 1000.0;

        let mut t = ChromeTrace::new();
        t.process_name(PID_SWITCHES, "switches");
        t.process_name(PID_NICS, "nics");
        t.process_name(PID_JOURNEYS, "packet journeys");
        // Name every track that appears, in first-appearance order.
        let mut named_sw: Vec<u32> = Vec::new();
        let mut named_nic: Vec<u32> = Vec::new();
        for e in &self.ring {
            match e.kind {
                EventKind::SwitchArrival { sw, .. }
                | EventKind::Route { sw, .. }
                | EventKind::Block { sw, .. }
                | EventKind::HeadAdvance { sw, .. }
                    if !named_sw.contains(&sw) =>
                {
                    named_sw.push(sw);
                    t.thread_name(PID_SWITCHES, sw, &format!("S{sw}"));
                }
                EventKind::Inject { src: h, .. }
                | EventKind::ItbEject { host: h, .. }
                | EventKind::Reinject { host: h }
                | EventKind::Deliver { dst: h }
                | EventKind::Retransmit { src: h }
                    if !named_nic.contains(&h) =>
                {
                    named_nic.push(h);
                    t.thread_name(PID_NICS, h, &format!("host {h}"));
                }
                _ => {}
            }
        }

        // Journey correlation: pids are reused, so each Inject opens a
        // fresh journey id and later events of that pid attach to it.
        let mut open: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut next_journey: u64 = 1;
        for e in &self.ring {
            let ts = us(e.cycle);
            match e.kind {
                EventKind::Inject { src, dst } => {
                    let id = *open.entry(e.pid).or_insert_with(|| {
                        let id = next_journey;
                        next_journey += 1;
                        id
                    });
                    t.async_begin(
                        &format!("pkt {src}->{dst}"),
                        "journey",
                        id,
                        ts,
                        PID_JOURNEYS,
                        vec![
                            ("src", ChromeArg::Int(src as u64)),
                            ("dst", ChromeArg::Int(dst as u64)),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                    t.flow_start("journey", "journey", id, ts, PID_NICS, src);
                    t.instant(
                        "inject",
                        "nic",
                        ts,
                        PID_NICS,
                        src,
                        vec![("dst", ChromeArg::Int(dst as u64))],
                    );
                }
                EventKind::SwitchArrival { sw, port } => {
                    t.instant(
                        "arrival",
                        "switch",
                        ts,
                        PID_SWITCHES,
                        sw,
                        vec![
                            ("port", ChromeArg::Int(port as u64)),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                }
                EventKind::Route { sw, port, out } => {
                    t.instant(
                        "route",
                        "switch",
                        ts,
                        PID_SWITCHES,
                        sw,
                        vec![
                            ("in", ChromeArg::Int(port as u64)),
                            ("out", ChromeArg::Int(out as u64)),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                }
                EventKind::Block { sw, out, cause } => {
                    t.instant(
                        "block",
                        "switch",
                        ts,
                        PID_SWITCHES,
                        sw,
                        vec![
                            ("out", ChromeArg::Int(out as u64)),
                            ("cause", ChromeArg::Str(format!("{cause:?}"))),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                }
                EventKind::HeadAdvance { sw, in_port, out } => {
                    t.instant(
                        "grant",
                        "switch",
                        ts,
                        PID_SWITCHES,
                        sw,
                        vec![
                            ("in", ChromeArg::Int(in_port as u64)),
                            ("out", ChromeArg::Int(out as u64)),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                }
                EventKind::ItbEject { host, overflow } => {
                    if let Some(&id) = open.get(&e.pid) {
                        t.flow_step("journey", "journey", id, ts, PID_NICS, host);
                    }
                    t.instant(
                        "itb_eject",
                        "nic",
                        ts,
                        PID_NICS,
                        host,
                        vec![
                            ("overflow", ChromeArg::Str(overflow.to_string())),
                            ("pid", ChromeArg::Int(e.pid as u64)),
                        ],
                    );
                }
                EventKind::Reinject { host } => {
                    t.instant(
                        "reinject",
                        "nic",
                        ts,
                        PID_NICS,
                        host,
                        vec![("pid", ChromeArg::Int(e.pid as u64))],
                    );
                }
                EventKind::Deliver { dst } => {
                    if let Some(id) = open.remove(&e.pid) {
                        t.flow_end("journey", "journey", id, ts, PID_NICS, dst);
                        t.async_end("pkt", "journey", id, ts, PID_JOURNEYS);
                    }
                    t.instant(
                        "deliver",
                        "nic",
                        ts,
                        PID_NICS,
                        dst,
                        vec![("pid", ChromeArg::Int(e.pid as u64))],
                    );
                }
                EventKind::Drop => {
                    if let Some(id) = open.remove(&e.pid) {
                        t.async_end("pkt", "journey", id, ts, PID_JOURNEYS);
                    }
                }
                EventKind::Retransmit { src } => {
                    t.instant(
                        "retransmit",
                        "nic",
                        ts,
                        PID_NICS,
                        src,
                        vec![("pid", ChromeArg::Int(e.pid as u64))],
                    );
                }
                EventKind::FaultFire { target } => {
                    t.instant(
                        "fault",
                        "fault",
                        ts,
                        PID_JOURNEYS,
                        0,
                        vec![("target", ChromeArg::Str(format!("{target:?}")))],
                    );
                }
                EventKind::FaultRepair { target } => {
                    t.instant(
                        "repair",
                        "fault",
                        ts,
                        PID_JOURNEYS,
                        0,
                        vec![("target", ChromeArg::Str(format!("{target:?}")))],
                    );
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut j = EventJournal::new(EventOptions {
            capacity: 3,
            mask: EventMask::ALL,
        });
        for c in 0..5u64 {
            j.record(c, c as u32, EventKind::Drop);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.evicted(), 2);
        let cycles: Vec<u64> = j.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn mask_filters_families() {
        let mut j = EventJournal::new(EventOptions {
            capacity: 16,
            mask: EventMask::BLOCK | EventMask::ITB,
        });
        j.record(1, 0, EventKind::Inject { src: 0, dst: 1 });
        j.record(
            2,
            0,
            EventKind::Block {
                sw: 0,
                out: 1,
                cause: BlockCause::OutputBusy,
            },
        );
        j.record(
            3,
            0,
            EventKind::ItbEject {
                host: 2,
                overflow: false,
            },
        );
        j.record(4, 0, EventKind::Deliver { dst: 1 });
        assert_eq!(j.len(), 2);
        assert!(j
            .events()
            .all(|e| matches!(e.kind, EventKind::Block { .. } | EventKind::ItbEject { .. })));
    }

    #[test]
    fn blocked_packets_finds_stuck_worms() {
        let mut j = EventJournal::new(EventOptions::default());
        let block = EventKind::Block {
            sw: 1,
            out: 2,
            cause: BlockCause::FlowStopped,
        };
        j.record(1, 7, block);
        j.record(
            2,
            7,
            EventKind::HeadAdvance {
                sw: 1,
                in_port: 0,
                out: 2,
            },
        );
        j.record(3, 9, block);
        j.record(4, 11, block);
        // 7 unblocked; 9 and 11 still blocked, newest first.
        assert_eq!(j.blocked_packets(), vec![11, 9]);
    }

    #[test]
    fn chrome_export_threads_journeys() {
        let mut j = EventJournal::new(EventOptions::default());
        j.record(10, 5, EventKind::Inject { src: 0, dst: 3 });
        j.record(
            20,
            5,
            EventKind::ItbEject {
                host: 1,
                overflow: false,
            },
        );
        j.record(25, 5, EventKind::Reinject { host: 1 });
        j.record(40, 5, EventKind::Deliver { dst: 3 });
        // Pid 5 is reused by a later packet: a fresh journey id.
        j.record(50, 5, EventKind::Inject { src: 2, dst: 0 });
        j.record(60, 5, EventKind::Deliver { dst: 0 });
        let json = j.to_chrome().to_json();
        let doc = regnet_metrics::JsonValue::parse(&json).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").unwrap().as_str() == Some(ph))
                .count()
        };
        assert_eq!(phase("s"), 2, "two journeys start");
        assert_eq!(phase("t"), 1, "one ITB hop");
        assert_eq!(phase("f"), 2, "two journeys end");
        assert_eq!(phase("b"), 2);
        assert_eq!(phase("e"), 2);
        // Distinct flow ids for the reused pid.
        let ids: std::collections::HashSet<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("s"))
            .map(|e| e.get("id").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn describe_is_readable() {
        let e = Event {
            cycle: 100,
            pid: 7,
            kind: EventKind::Block {
                sw: 3,
                out: 1,
                cause: BlockCause::OutputBusy,
            },
        };
        let s = e.describe();
        assert!(s.contains("BLOCKED at S3"), "{s}");
        assert!(s.contains("625.0 ns"), "{s}");
    }
}
