//! Shared worker-thread sizing: one implementation of the
//! `REGNET_THREADS` override used by the parallel cycle engine
//! ([`Scheduler::Parallel`](crate::Scheduler)), the experiment sweeps
//! (`experiment::par_map`) and the bench binaries (re-exported from
//! `regnet-bench` for compatibility).

/// Number of worker threads for sweeps and the parallel cycle engine.
/// `REGNET_THREADS=<n>` overrides the detected parallelism (useful for CI
/// runners and reproducible timings).
///
/// The environment is read once, on first call; later mutations of
/// `REGNET_THREADS` (e.g. by tests running in the same process) have no
/// effect. The override logic itself lives in [`threads_from`].
pub fn threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| threads_from(std::env::var("REGNET_THREADS").ok().as_deref()))
}

/// Worker-thread count given the raw `REGNET_THREADS` value, if any: a
/// positive integer wins; anything else (including `None`) falls back to
/// the detected parallelism. Pure, so tests can cover the override rules
/// without mutating process-global environment state.
pub fn threads_from(override_var: Option<&str>) -> usize {
    if let Some(v) = override_var {
        match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("ignoring invalid REGNET_THREADS={v:?}"),
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Live OS threads the parallel cycle engine runs on for a requested shard
/// count. The shard count — and therefore every simulation result — comes
/// from `Scheduler::Parallel { threads }` alone; this only caps how many
/// executors the persistent pool spawns, so a 4-shard run on a 1-core
/// machine multiplexes its shards instead of oversubscribing the host.
/// `REGNET_PAR_WORKERS=<n>` forces the executor count (used by tests to
/// exercise true multi-threaded execution regardless of the host).
pub(crate) fn par_executors(shards: usize) -> usize {
    static WORKERS: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    let forced = *WORKERS.get_or_init(|| {
        std::env::var("REGNET_PAR_WORKERS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    });
    let cap = forced.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    shards.min(cap).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_override_rules() {
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 8 ")), 8);
        let detected = threads_from(None);
        assert!(detected >= 1);
        assert_eq!(threads_from(Some("0")), detected, "0 is invalid");
        assert_eq!(threads_from(Some("nope")), detected);
    }

    #[test]
    fn executors_never_exceed_shards() {
        assert_eq!(par_executors(1), 1);
        assert!(par_executors(4) <= 4);
        assert!(par_executors(16) >= 1);
    }
}
