//! The cycle-driven simulation engine.
//!
//! Each cycle runs five phases in a fixed order:
//!
//! 1. **Control arrivals** — stop/go symbols reaching senders flip their
//!    `stopped` flags.
//! 2. **Data arrivals** — flits reaching switch input buffers and NICs are
//!    accounted; buffer thresholds may emit STOP; NIC headers trigger
//!    delivery or in-transit processing.
//! 3. **Switches** — routing control units consume header flits (150 ns),
//!    output ports arbitrate (demand-slotted round-robin) and connected
//!    inputs forward one flit through the crossbar.
//! 4. **NIC transmission** — each NIC sends one flit of its current packet
//!    (new injection or in-transit re-injection) if flow control allows.
//! 5. **Generation** — hosts create new messages according to the offered
//!    load.

use std::cmp::Reverse;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use regnet_core::{PathSelector, RouteDb, SegmentEnd};
use regnet_mapper::{rebuild_physical_routes, FaultSet, PhysicalRoutes};
use regnet_metrics::{Histogram, RunningStats};
use regnet_topology::{HostId, LinkEnd, NodeId, SwitchId, Topology};
use regnet_traffic::{interarrival_cycles, Pattern};

use crate::channel::{Channel, Receiver, Sender, CTL_NONE, CTL_STOP};
use crate::config::{GenerationProcess, SimConfig, CYCLE_NS};
use crate::counters::{CounterSnapshot, Counters};
use crate::events::{BlockCause, EventJournal, EventKind, EventOptions, NO_PACKET};
use crate::faultplan::{FaultEvent, FaultOptions, FaultRuntime, FaultTarget, ReliabilityStats};
use crate::nic::{Nic, RxState, TxKind, TxState};
use crate::packet::{Packet, PacketArena};
use crate::par::{ArrFx, NicFx, ParCtx, ParEngine};
use crate::profiler::{Phase, ProfileReport, Profiler, SpanReport, NO_SHARD};
use crate::sched::{ActiveSched, Scheduler};
use crate::switch::{HeadState, InPkt, InPort, OutPort, SwitchState};
use crate::trace::{TraceOptions, TraceReport, TraceState};
use crate::wfg::StallReport;

// The event-driven time-skip driver ([`Scheduler::EventDriven`]) lives in
// its own file for readability, but is a *child* module of `sim` so it can
// reach the simulator's internals without widening their visibility.
#[path = "event.rs"]
mod event;

/// Static description of a directed channel, for utilization maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelDesc {
    pub from: NodeId,
    pub to: NodeId,
    /// True for switch↔switch channels (the ones the paper's link
    /// utilization figures show).
    pub switch_link: bool,
}

/// Aggregated results of one measurement window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    pub window_cycles: u64,
    /// Messages fully delivered (all their packets reassembled).
    pub delivered: u64,
    /// Packets delivered (== `delivered` unless MTU segmentation is on).
    pub delivered_packets: u64,
    pub delivered_payload_flits: u64,
    pub generated: u64,
    /// Network latency (injection → delivery), paper footnote 4.
    pub avg_latency_ns: f64,
    pub p99_latency_ns: f64,
    /// Generation → delivery (includes source queueing).
    pub avg_total_latency_ns: f64,
    pub avg_itbs_per_msg: f64,
    pub itb_overflows: u64,
    pub reinject_bubbles: u64,
    pub gen_stall_cycles: u64,
    pub max_pool_flits: u32,
    /// Busy cycles per directed channel during the window.
    pub channel_busy: Vec<u64>,
    /// Counter-registry snapshot over the window; `None` unless
    /// [`Simulator::enable_counters`] was called. Counters are pure event
    /// counts, so this stays `==`-comparable across same-seed runs.
    pub counters: Option<CounterSnapshot>,
}

impl RunStats {
    /// Accepted traffic in the paper's unit.
    pub fn accepted_flits_per_ns_per_switch(&self, n_switches: usize) -> f64 {
        self.delivered_payload_flits as f64
            / (self.window_cycles as f64 * CYCLE_NS)
            / n_switches as f64
    }
}

#[derive(Default)]
struct Measure {
    on: bool,
    latency: RunningStats,
    total_latency: RunningStats,
    hist: Histogram,
    delivered: u64,
    delivered_packets: u64,
    delivered_payload_flits: u64,
    generated: u64,
    itb_sum: u64,
    itb_overflows: u64,
    reinject_bubbles: u64,
    gen_stall_cycles: u64,
    max_pool_flits: u32,
}

/// Reassembly state of one message (one or more packets). `pub(crate)`
/// for the shard-parallel engine, which stamps `first_inject` through a
/// raw pointer (see `crate::par`).
#[derive(Debug)]
pub(crate) struct MsgState {
    pub(crate) remaining: u16,
    pub(crate) gen_cycle: u64,
    pub(crate) first_inject: u64,
    pub(crate) itbs: u16,
    /// At least one packet of this message was dropped by a fault; the
    /// message can never complete.
    pub(crate) failed: bool,
}

/// Slab of in-flight messages.
#[derive(Default)]
struct MsgArena {
    slots: Vec<Option<MsgState>>,
    free: Vec<u32>,
}

impl MsgArena {
    /// Base pointer of the slot array, for the shard-parallel engine.
    /// Insert/remove stay on the main thread, so no reallocation happens
    /// while workers hold the pointer.
    fn raw_slots(&mut self) -> *mut Option<MsgState> {
        self.slots.as_mut_ptr()
    }

    fn insert(&mut self, m: MsgState) -> u32 {
        if let Some(i) = self.free.pop() {
            self.slots[i as usize] = Some(m);
            i
        } else {
            self.slots.push(Some(m));
            (self.slots.len() - 1) as u32
        }
    }

    fn get_mut(&mut self, i: u32) -> &mut MsgState {
        self.slots[i as usize].as_mut().expect("stale message id")
    }

    fn remove(&mut self, i: u32) -> MsgState {
        let m = self.slots[i as usize].take().expect("double message free");
        self.free.push(i);
        m
    }
}

/// Profiler lap for the parallel step: no-op (and no `Instant::now()`)
/// unless profiling is on.
fn lap_par(prof: &mut Option<Box<Profiler>>, mark: &mut Option<std::time::Instant>, phase: Phase) {
    if let Some(p) = prof.as_deref_mut() {
        let now = std::time::Instant::now();
        if let Some(m) = mark {
            p.add(phase, (now - *m).as_nanos() as u64);
        }
        *mark = Some(now);
    }
}

/// The simulator: a concrete network (topology + routing tables + traffic
/// pattern) driven cycle by cycle.
pub struct Simulator<'a> {
    topo: &'a Topology,
    db: &'a RouteDb,
    pattern: &'a Pattern,
    cfg: SimConfig,
    interarrival: f64,
    cycle: u64,
    channels: Vec<Channel>,
    switches: Vec<SwitchState>,
    nics: Vec<Nic>,
    arena: PacketArena,
    msgs: MsgArena,
    selector: PathSelector,
    measure: Measure,
    last_activity: u64,
    /// Telemetry observers; `None` (the default) keeps every hook in the
    /// hot path down to a single branch.
    trace: Option<Box<TraceState>>,
    /// Fault-injection runtime; `None` (the default) keeps the fault hooks
    /// in the hot path down to a single branch.
    faults: Option<Box<FaultRuntime>>,
    /// Counter registry; `None` (the default) costs one branch per hook.
    counters: Option<Box<Counters>>,
    /// Structured event journal; `None` (the default) costs one branch per
    /// hook.
    journal: Option<Box<EventJournal>>,
    /// Per-phase wall-time profiler; `None` (the default) keeps `step` on
    /// the untimed fast path.
    profiler: Option<Box<Profiler>>,
    /// Active-set scheduler state; `None` runs the reference full-scan
    /// cycle loop (see [`Scheduler`]). Mutually exclusive with `par`.
    sched: Option<Box<ActiveSched>>,
    /// Shard-parallel engine state ([`Scheduler::Parallel`]); when set,
    /// `sched` is `None` and `step` runs the two-region barrier cycle.
    par: Option<Box<ParEngine>>,
    /// Directed channel indices per physical link (both directions).
    link_chans: Vec<[u32; 2]>,
    /// Worms that hit a dead output this cycle, as `(switch, packet)`;
    /// truncated in the loss phase after NIC transmission so every engine
    /// mutates the arenas in the same order (see `loss_phase`).
    pending_sw_loss: Vec<(u32, u32)>,
    /// Packets that became unroutable at their source NIC this cycle, as
    /// `(host, packet)`; dropped in the loss phase alongside the worm
    /// truncations.
    pending_nic_drop: Vec<(u32, u32)>,
    /// `stop_generation` was called: never restart generators, even when a
    /// repaired host comes back.
    gen_frozen: bool,
    /// [`Scheduler::EventDriven`]: `run`/`run_until_drained` may jump the
    /// clock over provably idle spans (see `event.rs`). Only meaningful
    /// with `sched` set; mutually exclusive with `par`.
    time_skip: bool,
    /// Total cycles jumped over by the event-driven driver.
    skipped_cycles: u64,
    /// Optional `(from, to)` record of every jump — test instrumentation,
    /// never enters `RunStats` or the counter snapshot.
    skip_log: Option<Vec<(u64, u64)>>,
}

impl<'a> Simulator<'a> {
    /// Build a simulator for `offered` flits/ns/switch. Deterministic for a
    /// given `seed`.
    pub fn new(
        topo: &'a Topology,
        db: &'a RouteDb,
        pattern: &'a Pattern,
        cfg: SimConfig,
        offered: f64,
        seed: u64,
    ) -> Simulator<'a> {
        cfg.validate().expect("invalid simulation config");
        let interarrival = interarrival_cycles(
            offered,
            topo.num_switches(),
            topo.num_hosts(),
            cfg.payload_flits,
        );

        // Build channels: two directed channels per physical link.
        let mut channels: Vec<Channel> = Vec::with_capacity(topo.num_links() * 2);
        // (sw, port) -> (in_chan, out_chan)
        let ports = topo.max_ports() as usize;
        let mut sw_in = vec![u32::MAX; topo.num_switches() * ports];
        let mut sw_out = vec![u32::MAX; topo.num_switches() * ports];
        let mut nic_out = vec![u32::MAX; topo.num_hosts()];
        let end_sender = |e: &LinkEnd| match *e {
            LinkEnd::Switch { sw, port } => Sender::SwitchOut {
                sw: sw.0,
                port: port.0,
            },
            LinkEnd::Host { host } => Sender::Nic { host: host.0 },
        };
        let end_receiver = |e: &LinkEnd| match *e {
            LinkEnd::Switch { sw, port } => Receiver::SwitchIn {
                sw: sw.0,
                port: port.0,
            },
            LinkEnd::Host { host } => Receiver::Nic { host: host.0 },
        };
        let mut link_chans: Vec<[u32; 2]> = Vec::with_capacity(topo.num_links());
        for link in topo.links() {
            let mut pair = [u32::MAX; 2];
            for (k, (s, r)) in [(0usize, 1usize), (1, 0)].into_iter().enumerate() {
                let idx = channels.len() as u32;
                pair[k] = idx;
                let sender = end_sender(&link.ends[s]);
                let receiver = end_receiver(&link.ends[r]);
                channels.push(Channel::new(sender, receiver, cfg.link_delay_cycles));
                match sender {
                    Sender::SwitchOut { sw, port } => {
                        sw_out[sw as usize * ports + port as usize] = idx
                    }
                    Sender::Nic { host } => nic_out[host as usize] = idx,
                }
                match receiver {
                    Receiver::SwitchIn { sw, port } => {
                        sw_in[sw as usize * ports + port as usize] = idx
                    }
                    Receiver::Nic { .. } => {}
                }
            }
            link_chans.push(pair);
        }

        let switches: Vec<SwitchState> = topo
            .switches()
            .map(|s| {
                let mut inp = Vec::with_capacity(ports);
                let mut outp = Vec::with_capacity(ports);
                let mut active = Vec::new();
                for p in 0..ports {
                    let ic = sw_in[s.idx() * ports + p];
                    let oc = sw_out[s.idx() * ports + p];
                    debug_assert_eq!(ic == u32::MAX, oc == u32::MAX);
                    if ic != u32::MAX {
                        inp.push(Some(InPort::new(ic)));
                        outp.push(Some(OutPort::new(oc)));
                        active.push(p as u8);
                    } else {
                        inp.push(None);
                        outp.push(None);
                    }
                }
                SwitchState {
                    inp,
                    outp,
                    active_ports: active,
                }
            })
            .collect();

        let mut nics: Vec<Nic> = topo
            .hosts()
            .map(|h| {
                let rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0000 ^ (h.0 as u64) << 20);
                Nic::new(nic_out[h.idx()], rng)
            })
            .collect();

        // Random initial phase for the constant-rate generators; silent
        // hosts never generate.
        for (i, nic) in nics.iter_mut().enumerate() {
            if pattern.host_generates(regnet_topology::HostId(i as u32)) {
                nic.next_gen = nic.rng.gen::<f64>() * interarrival;
            } else {
                nic.next_gen = f64::MAX;
            }
        }

        let selector = db.selector();
        Simulator {
            topo,
            db,
            pattern,
            cfg,
            interarrival,
            cycle: 0,
            channels,
            switches,
            nics,
            arena: PacketArena::new(),
            msgs: MsgArena::default(),
            selector,
            measure: Measure::default(),
            last_activity: 0,
            trace: None,
            faults: None,
            counters: None,
            journal: None,
            profiler: None,
            sched: None,
            par: None,
            link_chans,
            pending_sw_loss: Vec::new(),
            pending_nic_drop: Vec::new(),
            gen_frozen: false,
            time_skip: false,
            skipped_cycles: 0,
            skip_log: None,
        }
    }

    /// Choose the cycle-loop driver. Must be called before the first
    /// [`step`](Simulator::step): the active-set scheduler derives its
    /// wake-ups from channel writes it observed, so it can only take over
    /// an empty network. `Simulator::new` starts on [`Scheduler::Scan`];
    /// the experiment driver applies `RunOptions::scheduler` (default
    /// [`Scheduler::ActiveSet`]).
    pub fn set_scheduler(&mut self, s: Scheduler) {
        assert_eq!(
            self.cycle, 0,
            "scheduler must be selected before the first cycle"
        );
        self.par = None;
        self.time_skip = false;
        self.sched = match s {
            Scheduler::Scan => None,
            Scheduler::ActiveSet => Some(Box::new(self.new_active_sched())),
            Scheduler::EventDriven => {
                // The active-set machinery provides the wake state; the
                // `run` loops additionally jump over provably idle spans.
                self.time_skip = true;
                Some(Box::new(self.new_active_sched()))
            }
            Scheduler::Parallel { .. } => {
                let threads = s.parallel_threads().unwrap();
                self.par = Some(Box::new(ParEngine::new(
                    self.topo,
                    threads,
                    self.cfg.link_delay_cycles,
                    &self.channels,
                    self.switches.len(),
                    self.nics.len(),
                )));
                None
            }
        };
    }

    fn new_active_sched(&self) -> ActiveSched {
        ActiveSched::new(
            self.cfg.link_delay_cycles,
            self.switches.len(),
            self.nics.len(),
        )
    }

    /// The cycle-loop driver in effect.
    pub fn scheduler(&self) -> Scheduler {
        if let Some(pe) = &self.par {
            Scheduler::Parallel {
                threads: pe.requested,
            }
        } else if self.sched.is_some() {
            if self.time_skip {
                Scheduler::EventDriven
            } else {
                Scheduler::ActiveSet
            }
        } else {
            Scheduler::Scan
        }
    }

    /// The cycle-loop driver that actually runs the simulation. No code
    /// path substitutes a different engine than the one requested, so this
    /// always equals the `set_scheduler` argument; it exists so result
    /// records can *assert* that, instead of trusting the requested label.
    pub fn effective_scheduler(&self) -> Scheduler {
        self.scheduler()
    }

    /// Enable the unified counter registry. Counting from this point on;
    /// [`begin_measurement`](Simulator::begin_measurement) resets it so the
    /// snapshot in [`RunStats`] covers exactly the measurement window.
    pub fn enable_counters(&mut self) {
        self.counters = Some(Box::new(Counters::new()));
    }

    /// Current counter values; `None` when counting was never enabled.
    pub fn counter_snapshot(&self) -> Option<CounterSnapshot> {
        self.counters.as_deref().map(|c| c.snapshot())
    }

    /// Enable the structured event journal (see [`EventOptions`]).
    pub fn enable_events(&mut self, opts: EventOptions) {
        self.journal = Some(Box::new(EventJournal::new(opts)));
    }

    /// The event journal, if enabled.
    pub fn journal(&self) -> Option<&EventJournal> {
        self.journal.as_deref()
    }

    /// Take the journal out of the simulator (for export after a run).
    pub fn take_journal(&mut self) -> Option<Box<EventJournal>> {
        self.journal.take()
    }

    /// Enable per-phase wall-time profiling. Wall times never enter
    /// [`RunStats`]; collect them with
    /// [`profile_report`](Simulator::profile_report).
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Box::new(Profiler::new()));
    }

    /// Per-phase wall-time breakdown; `None` when profiling was never
    /// enabled.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.profiler.as_deref().map(|p| p.report())
    }

    /// Hierarchical span view of the same profile (phase → shard →
    /// component bucket); `None` when profiling was never enabled.
    pub fn span_report(&self) -> Option<SpanReport> {
        self.profiler.as_deref().map(|p| p.span_report())
    }

    /// Arm the fault-injection runtime with `opts` (see [`FaultOptions`]).
    /// Call before running; events earlier than the current cycle fire
    /// immediately on the next step.
    pub fn enable_faults(&mut self, opts: FaultOptions) {
        self.faults = Some(Box::new(FaultRuntime::new(opts, self.topo.num_hosts())));
    }

    /// Dependability counters so far; all zeros when faults were never
    /// enabled.
    pub fn reliability(&self) -> ReliabilityStats {
        self.faults
            .as_deref()
            .map(|f| f.rel.clone())
            .unwrap_or_default()
    }

    /// The routing tables installed by the last successful mid-run
    /// reconfiguration, if any.
    pub fn reconfigured_routes(&self) -> Option<&PhysicalRoutes> {
        self.faults.as_deref().and_then(|f| f.routes.as_ref())
    }

    /// The faults currently in force, if fault injection is enabled.
    pub fn active_faults(&self) -> Option<&FaultSet> {
        self.faults.as_deref().map(|f| &f.active)
    }

    /// Enable the telemetry observers selected in `opts` (see
    /// [`TraceOptions`]). No-op when nothing is enabled. Call before
    /// running; observers record from this point on.
    pub fn enable_trace(&mut self, opts: TraceOptions) {
        if opts.any() {
            self.trace = Some(Box::new(TraceState::new(opts, self.channels.len())));
        }
    }

    /// Snapshot of everything the observers recorded so far; `None` when
    /// tracing was never enabled.
    pub fn trace_report(&self) -> Option<TraceReport> {
        self.trace.as_deref().map(|t| t.report())
    }

    /// Worst-case number of quiet cycles the engine can legitimately go
    /// through while still making progress (routing delays, cable
    /// crossings, in-transit detection + DMA + overflow handling), with
    /// generous slack. Quiescence beyond this means nothing is coming.
    fn quiescence_threshold(&self) -> u64 {
        4 * (self.cfg.link_delay_cycles as u64
            + self.cfg.switch_routing_cycles as u64
            + self.cfg.itb_detect_cycles as u64
            + self.cfg.itb_dma_cycles as u64
            + self.cfg.itb_overflow_penalty_cycles as u64)
            + 64
    }

    /// Build the channel wait-for graph and classify the network's current
    /// state: [`Idle`](crate::wfg::StallClass::Idle),
    /// [`Active`](crate::wfg::StallClass::Active), a true cyclic-dependency
    /// [`Deadlock`](crate::wfg::StallClass::Deadlock) (naming the cycle's
    /// channels), or [`Starvation`](crate::wfg::StallClass::Starvation).
    pub fn analyze_stall(&self) -> StallReport {
        if let Some(c) = self.counters.as_deref() {
            c.wfg_invocations.set(c.wfg_invocations.get() + 1);
        }
        crate::wfg::analyze(
            &self.switches,
            self.arena.live(),
            self.cycle,
            self.last_activity,
            self.quiescence_threshold(),
            &self.channel_descriptors(),
        )
    }

    /// Current simulation time, cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently alive (queued, in flight, or in transit).
    pub fn packets_in_flight(&self) -> usize {
        self.arena.live()
    }

    /// Static channel descriptors (parallel to [`RunStats::channel_busy`]).
    pub fn channel_descriptors(&self) -> Vec<ChannelDesc> {
        self.channels
            .iter()
            .map(|c| {
                let from = match c.sender {
                    Sender::SwitchOut { sw, .. } => NodeId::Switch(regnet_topology::SwitchId(sw)),
                    Sender::Nic { host } => NodeId::Host(regnet_topology::HostId(host)),
                };
                let to = match c.receiver {
                    Receiver::SwitchIn { sw, .. } => NodeId::Switch(regnet_topology::SwitchId(sw)),
                    Receiver::Nic { host } => NodeId::Host(regnet_topology::HostId(host)),
                };
                let switch_link =
                    matches!(from, NodeId::Switch(_)) && matches!(to, NodeId::Switch(_));
                ChannelDesc {
                    from,
                    to,
                    switch_link,
                }
            })
            .collect()
    }

    /// Run for `cycles` cycles. Under [`Scheduler::EventDriven`] idle
    /// spans are jumped over, but the loop still stops exactly at
    /// `cycle + cycles`, so measurement-window boundaries are unaffected.
    pub fn run(&mut self, cycles: u64) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            if self.time_skip {
                self.try_time_skip(end);
                if self.cycle >= end {
                    break;
                }
            }
            self.step();
        }
    }

    /// Start the measurement window (resets all counters).
    pub fn begin_measurement(&mut self) {
        self.measure = Measure {
            on: true,
            ..Measure::default()
        };
        for ch in &mut self.channels {
            ch.reset_busy();
        }
        if let Some(tr) = &mut self.trace {
            tr.on_busy_reset();
        }
        if let Some(c) = &mut self.counters {
            c.reset();
        }
    }

    /// Close the measurement window and collect the results.
    pub fn end_measurement(&mut self, window_cycles: u64) -> RunStats {
        let m = &self.measure;
        let delivered = m.delivered;
        RunStats {
            window_cycles,
            delivered,
            delivered_packets: m.delivered_packets,
            delivered_payload_flits: m.delivered_payload_flits,
            generated: m.generated,
            // An empty window reports 0.0, not NaN: RunStats must stay
            // comparable with `==` (determinism suite) and serializable.
            avg_latency_ns: if delivered > 0 {
                m.latency.mean() * CYCLE_NS
            } else {
                0.0
            },
            p99_latency_ns: m.hist.quantile(0.99) as f64 * CYCLE_NS,
            avg_total_latency_ns: if delivered > 0 {
                m.total_latency.mean() * CYCLE_NS
            } else {
                0.0
            },
            avg_itbs_per_msg: if delivered > 0 {
                m.itb_sum as f64 / delivered as f64
            } else {
                0.0
            },
            itb_overflows: m.itb_overflows,
            reinject_bubbles: m.reinject_bubbles,
            gen_stall_cycles: m.gen_stall_cycles,
            max_pool_flits: m.max_pool_flits,
            channel_busy: self.channels.iter().map(|c| c.busy_cycles).collect(),
            counters: self.counter_snapshot(),
        }
    }

    /// Permanently stop message generation at every host. Used to drain
    /// the network at the end of a run (every in-flight packet must then
    /// eventually be delivered — the no-deadlock invariant).
    pub fn stop_generation(&mut self) {
        self.gen_frozen = true;
        for nic in &mut self.nics {
            nic.next_gen = f64::MAX;
        }
    }

    /// Dump a human-readable snapshot of where every live packet is —
    /// diagnostic aid for stalls (used by tests and the `probe` binary).
    pub fn dump_state(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "cycle {} live {} last_activity {}",
            self.cycle,
            self.arena.live(),
            self.last_activity
        );
        let in_flight = self
            .channels
            .iter()
            .filter(|c| c.has_data_in_flight())
            .count();
        let _ = writeln!(out, "channels with data in flight: {in_flight}");
        for (h, nic) in self.nics.iter().enumerate() {
            if nic.is_idle() {
                continue;
            }
            let _ = writeln!(
                out,
                "  nic {h}: q={} reinj={} rtx={} tx={:?} rx={:?} stopped={} pool={}",
                nic.local_queue.len(),
                nic.reinject.len(),
                nic.retransmit.len(),
                nic.tx,
                nic.rx,
                nic.stopped,
                nic.pool_used
            );
        }
        for (s, sw) in self.switches.iter().enumerate() {
            for &p in &sw.active_ports {
                let inp = sw.inp[p as usize].as_ref().unwrap();
                if !inp.queue.is_empty() {
                    let head = inp.queue.front().unwrap();
                    let _ = writeln!(
                        out,
                        "  sw {s} in p{p}: q={} occ={} head pid={} exp={} rx={} fwd={} state={:?} out={}",
                        inp.queue.len(),
                        inp.occ,
                        head.pid,
                        head.expected,
                        head.received,
                        head.forwarded,
                        inp.head,
                        inp.head_out
                    );
                }
                let outp = sw.outp[p as usize].as_ref().unwrap();
                if outp.conn_in.is_some() || outp.stopped {
                    let _ = writeln!(
                        out,
                        "  sw {s} out p{p}: conn={:?} stopped={}",
                        outp.conn_in, outp.stopped
                    );
                }
            }
        }
        out
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        if self.par.is_some() {
            self.step_parallel();
            self.cycle += 1;
            return;
        }
        if self.profiler.is_some() {
            self.step_profiled();
        } else {
            let cycle = self.cycle;
            // ---- Phase 0: fault events, purges, reconfig. ----
            if self.faults.is_some() {
                self.fault_phase(cycle);
            }
            self.ctl_phase(cycle);
            self.arrival_phase(cycle);
            self.switches_phase(cycle, None);
            self.nic_tx_phase(cycle);
            // ---- Phase 6: deferred mid-cycle losses (faulted runs). ----
            if self.faults.is_some() {
                self.loss_phase(cycle);
            }
            self.gen_phase(cycle);
            self.observer_phase(cycle, None);
        }
        self.cycle += 1;
    }

    /// `step` with each phase wrapped in wall-clock timing. Kept separate
    /// so the default path carries no `Instant::now()` calls.
    fn step_profiled(&mut self) {
        use std::time::Instant;
        let cycle = self.cycle;
        let mut mark = Instant::now();
        let mut lap = |prof: &mut Profiler, phase: Phase| {
            let now = Instant::now();
            prof.add(phase, (now - mark).as_nanos() as u64);
            mark = now;
        };
        if self.faults.is_some() {
            self.fault_phase(cycle);
        }
        let mut prof = self
            .profiler
            .take()
            .expect("profiled step without profiler");
        lap(&mut prof, Phase::Faults);
        self.ctl_phase(cycle);
        lap(&mut prof, Phase::Control);
        self.arrival_phase(cycle);
        lap(&mut prof, Phase::Arrivals);
        // (routing control units, arbitration + crossbar transfer) ns.
        let mut sw_timing = (0u64, 0u64);
        self.switches_phase(cycle, Some(&mut sw_timing));
        lap(&mut prof, Phase::Switches);
        prof.add_child(Phase::Switches, NO_SHARD, "routing", sw_timing.0);
        prof.add_child(Phase::Switches, NO_SHARD, "crossbar", sw_timing.1);
        self.nic_tx_phase(cycle);
        lap(&mut prof, Phase::NicTx);
        if self.faults.is_some() {
            self.loss_phase(cycle);
        }
        lap(&mut prof, Phase::Faults);
        self.gen_phase(cycle);
        lap(&mut prof, Phase::Generation);
        let mut trace_ns = 0u64;
        self.observer_phase(cycle, Some(&mut trace_ns));
        lap(&mut prof, Phase::Observers);
        prof.add_child(Phase::Observers, NO_SHARD, "trace", trace_ns);
        prof.cycles += 1;
        self.profiler = Some(prof);
    }

    /// Build the raw-pointer context workers use for one region (see
    /// `crate::par` for the safety argument). Rebuilt per region, so no
    /// pointer survives a main-thread barrier mutation.
    fn par_ctx(&mut self, pe: &mut ParEngine, cycle: u64) -> ParCtx {
        // Fault state is read-only while workers run: the fault phase — the
        // only mutator of `FaultSet` / `host_ok` / the installed routes —
        // runs on the main thread before region A.
        let (faults_on, faults, eff_db, reselect) = match self.faults.as_deref() {
            Some(f) => (
                true,
                f as *const FaultRuntime,
                f.routes.as_ref().map(|r| &r.db).unwrap_or(self.db) as *const RouteDb,
                f.routes.is_some(),
            ),
            None => (
                false,
                std::ptr::null::<FaultRuntime>(),
                self.db as *const RouteDb,
                false,
            ),
        };
        ParCtx {
            channels: self.channels.as_mut_ptr(),
            switches: self.switches.as_mut_ptr(),
            nics: self.nics.as_mut_ptr(),
            pkt_slots: self.arena.raw_slots(),
            msg_slots: self.msgs.raw_slots(),
            shards: pe.shards.as_mut_ptr(),
            n_shards: pe.shards.len(),
            executors: pe.pool.executors(),
            data_owner: pe.data_owner.as_ptr(),
            ctl_owner: pe.ctl_owner.as_ptr(),
            cfg: &self.cfg,
            topo: self.topo,
            faults_on,
            faults,
            eff_db,
            reselect,
            selectors: self.selector.per_src_mut().as_mut_ptr(),
            cycle,
            measure_on: self.measure.on,
            diag: self.counters.is_some() || self.journal.is_some(),
            journal_on: self.journal.is_some(),
            trace_on: self.trace.is_some(),
            // The profiler is temporarily taken out during step_parallel,
            // so the caller overrides this from its local handle.
            prof_on: false,
        }
    }

    /// One cycle of the shard-parallel engine: region A (ctl + arrivals)
    /// on the worker pool, the cross-shard control mid-barrier, region B
    /// (switches + NIC tx) on the pool, the deterministic fold, then
    /// generation and observers inline. See `crate::par` for the design
    /// and the bit-identity argument.
    fn step_parallel(&mut self) {
        use std::time::Instant;
        let cycle = self.cycle;
        let mut pe = self.par.take().expect("parallel step without engine");
        let mut prof = self.profiler.take();
        let prof_on = prof.is_some();
        // Coarse profiler mapping: region A → Arrivals, mid-barrier →
        // Control, region B → Switches, fold → NicTx (the fused regions
        // cannot be split into the sequential engine's finer phases).
        // Shard-level spans below the two regions come from the workers'
        // own `span_ns` accumulators, drained after region B.
        let mut mark = prof.as_ref().map(|_| Instant::now());

        // ---- Phase 0: fault events, purges, reconfig — main thread,
        // workers parked. Purges route their control fix-ups and wakes to
        // the owner shards (see `sched_note_ctl` / `sched_wake_nic_at`);
        // the engine is put back first so those helpers can reach it.
        if self.faults.is_some() {
            self.par = Some(pe);
            self.fault_phase(cycle);
            pe = self.par.take().expect("fault phase consumed the engine");
        }
        lap_par(&mut prof, &mut mark, Phase::Faults);

        {
            let mut ctx = self.par_ctx(&mut pe, cycle);
            ctx.prof_on = prof_on;
            pe.pool.run(&move |e| crate::par::run_region_a(&ctx, e));
        }
        lap_par(&mut prof, &mut mark, Phase::Arrivals);

        // Mid-barrier: apply cross-shard region-A control symbols in
        // ascending channel order — before region B, so a region-B GO can
        // supersede a region-A STOP on the same channel exactly as the
        // sequential phase order allows. (A fault-free cycle emits at most
        // one region-A symbol per channel, so the order is total.)
        let mut merged = std::mem::take(&mut pe.merged_ctl);
        merged.clear();
        for sh in &mut pe.shards {
            merged.append(&mut sh.ctl_out);
        }
        merged.sort_unstable_by_key(|&(ci, _)| ci);
        for &(ci, sym) in &merged {
            self.channels[ci as usize].send_ctl(cycle, sym);
            let owner = pe.ctl_owner[ci as usize] as usize;
            pe.shards[owner].sched.note_ctl(cycle, ci);
        }
        pe.merged_ctl = merged;
        lap_par(&mut prof, &mut mark, Phase::Control);

        {
            let mut ctx = self.par_ctx(&mut pe, cycle);
            ctx.prof_on = prof_on;
            pe.pool.run(&move |e| crate::par::run_region_b(&ctx, e));
        }
        lap_par(&mut prof, &mut mark, Phase::Switches);

        // Drain the workers' shard-span accumulators: region A buckets
        // nest under Arrivals, region B buckets under Switches (matching
        // the coarse mapping above).
        if let Some(p) = prof.as_deref_mut() {
            for (k, sh) in pe.shards.iter_mut().enumerate() {
                let [ctl, arr, sw, nic] = sh.span_ns;
                p.add_child(Phase::Arrivals, k as u32, "control", ctl);
                p.add_child(Phase::Arrivals, k as u32, "arrivals", arr);
                p.add_child(Phase::Switches, k as u32, "switches", sw);
                p.add_child(Phase::Switches, k as u32, "nic_tx", nic);
                sh.span_ns = [0; 4];
            }
        }

        self.fold_parallel(&mut pe, cycle);
        lap_par(&mut prof, &mut mark, Phase::NicTx);

        // The engine goes back in place before the loss phase: purges and
        // retransmission timers route their wakes to the shard schedulers,
        // and `create_message` activates source NICs in theirs.
        self.par = Some(pe);
        if self.faults.is_some() {
            self.loss_phase(cycle);
        }
        lap_par(&mut prof, &mut mark, Phase::Faults);
        self.gen_phase(cycle);
        lap_par(&mut prof, &mut mark, Phase::Generation);
        let mut trace_ns = 0u64;
        self.observer_phase(cycle, prof_on.then_some(&mut trace_ns));
        lap_par(&mut prof, &mut mark, Phase::Observers);
        if let Some(p) = prof.as_deref_mut() {
            p.add_child(Phase::Observers, NO_SHARD, "trace", trace_ns);
            p.cycles += 1;
        }
        self.profiler = prof;
    }

    /// The parallel cycle's barrier fold: route cross-shard timing-wheel
    /// notes to their owner shards, replay the deferred observable effects
    /// in the sequential phase-and-index order, and merge the per-shard
    /// counter/measurement deltas.
    fn fold_parallel(&mut self, pe: &mut ParEngine, cycle: u64) {
        // Cross-shard wheel notes. Buckets are sorted + dedup'd at drain
        // time, so insertion order is irrelevant.
        for s in 0..pe.shards.len() {
            let mut notes = std::mem::take(&mut pe.shards[s].note_data_out);
            for ci in notes.drain(..) {
                let owner = pe.data_owner[ci as usize] as usize;
                pe.shards[owner].sched.note_data(cycle, ci);
            }
            pe.shards[s].note_data_out = notes;
            let mut notes = std::mem::take(&mut pe.shards[s].note_ctl_out);
            for ci in notes.drain(..) {
                let owner = pe.ctl_owner[ci as usize] as usize;
                pe.shards[owner].sched.note_ctl(cycle, ci);
            }
            pe.shards[s].note_ctl_out = notes;
        }

        // Deferred effects, one stream per sequential phase, each stably
        // sorted by its component key: BFS shards are not index-contiguous,
        // so the sort — not shard concatenation — reconstructs the global
        // sequential visit order. Deliveries run here, before generation,
        // so the arena and message free-lists reuse slots in the exact
        // sequential order.
        pe.merged_arr.clear();
        for sh in &mut pe.shards {
            pe.merged_arr.append(&mut sh.arr_fx);
        }
        pe.merged_arr.sort_by_key(|e| e.0);
        let mut arr = std::mem::take(&mut pe.merged_arr);
        for (_, fx) in arr.drain(..) {
            match fx {
                ArrFx::Journal { pid, kind } => {
                    if let Some(j) = &mut self.journal {
                        j.record(cycle, pid, kind);
                    }
                }
                ArrFx::ItbEject {
                    pid,
                    host,
                    overflow,
                } => {
                    if let Some(tr) = &mut self.trace {
                        tr.on_itb_eject(cycle, pid);
                    }
                    if let Some(j) = &mut self.journal {
                        j.record(cycle, pid, EventKind::ItbEject { host, overflow });
                    }
                }
                ArrFx::Deliver { pid, host } => self.complete_delivery(pid, host, cycle),
            }
        }
        pe.merged_arr = arr;

        pe.merged_sw.clear();
        for sh in &mut pe.shards {
            pe.merged_sw.append(&mut sh.sw_fx);
        }
        pe.merged_sw.sort_by_key(|e| e.0);
        for &(_, pid, kind) in &pe.merged_sw {
            if let Some(j) = &mut self.journal {
                j.record(cycle, pid, kind);
            }
        }
        pe.merged_sw.clear();

        pe.merged_nic.clear();
        for sh in &mut pe.shards {
            pe.merged_nic.append(&mut sh.nic_fx);
        }
        pe.merged_nic.sort_by_key(|e| e.0);
        let mut nic_fx = std::mem::take(&mut pe.merged_nic);
        for (_, fx) in nic_fx.drain(..) {
            match fx {
                NicFx::Inject { pid, src, dst } => {
                    if let Some(j) = &mut self.journal {
                        j.record(cycle, pid, EventKind::Inject { src, dst });
                    }
                }
                NicFx::Reinject { pid, host } => {
                    if let Some(tr) = &mut self.trace {
                        tr.on_reinject_start(cycle, pid);
                    }
                    if let Some(j) = &mut self.journal {
                        j.record(cycle, pid, EventKind::Reinject { host });
                    }
                }
            }
        }
        pe.merged_nic = nic_fx;

        // Deferred losses: collect the shards' records into the engine-
        // shared pending lists; `loss_phase` sorts and replays them after
        // the fold, exactly where the sequential engines do.
        for sh in &mut pe.shards {
            self.pending_sw_loss.append(&mut sh.sw_loss);
            self.pending_nic_drop.append(&mut sh.nic_drop);
        }

        // Order-free folds: counters are sums, the measurement deltas are
        // sums/maxes, activity is an "any shard moved something" flag.
        if let Some(c) = &mut self.counters {
            for sh in &pe.shards {
                c.add(&sh.counters);
            }
        }
        for sh in &mut pe.shards {
            sh.counters.reset();
            if self.measure.on {
                self.measure.itb_overflows += sh.itb_overflows;
                self.measure.reinject_bubbles += sh.reinject_bubbles;
                self.measure.max_pool_flits = self.measure.max_pool_flits.max(sh.max_pool_flits);
            }
            sh.itb_overflows = 0;
            sh.reinject_bubbles = 0;
            sh.max_pool_flits = 0;
            if sh.activity {
                self.last_activity = cycle;
                sh.activity = false;
            }
        }
    }

    /// Phase 1: control-symbol arrivals flip sender flags.
    fn ctl_phase(&mut self, cycle: u64) {
        if self.sched.is_some() {
            let bucket = self.sched.as_mut().unwrap().take_ctl(cycle);
            for &ci in &bucket {
                let symbol = self.channels[ci as usize].take_ctl_arrival(cycle);
                if symbol != CTL_NONE {
                    self.deliver_ctl(ci as usize, symbol, cycle);
                }
            }
            self.sched.as_mut().unwrap().recycle(bucket);
        } else {
            for i in 0..self.channels.len() {
                let symbol = self.channels[i].take_ctl_arrival(cycle);
                if symbol != CTL_NONE {
                    self.deliver_ctl(i, symbol, cycle);
                }
            }
        }
    }

    /// Deliver one control symbol to channel `i`'s sender. Control traffic
    /// counts as activity for the watchdog: a long STOP/GO exchange with no
    /// data arrivals is a flow-controlled network, not a stall.
    fn deliver_ctl(&mut self, i: usize, symbol: u8, cycle: u64) {
        let stopped = symbol == CTL_STOP;
        if let Some(c) = &mut self.counters {
            if stopped {
                c.ctl_stops += 1;
            } else {
                c.ctl_gos += 1;
            }
        }
        self.last_activity = cycle;
        match self.channels[i].sender {
            Sender::SwitchOut { sw, port } => {
                self.switches[sw as usize].outp[port as usize]
                    .as_mut()
                    .expect("ctl for unconnected port")
                    .stopped = stopped;
            }
            Sender::Nic { host } => self.nics[host as usize].stopped = stopped,
        }
    }

    /// Phase 2: data arrivals.
    fn arrival_phase(&mut self, cycle: u64) {
        if self.sched.is_some() {
            let bucket = self.sched.as_mut().unwrap().take_data(cycle);
            for &ci in &bucket {
                if let Some(pid) = self.channels[ci as usize].take_arrival(cycle) {
                    self.deliver_data(ci as usize, pid, cycle);
                }
            }
            self.sched.as_mut().unwrap().recycle(bucket);
        } else {
            for i in 0..self.channels.len() {
                if let Some(pid) = self.channels[i].take_arrival(cycle) {
                    self.deliver_data(i, pid, cycle);
                }
            }
        }
    }

    fn deliver_data(&mut self, i: usize, pid: u32, cycle: u64) {
        self.last_activity = cycle;
        match self.channels[i].receiver {
            Receiver::SwitchIn { sw, port } => self.switch_rx(sw, port, pid, cycle),
            Receiver::Nic { host } => self.nic_rx(host, pid, cycle),
        }
    }

    /// Phase 3: switches route, arbitrate and transfer. `timing`, when
    /// profiling, accumulates (routing, arbitration+crossbar) ns across
    /// all switches visited this cycle.
    fn switches_phase(&mut self, cycle: u64, mut timing: Option<&mut (u64, u64)>) {
        if self.sched.is_some() {
            let mut list = self.sched.as_mut().unwrap().take_active_switches();
            list.sort_unstable();
            list.retain(|&s| {
                self.switch_phase(s as usize, cycle, timing.as_deref_mut());
                if self.switches[s as usize].is_quiescent() {
                    self.sched.as_mut().unwrap().retire_switch(s);
                    false
                } else {
                    true
                }
            });
            self.sched.as_mut().unwrap().merge_switches(list);
        } else {
            for s in 0..self.switches.len() {
                self.switch_phase(s, cycle, timing.as_deref_mut());
            }
        }
    }

    /// Phase 4: NIC transmission.
    fn nic_tx_phase(&mut self, cycle: u64) {
        if self.sched.is_some() {
            let sc = self.sched.as_mut().unwrap();
            sc.drain_wakes(cycle);
            let mut list = sc.take_active_nics();
            list.sort_unstable();
            list.retain(|&h| {
                self.nic_tx(h as usize, cycle);
                if self.nics[h as usize].quiescent_for_tx(cycle) {
                    self.sched.as_mut().unwrap().retire_nic(h);
                    false
                } else {
                    true
                }
            });
            self.sched.as_mut().unwrap().merge_nics(list);
        } else {
            for h in 0..self.nics.len() {
                self.nic_tx(h, cycle);
            }
        }
    }

    /// Phase 5: message generation.
    fn gen_phase(&mut self, cycle: u64) {
        for h in 0..self.nics.len() {
            self.nic_gen(h, cycle);
        }
    }

    /// Watchdog + per-cycle observer work. `trace_ns`, when profiling,
    /// accumulates the wall time of the trace observer's end-of-cycle hook
    /// (the "trace" child span under the observers phase).
    fn observer_phase(&mut self, cycle: u64, trace_ns: Option<&mut u64>) {
        // Watchdog: a quiescent network with live packets should be
        // impossible under the routing schemes' deadlock-freedom argument.
        // Before aborting, run the wait-for-graph analyzer so the panic
        // says *what kind* of stall this is (cyclic-dependency deadlock
        // vs. starvation/livelock) and which channels form the cycle.
        if self.arena.live() > 0
            && cycle - self.last_activity > self.cfg.watchdog_cycles
            && self.nics.iter().all(|n| n.tx.is_none() || n.stopped)
        {
            let report = self.analyze_stall();
            panic!(
                "watchdog: no flit moved for {} cycles with {} packets live at cycle {}\n{}",
                self.cfg.watchdog_cycles,
                self.arena.live(),
                cycle,
                report.summary
            );
        }

        if let Some(tr) = &mut self.trace {
            let mark = trace_ns.as_ref().map(|_| std::time::Instant::now());
            let live = self.arena.live() as u64;
            tr.on_cycle_end(
                cycle,
                &self.channels,
                &self.nics,
                live,
                self.counters.as_deref(),
            );
            if let (Some(acc), Some(m)) = (trace_ns, mark) {
                *acc += m.elapsed().as_nanos() as u64;
            }
        }
    }

    fn switch_rx(&mut self, sw: u32, port: u8, pid: u32, cycle: u64) {
        if let Some(sc) = self.sched.as_deref_mut() {
            // A flit in an input buffer is exactly what keeps a switch in
            // the active set.
            sc.activate_switch(sw);
        }
        let inp = self.switches[sw as usize].inp[port as usize]
            .as_mut()
            .expect("flit into unconnected port");
        // Contiguity: a channel carries one packet's flits back-to-back
        // (possibly with bubbles), so an incomplete tail entry means
        // continuation.
        let continuation = inp
            .queue
            .back()
            .map(|p| p.received < p.expected)
            .unwrap_or(false);
        if continuation {
            let back = inp.queue.back_mut().unwrap();
            debug_assert_eq!(back.pid, pid, "interleaved packets on one channel");
            back.received += 1;
        } else {
            let expected = self.arena.get(pid).expected_at_next_receiver();
            debug_assert!(expected >= 2);
            inp.queue.push_back(InPkt {
                pid,
                expected,
                received: 1,
                forwarded: 0,
                header_consumed: false,
            });
            if let Some(c) = &mut self.counters {
                c.switch_arrivals += 1;
            }
            if let Some(j) = &mut self.journal {
                j.record(cycle, pid, EventKind::SwitchArrival { sw, port });
            }
        }
        if let Some(ctl) = inp.on_flit_in(&self.cfg) {
            let chan = inp.in_chan;
            self.channels[chan as usize].send_ctl(cycle, ctl);
            if let Some(sc) = self.sched.as_deref_mut() {
                sc.note_ctl(cycle, chan);
            }
        }
    }

    /// One switch's routing + arbitration + transfer work. `timing`, when
    /// profiling, accumulates (routing-units, arbitration+crossbar) ns —
    /// a single pass with optional timestamps, never a restructured loop,
    /// so journal record order is identical profiled or not.
    fn switch_phase(&mut self, s: usize, cycle: u64, mut timing: Option<&mut (u64, u64)>) {
        let faults_on = self.faults.is_some();
        // A dead switch routes nothing (its resident packets were purged
        // when it failed).
        if faults_on
            && !self
                .faults
                .as_deref()
                .unwrap()
                .active
                .is_switch_alive(SwitchId(s as u32))
        {
            return;
        }
        let cfg = &self.cfg;
        let sw = &mut self.switches[s];
        let nports = sw.active_ports.len();
        let mut mark = timing.as_ref().map(|_| std::time::Instant::now());

        // Routing control units: consume the header byte of each head
        // packet and start the 150 ns routing delay.
        for k in 0..nports {
            let p = sw.active_ports[k] as usize;
            let inp = sw.inp[p].as_mut().unwrap();
            match inp.head {
                HeadState::Idle => {
                    if let Some(head) = inp.queue.front_mut() {
                        if head.received >= 1 && !head.header_consumed {
                            head.header_consumed = true;
                            let pid = head.pid;
                            let out = self.arena.get_mut(pid).consume_port_byte();
                            inp.head_out = out;
                            inp.head = HeadState::Routing {
                                ready: cycle + cfg.switch_routing_cycles as u64,
                            };
                            if let Some(ctl) = inp.on_flit_out(cfg) {
                                let chan = inp.in_chan;
                                self.channels[chan as usize].send_ctl(cycle, ctl);
                                if let Some(sc) = self.sched.as_deref_mut() {
                                    sc.note_ctl(cycle, chan);
                                }
                            }
                            if faults_on {
                                // Routing towards a dead cable (or a port
                                // that never existed in a stale route):
                                // the worm is lost. Truncation is deferred
                                // to the loss phase (see `loss_phase`).
                                let dead_out =
                                    match sw.outp.get(out as usize).and_then(|o| o.as_ref()) {
                                        Some(o) => self.channels[o.out_chan as usize].is_dead(),
                                        None => true,
                                    };
                                if dead_out {
                                    self.pending_sw_loss.push((s as u32, pid));
                                }
                            }
                            if let Some(c) = &mut self.counters {
                                c.route_lookups += 1;
                            }
                            if let Some(j) = &mut self.journal {
                                j.record(
                                    cycle,
                                    pid,
                                    EventKind::Route {
                                        sw: s as u32,
                                        port: p as u8,
                                        out,
                                    },
                                );
                            }
                        }
                    }
                }
                HeadState::Routing { ready } => {
                    if cycle >= ready {
                        inp.head = HeadState::Requesting;
                        if self.counters.is_some() || self.journal.is_some() {
                            let out = inp.head_out;
                            let pid = inp.queue.front().map(|q| q.pid).unwrap_or(NO_PACKET);
                            // Why can't the head advance right now? Busy or
                            // stopped output, or another requesting head.
                            let cause = match sw.outp.get(out as usize).and_then(|o| o.as_ref()) {
                                Some(o) if o.conn_in.is_some() => Some(BlockCause::OutputBusy),
                                Some(o) if o.stopped => Some(BlockCause::FlowStopped),
                                Some(_) => {
                                    let contended = sw.active_ports.iter().any(|&q| {
                                        q as usize != p
                                            && sw.inp[q as usize].as_ref().is_some_and(|ip| {
                                                ip.head == HeadState::Requesting
                                                    && ip.head_out == out
                                            })
                                    });
                                    contended.then_some(BlockCause::Arbitration)
                                }
                                None => None,
                            };
                            if let Some(cause) = cause {
                                if let Some(c) = &mut self.counters {
                                    c.worms_blocked += 1;
                                }
                                if let Some(j) = &mut self.journal {
                                    j.record(
                                        cycle,
                                        pid,
                                        EventKind::Block {
                                            sw: s as u32,
                                            out,
                                            cause,
                                        },
                                    );
                                }
                            }
                        }
                    }
                }
                HeadState::Requesting | HeadState::Granted => {}
            }
        }
        if let (Some(t), Some(m)) = (timing.as_deref_mut(), mark.as_mut()) {
            let now = std::time::Instant::now();
            t.0 += (now - *m).as_nanos() as u64;
            *m = now;
        }

        // Output ports: arbitrate (demand-slotted round-robin over the
        // requesting inputs) and transfer one flit per connected port.
        for k in 0..nports {
            let p = sw.active_ports[k] as usize;
            // Arbitration.
            if sw.outp[p].as_ref().unwrap().conn_in.is_none() {
                let rr = sw.outp[p].as_ref().unwrap().rr;
                // Find the first requesting input after `rr` in round-robin
                // order over the active ports.
                let start = sw
                    .active_ports
                    .iter()
                    .position(|&ap| ap == rr)
                    .map(|i| i + 1)
                    .unwrap_or(0);
                let mut grant = None;
                for off in 0..nports {
                    let cand = sw.active_ports[(start + off) % nports];
                    let inp = sw.inp[cand as usize].as_ref().unwrap();
                    if inp.head == HeadState::Requesting && inp.head_out as usize == p {
                        grant = Some(cand);
                        break;
                    }
                }
                if let Some(g) = grant {
                    let outp = sw.outp[p].as_mut().unwrap();
                    outp.conn_in = Some(g);
                    outp.rr = g;
                    sw.inp[g as usize].as_mut().unwrap().head = HeadState::Granted;
                    if let Some(c) = &mut self.counters {
                        c.arbitration_grants += 1;
                    }
                    if let Some(j) = &mut self.journal {
                        let pid = sw.inp[g as usize]
                            .as_ref()
                            .unwrap()
                            .queue
                            .front()
                            .map(|q| q.pid)
                            .unwrap_or(NO_PACKET);
                        j.record(
                            cycle,
                            pid,
                            EventKind::HeadAdvance {
                                sw: s as u32,
                                in_port: g,
                                out: p as u8,
                            },
                        );
                    }
                }
            }
            // Transfer.
            let outp = sw.outp[p].as_ref().unwrap();
            let Some(g) = outp.conn_in else { continue };
            if outp.stopped {
                continue;
            }
            let out_chan = outp.out_chan;
            if faults_on && self.channels[out_chan as usize].is_dead() {
                // The granted head is already queued for loss handling;
                // never stream flits into a dead cable.
                continue;
            }
            let inp = sw.inp[g as usize].as_mut().unwrap();
            let head = inp.queue.front_mut().expect("granted without head");
            if head.available() == 0 {
                continue;
            }
            let pid = head.pid;
            head.forwarded += 1;
            let done = head.done();
            self.channels[out_chan as usize].send(cycle, pid);
            self.last_activity = cycle;
            if let Some(sc) = self.sched.as_deref_mut() {
                sc.note_data(cycle, out_chan);
            }
            if let Some(c) = &mut self.counters {
                c.flits_forwarded += 1;
            }
            if let Some(ctl) = inp.on_flit_out(cfg) {
                let chan = inp.in_chan;
                self.channels[chan as usize].send_ctl(cycle, ctl);
                if let Some(sc) = self.sched.as_deref_mut() {
                    sc.note_ctl(cycle, chan);
                }
            }
            if done {
                inp.queue.pop_front();
                inp.head = HeadState::Idle;
                sw.outp[p].as_mut().unwrap().conn_in = None;
            }
        }
        if let (Some(t), Some(m)) = (timing, mark) {
            t.1 += m.elapsed().as_nanos() as u64;
        }
    }

    fn nic_rx(&mut self, host: u32, pid: u32, cycle: u64) {
        let h = host as usize;
        // New packet or continuation?
        let is_new = match self.nics[h].rx {
            Some(rx) => {
                debug_assert_eq!(rx.pid, pid, "interleaved packets into NIC");
                false
            }
            None => true,
        };
        if is_new {
            let pkt = self.arena.get_mut(pid);
            let expected = pkt.expected_at_next_receiver();
            debug_assert!(
                !pkt.on_final_segment()
                    || matches!(
                        pkt.journey.segments[pkt.seg as usize].end,
                        SegmentEnd::Deliver
                    )
            );
            let deliver = match pkt.journey.segments[pkt.seg as usize].end {
                SegmentEnd::Deliver => {
                    debug_assert_eq!(pkt.journey.dst.0, host, "misrouted packet");
                    true
                }
                SegmentEnd::Itb(itb_host) => {
                    debug_assert_eq!(itb_host.0, host, "misrouted in-transit packet");
                    // In-transit processing: recognise the packet (275 ns),
                    // program the DMA (200 ns), reserve pool space.
                    pkt.itbs_used += 1;
                    let mut ready =
                        cycle + (self.cfg.itb_detect_cycles + self.cfg.itb_dma_cycles) as u64;
                    let nic = &mut self.nics[h];
                    let overflow = nic.pool_used + expected > self.cfg.itb_pool_flits;
                    if !overflow {
                        nic.pool_used += expected;
                        pkt.pool_reserved = expected;
                        if self.measure.on {
                            self.measure.max_pool_flits =
                                self.measure.max_pool_flits.max(nic.pool_used);
                        }
                    } else {
                        // Overflow to host memory: considerably more
                        // overhead (paper section 3).
                        pkt.pool_reserved = 0;
                        ready += self.cfg.itb_overflow_penalty_cycles as u64;
                        if self.measure.on {
                            self.measure.itb_overflows += 1;
                        }
                    }
                    // The packet enters its next segment (the ITB mark is
                    // stripped by this NIC).
                    pkt.seg += 1;
                    pkt.hop = 0;
                    self.nics[h].reinject.push(std::cmp::Reverse((ready, pid)));
                    if let Some(sc) = self.sched.as_deref_mut() {
                        sc.wake_nic_at(ready, host);
                    }
                    if let Some(tr) = &mut self.trace {
                        tr.on_itb_eject(cycle, pid);
                    }
                    if let Some(c) = &mut self.counters {
                        c.itb_ejections += 1;
                        if overflow {
                            c.itb_overflows += 1;
                        }
                    }
                    if let Some(j) = &mut self.journal {
                        j.record(cycle, pid, EventKind::ItbEject { host, overflow });
                    }
                    false
                }
            };
            self.nics[h].rx = Some(RxState {
                pid,
                received: 0,
                expected,
                deliver,
            });
        }

        let rx = self.nics[h].rx.as_mut().unwrap();
        rx.received += 1;
        let finished = rx.received == rx.expected;
        let deliver = rx.deliver;
        if finished {
            self.nics[h].rx = None;
            if deliver {
                self.complete_delivery(pid, host, cycle);
            }
        }
    }

    /// A packet finished arriving at its destination NIC: arena/message
    /// bookkeeping, measurement, counters, journal and trace hooks. Shared
    /// by the sequential `nic_rx` and the parallel fold, which replays
    /// deliveries in ascending channel order so the arena and message
    /// free-lists reuse slots exactly as the sequential arrival phase does.
    fn complete_delivery(&mut self, pid: u32, host: u32, cycle: u64) {
        let pkt = self.arena.remove(pid);
        let ms = self.msgs.get_mut(pkt.msg);
        ms.remaining -= 1;
        ms.itbs += pkt.itbs_used as u16;
        let done = ms.remaining == 0;
        if self.measure.on {
            let m = &mut self.measure;
            m.delivered_packets += 1;
            m.delivered_payload_flits += pkt.payload as u64;
        }
        if let Some(c) = &mut self.counters {
            c.packets_delivered += 1;
        }
        if let Some(j) = &mut self.journal {
            j.record(cycle, pid, EventKind::Deliver { dst: host });
        }
        if done {
            // All packets of the message reassembled: the message is
            // delivered (with mtu_flits = None this is every packet, the
            // paper's model).
            let ms = self.msgs.remove(pkt.msg);
            if ms.failed {
                // A sibling packet was dropped by a fault (only possible
                // with MTU segmentation): the message never completes at
                // the receiver.
                if let Some(f) = self.faults.as_deref_mut() {
                    f.rel.dropped_messages += 1;
                }
            } else {
                if self.measure.on {
                    let m = &mut self.measure;
                    m.delivered += 1;
                    m.itb_sum += ms.itbs as u64;
                    m.latency.push((cycle - ms.first_inject) as f64);
                    m.hist.record(cycle - ms.first_inject);
                    m.total_latency.push((cycle - ms.gen_cycle) as f64);
                }
                if let Some(c) = &mut self.counters {
                    c.messages_delivered += 1;
                }
                if let Some(tr) = &mut self.trace {
                    tr.on_message_delivered(
                        cycle,
                        pkt.journey.src.0,
                        pkt.journey.dst.0,
                        pkt.payload as u64,
                        ms.itbs as u64,
                        ms.first_inject,
                    );
                }
            }
        }
    }

    fn nic_tx(&mut self, h: usize, cycle: u64) {
        if let Some(f) = self.faults.as_deref() {
            // Sources freeze while the mapper redistributes routes; the
            // transmission already in progress may finish.
            if f.reconfig_due.is_some() && self.nics[h].tx.is_none() {
                return;
            }
            // A NIC on a dead host link cannot move flits at all.
            if self.channels[self.nics[h].out_chan as usize].is_dead() {
                return;
            }
        }
        if self.nics[h].tx.is_none() {
            let itb_priority = self.cfg.itb_priority;
            while let Some((pid, kind)) = self.nics[h].pick_next_tx(cycle, itb_priority) {
                // Fresh and retransmitted packets route from scratch: under
                // faults, re-validate the pair and — once a rebuild has
                // been installed — re-select the journey from the current
                // tables (in-transit packets keep their remaining route).
                if kind != TxKind::Reinject {
                    if let Some(f) = self.faults.as_deref() {
                        let (src, dst) = {
                            let p = self.arena.get(pid);
                            (p.journey.src, p.journey.dst)
                        };
                        let db = f.routes.as_ref().map(|r| &r.db).unwrap_or(self.db);
                        let routable = f.host_ok[src.idx()]
                            && f.host_ok[dst.idx()]
                            && db.has_route(self.topo.host_switch(src), self.topo.host_switch(dst));
                        if !routable {
                            // Skip it now (the NIC still transmits the next
                            // routable packet this cycle); the drop
                            // bookkeeping runs in the loss phase.
                            self.pending_nic_drop.push((h as u32, pid));
                            continue;
                        }
                        if f.routes.is_some() {
                            let journey = db.select(self.topo, src, dst, &mut self.selector);
                            let pkt = self.arena.get_mut(pid);
                            pkt.journey = journey;
                            pkt.seg = 0;
                            pkt.hop = 0;
                        }
                    }
                }
                let total = self.arena.get(pid).wire_len_current_segment();
                self.nics[h].tx = Some(TxState {
                    pid,
                    sent: 0,
                    total,
                    reinjection: kind == TxKind::Reinject,
                });
                break;
            }
        }
        let nic = &mut self.nics[h];
        let Some(tx) = nic.tx else { return };
        if nic.stopped {
            return;
        }
        let pkt = self.arena.get_mut(tx.pid);
        // Cut-through availability: a re-injected packet can only send
        // flits that have already arrived *at this NIC* (minus the consumed
        // ITB mark). The count comes from this NIC's own reception state —
        // if our rx has moved on, the packet arrived here completely. (A
        // packet can span several NICs at once when cut-through chains
        // through consecutive in-transit hosts, so the count must be
        // per-NIC, not per-packet.)
        let available = if tx.reinjection {
            let arrived_here = match nic.rx {
                Some(rx) if rx.pid == tx.pid => rx.received,
                _ => tx.total + 1, // fully received (wire included the ITB mark)
            };
            if self.cfg.itb_cut_through {
                arrived_here.saturating_sub(1)
            } else if arrived_here > tx.total {
                tx.total
            } else {
                0
            }
        } else {
            tx.total
        };
        if tx.sent >= available {
            if tx.reinjection && tx.sent > 0 && self.measure.on {
                // Mid-packet bubble: the tail has not arrived yet.
                self.measure.reinject_bubbles += 1;
            }
            return;
        }
        if tx.sent == 0 && !tx.reinjection {
            pkt.inject_cycle = cycle;
            let ms = self.msgs.get_mut(pkt.msg);
            if ms.first_inject == u64::MAX {
                ms.first_inject = cycle;
            }
            if let Some(j) = &mut self.journal {
                j.record(
                    cycle,
                    tx.pid,
                    EventKind::Inject {
                        src: pkt.journey.src.0,
                        dst: pkt.journey.dst.0,
                    },
                );
            }
        }
        self.channels[nic.out_chan as usize].send(cycle, tx.pid);
        self.last_activity = cycle;
        if let Some(sc) = self.sched.as_deref_mut() {
            sc.note_data(cycle, nic.out_chan);
        }
        if let Some(c) = &mut self.counters {
            c.flits_injected += 1;
        }
        if tx.sent == 0 && tx.reinjection {
            if let Some(tr) = &mut self.trace {
                tr.on_reinject_start(cycle, tx.pid);
            }
            if let Some(c) = &mut self.counters {
                c.itb_reinjections += 1;
            }
            if let Some(j) = &mut self.journal {
                j.record(cycle, tx.pid, EventKind::Reinject { host: h as u32 });
            }
        }
        let tx_ref = nic.tx.as_mut().unwrap();
        tx_ref.sent += 1;
        if tx_ref.sent == tx_ref.total {
            if tx_ref.reinjection && pkt.pool_reserved > 0 {
                nic.pool_used -= pkt.pool_reserved;
                pkt.pool_reserved = 0;
            }
            nic.tx = None;
        }
    }

    /// Schedule an explicit message (closed-loop / collective workloads).
    /// Messages at each host must be scheduled with non-decreasing
    /// `at_cycle`; they are injected in order once the cycle is reached.
    pub fn schedule_message(
        &mut self,
        src: regnet_topology::HostId,
        dst: regnet_topology::HostId,
        at_cycle: u64,
    ) {
        assert_ne!(src, dst, "a host cannot message itself through the network");
        let nic = &mut self.nics[src.idx()];
        if let Some(&(last, _)) = nic.scheduled.back() {
            assert!(
                last <= at_cycle,
                "scheduled messages must be time-ordered per host"
            );
        }
        nic.scheduled.push_back((at_cycle, dst.0));
    }

    /// Step until no packet is live or `max_cycles` elapse; returns the
    /// cycle at which the network drained.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Option<u64> {
        let end = self.cycle + max_cycles;
        while self.cycle < end {
            if self.arena.live() == 0 && self.nics.iter().all(|n| n.scheduled.is_empty()) {
                return Some(self.cycle);
            }
            // Not drained yet: a skip cannot change that (nothing executes
            // inside the jumped span), so the drained cycle this returns is
            // identical to the tick-every-cycle schedulers'.
            if self.time_skip {
                self.try_time_skip(end);
                if self.cycle >= end {
                    break;
                }
            }
            self.step();
        }
        None
    }

    /// Create one message from `src` to `dst`: a single packet, or several
    /// when MTU segmentation is configured (each packet routes
    /// independently, so ITB-RR spreads a large message over alternative
    /// paths).
    fn create_message(
        &mut self,
        src: regnet_topology::HostId,
        dst: regnet_topology::HostId,
        gen_cycle: u64,
    ) {
        let payload_total = self.cfg.payload_flits;
        let mtu = self.cfg.mtu_flits.unwrap_or(payload_total).max(1);
        let n_packets = payload_total.div_ceil(mtu);
        let midx = self.msgs.insert(MsgState {
            remaining: n_packets as u16,
            gen_cycle,
            first_inject: u64::MAX,
            itbs: 0,
            failed: false,
        });
        let mut left = payload_total;
        while left > 0 {
            let chunk = left.min(mtu);
            left -= chunk;
            let db = self
                .faults
                .as_ref()
                .and_then(|f| f.routes.as_ref())
                .map(|r| &r.db)
                .unwrap_or(self.db);
            let journey = db.select(self.topo, src, dst, &mut self.selector);
            let pkt = Packet {
                msg: midx,
                journey,
                payload: chunk as u32,
                seg: 0,
                hop: 0,
                inject_cycle: u64::MAX,
                itbs_used: 0,
                pool_reserved: 0,
                retries: 0,
            };
            let pid = self.arena.insert(pkt);
            self.nics[src.idx()].local_queue.push_back(pid);
        }
        if let Some(sc) = self.sched.as_deref_mut() {
            sc.activate_nic(src.0);
        } else if let Some(pe) = self.par.as_deref_mut() {
            let shard = pe.plan.nic_shard(src.idx());
            pe.shards[shard].sched.activate_nic(src.0);
        }
        if self.measure.on {
            self.measure.generated += 1;
        }
        if let Some(c) = &mut self.counters {
            c.messages_generated += 1;
        }
    }

    fn nic_gen(&mut self, h: usize, cycle: u64) {
        if let Some(f) = self.faults.as_deref() {
            // Dead or unreachable hosts generate nothing (their backlog was
            // stranded when they went down).
            if !f.host_ok[h] {
                return;
            }
        }
        // Explicitly scheduled messages first.
        while let Some(&(at, dst)) = self.nics[h].scheduled.front() {
            if at > cycle {
                break;
            }
            self.nics[h].scheduled.pop_front();
            let src = regnet_topology::HostId(h as u32);
            self.create_message(src, regnet_topology::HostId(dst), at);
        }
        loop {
            if self.nics[h].next_gen > cycle as f64 {
                return;
            }
            if self.nics[h].local_queue.len() >= self.cfg.source_queue_cap {
                if self.measure.on {
                    self.measure.gen_stall_cycles += 1;
                }
                return;
            }
            let src = regnet_topology::HostId(h as u32);
            let gen_cycle = self.nics[h].next_gen.max(0.0) as u64;
            let dst = {
                let nic = &mut self.nics[h];
                self.pattern.dest(src, self.topo, &mut nic.rng)
            };
            // Advance the generation clock.
            let step = match self.cfg.generation {
                GenerationProcess::Constant => self.interarrival,
                GenerationProcess::Poisson => {
                    let u: f64 = self.nics[h].rng.gen::<f64>().max(1e-12);
                    -u.ln() * self.interarrival
                }
            };
            self.nics[h].next_gen += step;
            let Some(dst) = dst else {
                // Silent host under a permutation pattern: stop for good.
                self.nics[h].next_gen = f64::MAX;
                return;
            };
            let unreachable = match self.faults.as_deref() {
                Some(f) => {
                    let db = f.routes.as_ref().map(|r| &r.db).unwrap_or(self.db);
                    !f.host_ok[dst.idx()]
                        || !db.has_route(self.topo.host_switch(src), self.topo.host_switch(dst))
                }
                None => false,
            };
            if unreachable {
                // The pair cannot communicate right now: the message is
                // refused at the API (the generation clock still advances).
                self.faults.as_deref_mut().unwrap().rel.unreachable_drops += 1;
                continue;
            }
            self.create_message(src, dst, gen_cycle);
        }
    }

    // ---- Fault machinery (phases 0 and 6). ----

    /// Route a control-wake to whichever scheduler drives the loop: the
    /// sequential active set, or the owner shard's set under the parallel
    /// engine. Fault handling runs on the main thread with the workers
    /// parked, so the shard schedulers are safely reachable.
    fn sched_note_ctl(&mut self, cycle: u64, ci: u32) {
        if let Some(sc) = self.sched.as_deref_mut() {
            sc.note_ctl(cycle, ci);
        } else if let Some(pe) = self.par.as_deref_mut() {
            let owner = pe.ctl_owner[ci as usize] as usize;
            pe.shards[owner].sched.note_ctl(cycle, ci);
        }
    }

    /// Route a timed NIC wake-up (retransmission timer) to the driving
    /// scheduler — under the parallel engine, the shard that owns the NIC.
    fn sched_wake_nic_at(&mut self, due: u64, host: u32) {
        if let Some(sc) = self.sched.as_deref_mut() {
            sc.wake_nic_at(due, host);
        } else if let Some(pe) = self.par.as_deref_mut() {
            let shard = pe.plan.nic_shard(host as usize);
            pe.shards[shard].sched.wake_nic_at(due, host);
        }
    }

    /// Phase 6, faulted runs only: replay this cycle's deferred losses.
    /// The switch and NIC phases never truncate or drop in place — they
    /// record `(component, packet)` pairs — and this phase replays the
    /// records sorted (stably) by component index. Every engine therefore
    /// mutates the packet/message arenas in the same within-cycle order —
    /// deliveries in channel order, then switch truncations in switch
    /// order, then source drops in NIC order, then generation — which is
    /// what keeps free-list reuse, and with it every downstream id, bit-
    /// identical between the sequential engines and the parallel fold.
    fn loss_phase(&mut self, cycle: u64) {
        if !self.pending_sw_loss.is_empty() {
            let mut lost = std::mem::take(&mut self.pending_sw_loss);
            lost.sort_by_key(|&(s, _)| s);
            for (_, pid) in lost.drain(..) {
                self.handle_loss(pid, cycle);
            }
            self.pending_sw_loss = lost;
        }
        if !self.pending_nic_drop.is_empty() {
            let mut dropped = std::mem::take(&mut self.pending_nic_drop);
            dropped.sort_by_key(|&(h, _)| h);
            for (_, pid) in dropped.drain(..) {
                self.drop_packet(pid, cycle);
            }
            self.pending_nic_drop = dropped;
        }
    }

    /// Apply every fault event due at `cycle`, purge the truncated worms,
    /// and drive the pending reconfiguration if one is in flight.
    fn fault_phase(&mut self, cycle: u64) {
        let mut victims: Vec<u32> = Vec::new();
        let mut applied = false;
        loop {
            let f = self.faults.as_deref().unwrap();
            let Some(&ev) = f.events.get(f.next_event) else {
                break;
            };
            if ev.cycle > cycle {
                break;
            }
            self.faults.as_deref_mut().unwrap().next_event += 1;
            self.apply_fault_event(ev, &mut victims);
            applied = true;
        }
        if applied {
            self.sync_channels_to_faults(&mut victims);
            victims.sort_unstable();
            victims.dedup();
            for pid in victims {
                self.handle_loss(pid, cycle);
            }
            if self.faults.as_deref().unwrap().reconfigure {
                // The management process re-maps the network; the new
                // tables take effect after the reconfiguration latency.
                self.faults.as_deref_mut().unwrap().reconfig_due =
                    Some(cycle + self.cfg.reconfig_latency_cycles);
            } else {
                self.refresh_direct_host_ok(cycle);
            }
        }
        match self.faults.as_deref().unwrap().reconfig_due {
            Some(due) if cycle >= due => self.complete_reconfiguration(cycle),
            Some(_) => {
                self.faults
                    .as_deref_mut()
                    .unwrap()
                    .rel
                    .reconfig_stall_cycles += 1
            }
            None => {}
        }
    }

    fn apply_fault_event(&mut self, ev: FaultEvent, victims: &mut Vec<u32>) {
        if let Some(c) = &mut self.counters {
            if ev.fail {
                c.fault_fires += 1;
            } else {
                c.fault_repairs += 1;
            }
        }
        if let Some(j) = &mut self.journal {
            let kind = if ev.fail {
                EventKind::FaultFire { target: ev.target }
            } else {
                EventKind::FaultRepair { target: ev.target }
            };
            j.record(ev.cycle, NO_PACKET, kind);
        }
        let f = self.faults.as_deref_mut().unwrap();
        match (ev.target, ev.fail) {
            (FaultTarget::Link(l), true) => {
                f.active.kill_link(l);
                f.rel.link_failures += 1;
            }
            (FaultTarget::Link(l), false) => {
                f.active.revive_link(l);
                f.rel.repairs += 1;
            }
            (FaultTarget::Switch(s), true) => {
                f.active.kill_switch(s);
                f.rel.switch_failures += 1;
            }
            (FaultTarget::Switch(s), false) => {
                f.active.revive_switch(s);
                f.rel.repairs += 1;
            }
            (FaultTarget::Host(h), true) => {
                f.active.kill_host(h);
                f.rel.host_failures += 1;
                f.host_up[h.idx()] = false;
                f.host_ok[h.idx()] = false;
                self.kill_host_nic(h.idx(), victims);
            }
            (FaultTarget::Host(h), false) => {
                f.active.revive_host(h);
                f.rel.repairs += 1;
                // Powered back on; reachability (and generation restart)
                // is decided when host_ok is next refreshed.
                f.host_up[h.idx()] = true;
            }
        }
    }

    /// A host died: everything its NIC holds is lost, and it generates
    /// nothing until repaired.
    fn kill_host_nic(&mut self, h: usize, victims: &mut Vec<u32>) {
        let nic = &mut self.nics[h];
        nic.next_gen = f64::MAX;
        nic.scheduled.clear();
        nic.stopped = false;
        if let Some(tx) = nic.tx {
            victims.push(tx.pid);
        }
        if let Some(rx) = nic.rx {
            victims.push(rx.pid);
        }
        victims.extend(nic.local_queue.iter().copied());
        victims.extend(nic.reinject.iter().map(|&Reverse((_, pid))| pid));
        victims.extend(nic.retransmit.iter().map(|&Reverse((_, pid))| pid));
    }

    /// Bring every channel's dead/alive state in line with the active fault
    /// set (a dead switch or host implicitly kills its cables), collecting
    /// the packets truncated in the process.
    fn sync_channels_to_faults(&mut self, victims: &mut Vec<u32>) {
        for i in 0..self.topo.num_links() {
            let lid = self.topo.links()[i].id;
            let alive = self
                .faults
                .as_deref()
                .unwrap()
                .active
                .is_link_alive(self.topo, lid);
            let pair = self.link_chans[i];
            for ci in pair {
                let ci = ci as usize;
                if !alive && !self.channels[ci].is_dead() {
                    let mut v = self.fail_channel(ci);
                    victims.append(&mut v);
                } else if alive && self.channels[ci].is_dead() {
                    self.repair_channel(ci);
                }
            }
        }
        // Packets resident in a freshly dead switch's buffers die with it.
        for s in 0..self.switches.len() {
            if self
                .faults
                .as_deref()
                .unwrap()
                .active
                .is_switch_alive(SwitchId(s as u32))
            {
                continue;
            }
            for inp in self.switches[s].inp.iter().flatten() {
                victims.extend(inp.queue.iter().map(|q| q.pid));
            }
        }
    }

    /// Kill one directed channel: flits in flight are destroyed, and the
    /// worms cut at either end of the cable are victims too.
    fn fail_channel(&mut self, ci: usize) -> Vec<u32> {
        let mut victims = self.channels[ci].fail();
        match self.channels[ci].receiver {
            Receiver::SwitchIn { sw, port } => {
                // A partially received packet can never get its tail.
                if let Some(inp) = self.switches[sw as usize].inp[port as usize].as_ref() {
                    if let Some(back) = inp.queue.back() {
                        if back.received < back.expected {
                            victims.push(back.pid);
                        }
                    }
                }
            }
            Receiver::Nic { host } => {
                if let Some(rx) = self.nics[host as usize].rx {
                    victims.push(rx.pid);
                }
            }
        }
        match self.channels[ci].sender {
            Sender::SwitchOut { sw, port } => {
                // Any head routed towards this output loses its worm: flits
                // already sent are gone and the remainder can never follow.
                for inp in self.switches[sw as usize].inp.iter().flatten() {
                    if inp.head != HeadState::Idle && inp.head_out == port {
                        if let Some(head) = inp.queue.front() {
                            victims.push(head.pid);
                        }
                    }
                }
            }
            Sender::Nic { host } => {
                if let Some(tx) = self.nics[host as usize].tx {
                    victims.push(tx.pid);
                }
            }
        }
        victims
    }

    /// Bring a repaired channel back and re-sync the sender's stop/go flag
    /// with the receiver's current state (control symbols in flight died
    /// with the cable; without the re-sync a stale STOP wedges the link).
    fn repair_channel(&mut self, ci: usize) {
        self.channels[ci].repair();
        let stopped = match self.channels[ci].receiver {
            Receiver::SwitchIn { sw, port } => self.switches[sw as usize].inp[port as usize]
                .as_ref()
                .map(|p| p.stop_sent)
                .unwrap_or(false),
            Receiver::Nic { .. } => false,
        };
        match self.channels[ci].sender {
            Sender::SwitchOut { sw, port } => {
                if let Some(o) = self.switches[sw as usize].outp[port as usize].as_mut() {
                    o.stopped = stopped;
                }
            }
            Sender::Nic { host } => self.nics[host as usize].stopped = stopped,
        }
    }

    /// Recompute host_ok straight from the fault set (no mapper): a host is
    /// ok iff it is powered on and its own access path is alive. Used when
    /// reconfiguration is disabled or failed.
    fn refresh_direct_host_ok(&mut self, cycle: u64) {
        let new_ok: Vec<bool> = {
            let f = self.faults.as_deref().unwrap();
            self.topo
                .hosts()
                .map(|h| f.host_up[h.idx()] && f.active.is_host_alive(self.topo, h))
                .collect()
        };
        self.apply_host_ok(new_ok, cycle);
    }

    /// Install a new host_ok vector, reacting to the edges: a host coming
    /// back restarts its generator; a host dropping out strands the traffic
    /// queued at its NIC.
    fn apply_host_ok(&mut self, new_ok: Vec<bool>, cycle: u64) {
        let n = new_ok.len();
        for (h, &ok) in new_ok.iter().enumerate() {
            let old = self.faults.as_deref().unwrap().host_ok[h];
            if old == ok {
                continue;
            }
            self.faults.as_deref_mut().unwrap().host_ok[h] = ok;
            if ok {
                self.restart_generation(h, cycle);
            } else {
                self.strand_host_traffic(h, cycle);
            }
        }
        let f = self.faults.as_deref_mut().unwrap();
        let live = f.host_ok.iter().filter(|&&ok| ok).count() as u64;
        let total = n as u64;
        f.rel.unreachable_pairs = total * (total - 1) - live * (live - 1);
    }

    /// A repaired (or re-connected) host resumes generating with a fresh
    /// random phase — no burst to catch up on the downtime.
    fn restart_generation(&mut self, h: usize, cycle: u64) {
        if self.gen_frozen || !self.pattern.host_generates(HostId(h as u32)) {
            return;
        }
        let nic = &mut self.nics[h];
        nic.next_gen = cycle as f64 + nic.rng.gen::<f64>() * self.interarrival;
    }

    /// A host became unreachable (but may still be powered on): everything
    /// queued at its NIC can no longer leave; treat it as lost so sources
    /// elsewhere can retransmit and the network still drains.
    fn strand_host_traffic(&mut self, h: usize, cycle: u64) {
        let mut victims: Vec<u32> = Vec::new();
        let nic = &self.nics[h];
        if let Some(tx) = nic.tx {
            victims.push(tx.pid);
        }
        victims.extend(nic.local_queue.iter().copied());
        victims.extend(nic.reinject.iter().map(|&Reverse((_, pid))| pid));
        victims.extend(nic.retransmit.iter().map(|&Reverse((_, pid))| pid));
        victims.sort_unstable();
        victims.dedup();
        for pid in victims {
            self.handle_loss(pid, cycle);
        }
    }

    /// The reconfiguration latency elapsed: run the mapper on the surviving
    /// network and swap the rebuilt tables in atomically.
    fn complete_reconfiguration(&mut self, cycle: u64) {
        let scheme = self.db.scheme();
        let (seed_host, db_cfg) = {
            let f = self.faults.as_deref_mut().unwrap();
            f.reconfig_due = None;
            (f.seed_host, f.db_cfg.clone())
        };
        let rebuilt = {
            let f = self.faults.as_deref().unwrap();
            let seed = if f.host_up[seed_host.idx()] && f.active.is_host_alive(self.topo, seed_host)
            {
                Some(seed_host)
            } else {
                // The management host itself is down: the lowest-numbered
                // live host takes over.
                self.topo
                    .hosts()
                    .find(|&h| f.host_up[h.idx()] && f.active.is_host_alive(self.topo, h))
            };
            seed.and_then(|s| {
                rebuild_physical_routes(self.topo, &f.active, s, scheme, &db_cfg).ok()
            })
        };
        match rebuilt {
            Some(pr) => {
                let new_ok: Vec<bool> = {
                    let f = self.faults.as_deref().unwrap();
                    (0..self.topo.num_hosts())
                        .map(|h| f.host_up[h] && pr.reachable_hosts[h])
                        .collect()
                };
                let f = self.faults.as_deref_mut().unwrap();
                f.rel.reconfigurations += 1;
                f.routes = Some(pr);
                self.apply_host_ok(new_ok, cycle);
            }
            None => {
                self.faults.as_deref_mut().unwrap().rel.reconfig_failures += 1;
                self.refresh_direct_host_ok(cycle);
            }
        }
    }

    /// A packet's worm was truncated somewhere: purge every remaining trace
    /// of it, then either queue a source retransmission or drop it for good.
    fn handle_loss(&mut self, pid: u32, cycle: u64) {
        self.purge_packet(pid, cycle);
        self.faults.as_deref_mut().unwrap().rel.worms_truncated += 1;
        let (src, retries) = {
            let p = self.arena.get(pid);
            (p.journey.src, p.retries)
        };
        let can_retry = self.cfg.nic_retransmission
            && retries < self.cfg.max_retransmits
            && self.faults.as_deref().unwrap().host_ok[src.idx()];
        if can_retry {
            let pkt = self.arena.get_mut(pid);
            pkt.retries += 1;
            pkt.seg = 0;
            pkt.hop = 0;
            pkt.itbs_used = 0;
            pkt.inject_cycle = u64::MAX;
            let due = cycle + self.cfg.retransmit_timeout_cycles;
            self.nics[src.idx()].retransmit.push(Reverse((due, pid)));
            self.sched_wake_nic_at(due, src.0);
            self.faults.as_deref_mut().unwrap().rel.retransmissions += 1;
            if let Some(c) = &mut self.counters {
                c.retransmits += 1;
            }
            if let Some(j) = &mut self.journal {
                j.record(cycle, pid, EventKind::Retransmit { src: src.0 });
            }
        } else {
            self.drop_packet(pid, cycle);
        }
    }

    /// Give up on a packet: its message can never complete.
    fn drop_packet(&mut self, pid: u32, cycle: u64) {
        if let Some(c) = &mut self.counters {
            c.packets_dropped += 1;
        }
        if let Some(j) = &mut self.journal {
            j.record(cycle, pid, EventKind::Drop);
        }
        let pkt = self.arena.remove(pid);
        let ms = self.msgs.get_mut(pkt.msg);
        ms.remaining -= 1;
        ms.failed = true;
        let done = ms.remaining == 0;
        if done {
            self.msgs.remove(pkt.msg);
        }
        let f = self.faults.as_deref_mut().unwrap();
        f.rel.dropped_packets += 1;
        if done {
            f.rel.dropped_messages += 1;
        }
    }

    /// Remove every trace of `pid` from the fabric — channels, switch input
    /// buffers (with flow-control accounting), crossbar connections and NIC
    /// queues — leaving the packet itself in the arena for the caller.
    fn purge_packet(&mut self, pid: u32, cycle: u64) {
        for ch in &mut self.channels {
            ch.purge(pid);
        }
        for s in 0..self.switches.len() {
            let nports = self.switches[s].active_ports.len();
            for k in 0..nports {
                let p = self.switches[s].active_ports[k] as usize;
                let Some(inp) = self.switches[s].inp[p].as_mut() else {
                    continue;
                };
                let Some(pos) = inp.queue.iter().position(|q| q.pid == pid) else {
                    continue;
                };
                let entry = inp.queue.remove(pos).unwrap();
                let flits = entry.available() as u16;
                let mut clear_out: Option<u8> = None;
                if pos == 0 && inp.head != HeadState::Idle {
                    if inp.head == HeadState::Granted {
                        clear_out = Some(inp.head_out);
                    }
                    inp.head = HeadState::Idle;
                }
                let ctl = if flits > 0 {
                    inp.on_flits_purged(flits, &self.cfg)
                } else {
                    None
                };
                let in_chan = inp.in_chan;
                if let Some(sym) = ctl {
                    // The purge can run in phase 0, before this cycle's
                    // control arrivals were taken; discard any symbol
                    // arriving right now explicitly (the scan loop used to
                    // overwrite it in place) so `send_ctl`'s call-order
                    // check holds.
                    let ch = &mut self.channels[in_chan as usize];
                    let _ = ch.take_ctl_arrival(cycle);
                    ch.send_ctl(cycle, sym);
                    self.sched_note_ctl(cycle, in_chan);
                }
                if let Some(po) = clear_out {
                    if let Some(o) = self.switches[s].outp[po as usize].as_mut() {
                        if o.conn_in == Some(p as u8) {
                            o.conn_in = None;
                        }
                    }
                }
            }
        }
        for h in 0..self.nics.len() {
            let mut release = false;
            {
                let nic = &mut self.nics[h];
                if let Some(tx) = nic.tx {
                    if tx.pid == pid {
                        release = tx.reinjection;
                        nic.tx = None;
                    }
                }
                if let Some(rx) = nic.rx {
                    if rx.pid == pid {
                        nic.rx = None;
                    }
                }
                nic.local_queue.retain(|&q| q != pid);
                if nic.reinject.iter().any(|&Reverse((_, q))| q == pid) {
                    release = true;
                    let kept: Vec<_> = nic
                        .reinject
                        .drain()
                        .filter(|&Reverse((_, q))| q != pid)
                        .collect();
                    nic.reinject = kept.into_iter().collect();
                }
                if nic.retransmit.iter().any(|&Reverse((_, q))| q == pid) {
                    let kept: Vec<_> = nic
                        .retransmit
                        .drain()
                        .filter(|&Reverse((_, q))| q != pid)
                        .collect();
                    nic.retransmit = kept.into_iter().collect();
                }
            }
            if release {
                // The packet held in-transit pool space at this NIC.
                let pkt = self.arena.get_mut(pid);
                if pkt.pool_reserved > 0 {
                    self.nics[h].pool_used =
                        self.nics[h].pool_used.saturating_sub(pkt.pool_reserved);
                    pkt.pool_reserved = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
    use regnet_topology::{gen, SwitchId, TopologyBuilder};
    use regnet_traffic::PatternSpec;

    fn small_cfg() -> SimConfig {
        SimConfig {
            payload_flits: 64,
            ..SimConfig::default()
        }
    }

    fn build_ring4() -> Topology {
        let mut b = TopologyBuilder::new("ring4", 6);
        b.add_switches(4);
        for i in 0..4u32 {
            b.connect(SwitchId(i), SwitchId((i + 1) % 4)).unwrap();
        }
        b.attach_hosts_everywhere(2).unwrap();
        b.build().unwrap()
    }

    fn run_once(
        topo: &Topology,
        scheme: RoutingScheme,
        offered: f64,
        cfg: SimConfig,
        warmup: u64,
        window: u64,
    ) -> RunStats {
        let db = RouteDb::build(topo, scheme, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, topo).unwrap();
        let mut sim = Simulator::new(topo, &db, &pattern, cfg, offered, 42);
        sim.run(warmup);
        sim.begin_measurement();
        sim.run(window);
        sim.end_measurement(window)
    }

    #[test]
    fn zero_load_latency_matches_hand_calculation() {
        // One message, one switch hop: check first-order timing. Build a
        // 2-switch line, 1 host each.
        let mut b = TopologyBuilder::new("line2", 4);
        b.add_switches(2);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        let topo = b.build().unwrap();
        let cfg = small_cfg();
        let stats = run_once(
            &topo,
            RoutingScheme::UpDown,
            0.0005,
            cfg.clone(),
            0,
            400_000,
        );
        assert!(stats.delivered > 0, "no messages delivered");
        // Expected network latency for 2 switch hops (src switch + dst
        // switch), wire = 2 ports + type + 64 payload = 67 flits:
        //   2 cable crossings host->sw0->sw1 is 3 cables = 3*8 cycles,
        //   2 routing delays = 48, tail streaming = 67 cycles,
        //   minus pipelining overlaps... rough band check:
        let lat_cycles = stats.avg_latency_ns / CYCLE_NS;
        assert!(
            (100.0..200.0).contains(&lat_cycles),
            "unexpected zero-load latency: {lat_cycles} cycles"
        );
        // No ITBs under up*/down*.
        assert_eq!(stats.avg_itbs_per_msg, 0.0);
        assert_eq!(stats.itb_overflows, 0);
    }

    #[test]
    fn conservation_all_generated_eventually_delivered() {
        let topo = build_ring4();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = small_cfg();
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 0.01, 7);
        sim.begin_measurement();
        sim.run(50_000);
        // Freeze generation and drain.
        for nic in &mut sim.nics {
            nic.next_gen = f64::MAX;
        }
        let mut guard = 0;
        while sim.packets_in_flight() > 0 {
            sim.run(1_000);
            guard += 1;
            assert!(guard < 1_000, "network failed to drain");
        }
        let stats = sim.end_measurement(50_000);
        assert!(stats.generated > 0);
        assert_eq!(
            stats.delivered, stats.generated,
            "every generated packet must be delivered"
        );
    }

    #[test]
    fn itb_packets_take_itb_hops_on_ring() {
        // On a ring with root 0, many minimal paths need an ITB.
        let topo = build_ring4();
        let stats = run_once(
            &topo,
            RoutingScheme::ItbRr,
            0.005,
            small_cfg(),
            5_000,
            100_000,
        );
        assert!(stats.delivered > 100);
        assert!(
            stats.avg_itbs_per_msg > 0.05,
            "expected some in-transit hops, got {}",
            stats.avg_itbs_per_msg
        );
    }

    #[test]
    fn updown_never_uses_itbs() {
        let topo = build_ring4();
        let stats = run_once(
            &topo,
            RoutingScheme::UpDown,
            0.005,
            small_cfg(),
            5_000,
            100_000,
        );
        assert!(stats.delivered > 100);
        assert_eq!(stats.avg_itbs_per_msg, 0.0);
    }

    #[test]
    fn accepted_tracks_offered_below_saturation() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let offered = 0.004;
        let stats = run_once(
            &topo,
            RoutingScheme::UpDown,
            offered,
            small_cfg(),
            20_000,
            200_000,
        );
        let accepted = stats.accepted_flits_per_ns_per_switch(16);
        assert!(
            (accepted - offered).abs() / offered < 0.08,
            "accepted {accepted} vs offered {offered}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = build_ring4();
        let a = run_once(
            &topo,
            RoutingScheme::ItbSp,
            0.01,
            small_cfg(),
            2_000,
            30_000,
        );
        let b = run_once(
            &topo,
            RoutingScheme::ItbSp,
            0.01,
            small_cfg(),
            2_000,
            30_000,
        );
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
        assert_eq!(a.channel_busy, b.channel_busy);
    }

    #[test]
    fn channel_busy_reported_per_channel() {
        let topo = build_ring4();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut sim = Simulator::new(&topo, &db, &pattern, small_cfg(), 0.01, 1);
        let descs = sim.channel_descriptors();
        assert_eq!(descs.len(), topo.num_links() * 2);
        // Ring: 4 switch links * 2 directions are switch links.
        assert_eq!(descs.iter().filter(|d| d.switch_link).count(), 8);
        sim.begin_measurement();
        sim.run(50_000);
        let stats = sim.end_measurement(50_000);
        assert_eq!(stats.channel_busy.len(), descs.len());
        assert!(stats.channel_busy.iter().any(|&b| b > 0));
    }

    #[test]
    fn saturation_throughput_is_bounded() {
        // Offered load way beyond capacity: accepted must plateau and the
        // simulator must stay live (no deadlock, watchdog silent).
        let topo = build_ring4();
        let stats = run_once(
            &topo,
            RoutingScheme::ItbRr,
            0.5,
            small_cfg(),
            20_000,
            100_000,
        );
        let accepted = stats.accepted_flits_per_ns_per_switch(4);
        assert!(accepted > 0.0);
        assert!(accepted < 0.5, "accepted {accepted} cannot exceed capacity");
        assert!(stats.gen_stall_cycles > 0, "sources should be backlogged");
    }

    #[test]
    fn poisson_generation_works() {
        let topo = build_ring4();
        let cfg = SimConfig {
            generation: GenerationProcess::Poisson,
            ..small_cfg()
        };
        let stats = run_once(&topo, RoutingScheme::ItbRr, 0.01, cfg, 5_000, 50_000);
        assert!(stats.delivered > 50);
    }

    #[test]
    fn seeded_cyclic_routes_classified_as_deadlock_with_named_cycle() {
        use crate::wfg::StallClass;
        use regnet_core::{JourneyTemplate, Segment, SegmentEnd};
        use regnet_topology::Port;

        let topo = build_ring4();
        // Deliberately illegal route set: every packet from switch a to
        // switch b walks clockwise a -> a+1 -> ... -> b around the ring, so
        // the channel dependency graph contains the cycle
        // s0->s1 => s1->s2 => s2->s3 => s3->s0 (what up*/down* ordering or
        // ITB splitting would normally forbid).
        let n = 4usize;
        let mut templates = Vec::with_capacity(n * n);
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let hops = ((b + 4 - a) % 4) as usize;
                let switches: Vec<SwitchId> =
                    (0..=hops).map(|k| SwitchId((a + k as u32) % 4)).collect();
                let ports: Vec<Port> = switches
                    .windows(2)
                    .map(|w| topo.port_to(w[0], w[1]).unwrap())
                    .collect();
                templates.push(vec![JourneyTemplate {
                    segments: vec![Segment {
                        switches,
                        ports,
                        end: SegmentEnd::Deliver,
                    }],
                }]);
            }
        }
        let db = RouteDb::from_templates(RoutingScheme::UpDown, n, topo.num_hosts(), templates);
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut sim = Simulator::new(&topo, &db, &pattern, SimConfig::default(), 0.0001, 1);
        sim.stop_generation();
        // One 512-flit message per switch, each two clockwise hops: every
        // packet holds its first ring channel while its head waits for the
        // next one, which the next packet holds — a true cyclic deadlock.
        for i in 0..4u32 {
            let src = topo.hosts_of(SwitchId(i))[0];
            let dst = topo.hosts_of(SwitchId((i + 2) % 4))[0];
            sim.schedule_message(src, dst, 0);
        }
        sim.run(30_000);
        let report = sim.analyze_stall();
        assert!(
            report.is_deadlock(),
            "expected deadlock, got: {}",
            report.summary
        );
        match &report.class {
            StallClass::Deadlock { cycle } => {
                assert_eq!(cycle.len(), 4, "ring cycle has 4 channels: {cycle:?}");
            }
            c => panic!("expected Deadlock, got {c:?}"),
        }
        // The summary names the cycle's channels for the operator.
        assert!(report.summary.contains("DEADLOCK"), "{}", report.summary);
        assert!(report.summary.contains("S0->S1"), "{}", report.summary);
        assert!(report.summary.contains("=>"), "{}", report.summary);
    }

    #[test]
    fn legal_routes_never_classified_as_deadlock() {
        use crate::wfg::StallClass;

        let topo = build_ring4();
        for scheme in [
            RoutingScheme::UpDown,
            RoutingScheme::ItbSp,
            RoutingScheme::ItbRr,
        ] {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
            // Far past saturation: heavy blocking, but legal routes cannot
            // produce a cyclic channel dependency.
            let mut sim = Simulator::new(&topo, &db, &pattern, small_cfg(), 0.5, 3);
            sim.run(30_000);
            let mid = sim.analyze_stall();
            assert!(
                matches!(mid.class, StallClass::Active),
                "{scheme:?} mid-run: {}",
                mid.summary
            );
            sim.stop_generation();
            assert!(
                sim.run_until_drained(5_000_000).is_some(),
                "{scheme:?} failed to drain:\n{}",
                sim.dump_state()
            );
            let idle = sim.analyze_stall();
            assert!(
                matches!(idle.class, StallClass::Idle),
                "{scheme:?} drained: {}",
                idle.summary
            );
        }
    }

    #[test]
    fn watchdog_tolerates_long_stop_go_exchanges() {
        use crate::channel::{CTL_GO, CTL_STOP};
        use regnet_topology::HostId;

        // Regression: control-symbol arrivals must count as watchdog
        // activity. A worm held by STOP for longer than `watchdog_cycles`
        // is a flow-controlled network, not a stall; before the fix the
        // watchdog panicked here once the in-flight data drained.
        let mut b = TopologyBuilder::new("line2", 4);
        b.add_switches(2);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        let topo = b.build().unwrap();
        let cfg = SimConfig {
            payload_flits: 4_000,
            watchdog_cycles: 200,
            ..SimConfig::default()
        };
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 1e-9, 1);
        sim.stop_generation();
        sim.begin_measurement();
        sim.schedule_message(HostId(0), HostId(1), 0);

        // Let the worm start streaming.
        let mut guard = 0;
        while sim.nics[0].tx.is_none() {
            sim.step();
            guard += 1;
            assert!(guard < 1_000, "worm never started");
        }
        sim.run(30);

        // Impersonate the downstream switch: one STOP per cycle holds the
        // source NIC for 1_000 cycles — five watchdog windows. The flits
        // already in flight drain within a few dozen cycles; from then on
        // the STOP stream is the only activity in the network.
        let stop_chan = sim.nics[0].out_chan as usize;
        for _ in 0..1_000 {
            let c = sim.cycle;
            sim.step();
            sim.channels[stop_chan].send_ctl(c, CTL_STOP);
        }
        assert!(sim.nics[0].stopped, "STOP stream should hold the NIC");
        assert!(
            sim.nics[0].tx.is_some(),
            "the worm must still be mid-transmission"
        );
        assert_eq!(sim.packets_in_flight(), 1);

        // Release the worm and check it completes.
        let c = sim.cycle;
        sim.step();
        sim.channels[stop_chan].send_ctl(c, CTL_GO);
        assert!(
            sim.run_until_drained(100_000).is_some(),
            "worm failed to finish after GO:\n{}",
            sim.dump_state()
        );
        let window = sim.cycle;
        let stats = sim.end_measurement(window);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn scan_and_active_set_schedulers_agree() {
        let topo = build_ring4();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let run = |scheduler: Scheduler| {
            let mut sim = Simulator::new(&topo, &db, &pattern, small_cfg(), 0.01, 11);
            sim.set_scheduler(scheduler);
            sim.run(2_000);
            sim.begin_measurement();
            sim.run(30_000);
            sim.end_measurement(30_000)
        };
        let scan = run(Scheduler::Scan);
        let active = run(Scheduler::ActiveSet);
        assert_eq!(scan, active, "schedulers must be bit-identical");
    }
}
