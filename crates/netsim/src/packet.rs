//! Packet state and the packet arena.

use regnet_core::Journey;

/// Sentinel for "no packet".
pub const NO_PACKET: u32 = u32::MAX;

/// A message in flight. One message = one packet (the paper's messages are
/// single packets of 32–1024 bytes).
#[derive(Debug)]
pub struct Packet {
    pub journey: Journey,
    /// Message this packet belongs to (index into the simulator's message
    /// table). Multiple packets share a message when segmentation is on.
    pub msg: u32,
    /// Payload flits.
    pub payload: u32,
    /// Current segment of the journey.
    pub seg: u8,
    /// Port bytes of the current segment already consumed by switches.
    pub hop: u8,
    /// Cycle the first flit entered the network at the source NIC.
    /// (`u64::MAX` until injection; generation time lives on the message.)
    pub inject_cycle: u64,
    /// In-transit buffers visited so far.
    pub itbs_used: u8,
    /// Flits reserved in the in-transit pool of the NIC currently holding
    /// this packet (0 when it overflowed to host memory).
    pub pool_reserved: u32,
    /// Source retransmissions performed for this packet so far.
    pub retries: u32,
}

impl Packet {
    /// Wire length (flits) of this packet at the start of its current
    /// segment.
    pub fn wire_len_current_segment(&self) -> u32 {
        self.journey
            .wire_len_entering_segment(self.seg as usize, self.payload as usize) as u32
    }

    /// Flits that will arrive at the receiver the packet is currently
    /// heading into, given `hop` port bytes of the segment were consumed.
    pub fn expected_at_next_receiver(&self) -> u32 {
        self.wire_len_current_segment() - self.hop as u32
    }

    /// The output port the current switch must use, advancing the cursor.
    pub fn consume_port_byte(&mut self) -> u8 {
        let seg = &self.journey.segments[self.seg as usize];
        let p = seg.ports[self.hop as usize];
        self.hop += 1;
        p.0
    }

    /// Is the packet on its final segment?
    pub fn on_final_segment(&self) -> bool {
        self.seg as usize == self.journey.segments.len() - 1
    }
}

/// Raw-pointer projections of the accessors above, for the shard-parallel
/// engine (`crate::par`).
///
/// During one region of a parallel cycle, two shards can touch the *same*
/// packet concurrently — but always through disjoint fields (e.g. a
/// downstream switch advancing `hop` while the upstream NIC reads
/// `pool_reserved`; `journey` is never rewritten while a packet is in
/// flight on the fault-free parallel path). These helpers therefore never
/// materialize a `&mut Packet`: every access goes through a field place
/// expression on the raw pointer, so the references that do get created
/// (e.g. into `journey`'s vectors) cover only the field actually read.
/// Keep them in lockstep with the safe methods above.
pub(crate) mod raw {
    use super::Packet;

    /// Mirror of [`Packet::wire_len_current_segment`].
    #[inline]
    pub(crate) unsafe fn wire_len_current_segment(p: *const Packet) -> u32 {
        let journey = &(*p).journey;
        journey.wire_len_entering_segment((*p).seg as usize, (*p).payload as usize) as u32
    }

    /// Mirror of [`Packet::expected_at_next_receiver`].
    #[inline]
    pub(crate) unsafe fn expected_at_next_receiver(p: *const Packet) -> u32 {
        wire_len_current_segment(p) - (*p).hop as u32
    }

    /// Mirror of [`Packet::consume_port_byte`].
    #[inline]
    pub(crate) unsafe fn consume_port_byte(p: *mut Packet) -> u8 {
        let out = (&(*p).journey.segments)[(*p).seg as usize].ports[(*p).hop as usize].0;
        (*p).hop += 1;
        out
    }
}

/// A simple slab arena for packets: stable u32 ids, O(1) alloc/free.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    pub fn insert(&mut self, p: Packet) -> u32 {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.slots[id as usize] = Some(p);
            id
        } else {
            self.slots.push(Some(p));
            (self.slots.len() - 1) as u32
        }
    }

    pub fn remove(&mut self, id: u32) -> Packet {
        let p = self.slots[id as usize].take().expect("double free");
        self.live -= 1;
        self.free.push(id);
        p
    }

    #[inline]
    pub fn get(&self, id: u32) -> &Packet {
        self.slots[id as usize].as_ref().expect("stale packet id")
    }

    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut Packet {
        self.slots[id as usize].as_mut().expect("stale packet id")
    }

    /// Packets currently alive.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Base pointer of the slot array, for the shard-parallel engine.
    /// Workers only read/write packets that already exist (`insert`/`remove`
    /// stay on the main thread), so the `Vec` itself never reallocates
    /// while the pointer is in use.
    pub(crate) fn raw_slots(&mut self) -> *mut Option<Packet> {
        self.slots.as_mut_ptr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_core::{Segment, SegmentEnd};
    use regnet_topology::{HostId, Port, SwitchId};

    fn packet() -> Packet {
        Packet {
            msg: 0,
            journey: Journey {
                src: HostId(0),
                dst: HostId(9),
                segments: vec![
                    Segment {
                        switches: vec![SwitchId(0), SwitchId(1)],
                        ports: vec![Port(1), Port(9)],
                        end: SegmentEnd::Itb(HostId(4)),
                    },
                    Segment {
                        switches: vec![SwitchId(1), SwitchId(2)],
                        ports: vec![Port(0), Port(8)],
                        end: SegmentEnd::Deliver,
                    },
                ],
            },
            payload: 64,
            seg: 0,
            hop: 0,
            inject_cycle: 0,
            itbs_used: 0,
            pool_reserved: 0,
            retries: 0,
        }
    }

    #[test]
    fn wire_accounting_follows_hops() {
        let mut p = packet();
        // Header: 4 ports + 1 mark + 1 type = 6; wire = 70.
        assert_eq!(p.wire_len_current_segment(), 70);
        assert_eq!(p.expected_at_next_receiver(), 70);
        assert_eq!(p.consume_port_byte(), 1);
        assert_eq!(p.expected_at_next_receiver(), 69);
        assert_eq!(p.consume_port_byte(), 9);
        // Arriving at the ITB host: 68 flits (mark + seg1 header + type + payload).
        assert_eq!(p.expected_at_next_receiver(), 68);
        assert!(!p.on_final_segment());
        // The ITB strips the mark and the packet enters segment 1.
        p.seg = 1;
        p.hop = 0;
        assert_eq!(p.wire_len_current_segment(), 67);
        assert!(p.on_final_segment());
    }

    #[test]
    fn arena_reuses_slots() {
        let mut a = PacketArena::new();
        let id0 = a.insert(packet());
        let id1 = a.insert(packet());
        assert_eq!(a.live(), 2);
        assert_ne!(id0, id1);
        a.remove(id0);
        assert_eq!(a.live(), 1);
        let id2 = a.insert(packet());
        assert_eq!(id2, id0, "slot should be reused");
        assert_eq!(a.get(id2).payload, 64);
        a.get_mut(id1).payload = 100;
        assert_eq!(a.get(id1).payload, 100);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_catches_double_free() {
        let mut a = PacketArena::new();
        let id = a.insert(packet());
        a.remove(id);
        a.remove(id);
    }
}
