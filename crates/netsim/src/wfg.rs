//! Wait-for-graph stall analysis.
//!
//! When the watchdog suspects a stall (no flit movement for a long time
//! with packets still live), a bare panic says nothing about *why*. This
//! module builds the channel wait-for graph and classifies the situation:
//!
//! - **nodes** are directed channels (the simulator's channel indices);
//! - there is an **edge** `in_chan → out_chan` whenever the packet at the
//!   head of a switch input buffer (fed by `in_chan`) has been routed and
//!   is requesting — or granted but unable to stream towards — the output
//!   port driving `out_chan`.
//!
//! A switch↔switch channel is simultaneously the *output* channel of one
//! switch and the *input* channel of the next, so edges chain naturally
//! across switches. Each input buffer head waits for at most one output,
//! which makes the graph functional (out-degree ≤ 1): every weakly
//! connected component contains at most one cycle, found by walking
//! successors. Channels that sink into a NIC never have outgoing edges —
//! NICs eject unconditionally (that is the in-transit-buffer guarantee
//! breaking cyclic dependencies), so a dependency chain ending at a host
//! always drains.
//!
//! A cycle alone is *not* proof of deadlock: under heavy load the stop&go
//! back-pressure routinely forms transient cyclic waits that resolve as
//! buffers drain. Classification therefore also requires quiescence — no
//! flit moved anywhere for longer than the worst-case forward-progress
//! bound (`quiescence_threshold`) — before reporting [`StallClass::Deadlock`].

use serde::{Deserialize, Serialize};

use regnet_topology::NodeId;

use crate::sim::ChannelDesc;
use crate::switch::{HeadState, SwitchState};

/// One wait-for dependency: the head packet of the input buffer fed by
/// `from_chan` needs the output port driving `to_chan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitEdge {
    pub sw: u32,
    pub in_port: u8,
    pub out_port: u8,
    pub from_chan: u32,
    pub to_chan: u32,
    /// Head already holds the crossbar connection (true) or is still
    /// arbitrating for it (false).
    pub granted: bool,
    /// The output port is currently held in STOP by its downstream
    /// receiver.
    pub out_stopped: bool,
}

/// What a stalled (or not) network looks like.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallClass {
    /// No live packets: nothing to diagnose.
    Idle,
    /// Flits moved recently; any wait cycles are transient back-pressure.
    Active,
    /// Quiescent with a cyclic channel dependency: a true deadlock. The
    /// channels forming the cycle, in dependency order.
    Deadlock { cycle: Vec<u32> },
    /// Quiescent with live packets but *no* cyclic dependency: progress is
    /// blocked on something that never wakes up (livelock/starvation —
    /// e.g. a packet parked forever behind flow control that never
    /// releases, or an event the engine failed to schedule).
    Starvation,
}

/// Full stall diagnosis, produced by `Simulator::analyze_stall`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    pub class: StallClass,
    pub live_packets: usize,
    /// Cycles since the last flit movement.
    pub quiescent_cycles: u64,
    /// Quiescence bound used for classification.
    pub threshold: u64,
    /// Every wait-for dependency present at analysis time.
    pub edges: Vec<WaitEdge>,
    /// Human-readable rendering (channel endpoints resolved to node names).
    pub summary: String,
}

impl StallReport {
    /// Is this a confirmed cyclic-dependency deadlock?
    pub fn is_deadlock(&self) -> bool {
        matches!(self.class, StallClass::Deadlock { .. })
    }
}

/// Collect the wait-for edges from the current switch state.
pub(crate) fn build_wait_edges(switches: &[SwitchState]) -> Vec<WaitEdge> {
    let mut edges = Vec::new();
    for (s, sw) in switches.iter().enumerate() {
        for &p in &sw.active_ports {
            let inp = sw.inp[p as usize].as_ref().unwrap();
            let granted = match inp.head {
                HeadState::Requesting => false,
                HeadState::Granted => true,
                HeadState::Idle | HeadState::Routing { .. } => continue,
            };
            let out = inp.head_out as usize;
            let Some(outp) = sw.outp.get(out).and_then(|o| o.as_ref()) else {
                // A corrupt route requested a nonexistent port; nothing to
                // wait for, and the arbitration loop will never grant it.
                continue;
            };
            edges.push(WaitEdge {
                sw: s as u32,
                in_port: p,
                out_port: out as u8,
                from_chan: inp.in_chan,
                to_chan: outp.out_chan,
                granted,
                out_stopped: outp.stopped,
            });
        }
    }
    edges
}

/// Find a cycle in the (functional) wait-for graph; returns the channel
/// indices along the cycle in dependency order.
pub(crate) fn find_cycle(edges: &[WaitEdge]) -> Option<Vec<u32>> {
    use std::collections::HashMap;
    let succ: HashMap<u32, u32> = edges.iter().map(|e| (e.from_chan, e.to_chan)).collect();
    // 0 = unvisited, 1 = on current walk, 2 = finished.
    let mut color: HashMap<u32, u8> = HashMap::new();
    let mut starts: Vec<u32> = succ.keys().copied().collect();
    starts.sort_unstable(); // deterministic reporting
    for &start in &starts {
        if color.get(&start).copied().unwrap_or(0) != 0 {
            continue;
        }
        let mut path = Vec::new();
        let mut node = start;
        loop {
            match color.get(&node).copied().unwrap_or(0) {
                1 => {
                    // Found a node already on this walk: the cycle is the
                    // path suffix starting at it.
                    let pos = path.iter().position(|&n| n == node).unwrap();
                    return Some(path[pos..].to_vec());
                }
                2 => break, // joins an already-cleared component
                _ => {}
            }
            color.insert(node, 1);
            path.push(node);
            match succ.get(&node) {
                Some(&next) => node = next,
                None => break, // chain drains (e.g. into a NIC)
            }
        }
        for n in path {
            color.insert(n, 2);
        }
    }
    None
}

fn node_name(n: NodeId) -> String {
    match n {
        NodeId::Switch(s) => format!("S{}", s.0),
        NodeId::Host(h) => format!("H{}", h.0),
    }
}

fn chan_name(c: u32, descs: &[ChannelDesc]) -> String {
    match descs.get(c as usize) {
        Some(d) => format!("{}->{}", node_name(d.from), node_name(d.to)),
        None => format!("ch{c}"),
    }
}

/// Build, classify and render the wait-for graph.
pub(crate) fn analyze(
    switches: &[SwitchState],
    live_packets: usize,
    cycle: u64,
    last_activity: u64,
    threshold: u64,
    descs: &[ChannelDesc],
) -> StallReport {
    use std::fmt::Write as _;
    let edges = build_wait_edges(switches);
    let quiescent_cycles = cycle.saturating_sub(last_activity);
    let class = if live_packets == 0 {
        StallClass::Idle
    } else if quiescent_cycles <= threshold {
        StallClass::Active
    } else if let Some(cyc) = find_cycle(&edges) {
        StallClass::Deadlock { cycle: cyc }
    } else {
        StallClass::Starvation
    };

    let mut summary = String::new();
    match &class {
        StallClass::Idle => {
            let _ = write!(summary, "idle: no live packets");
        }
        StallClass::Active => {
            let _ = write!(
                summary,
                "active: {live_packets} live packets, last flit {quiescent_cycles} \
                 cycles ago (threshold {threshold}); {} wait edges",
                edges.len()
            );
        }
        StallClass::Deadlock { cycle: cyc } => {
            let _ = write!(
                summary,
                "DEADLOCK: cyclic channel dependency among {} channels \
                 ({live_packets} live packets, quiescent {quiescent_cycles} cycles):\n  ",
                cyc.len()
            );
            for &c in cyc {
                let _ = write!(summary, "{} => ", chan_name(c, descs));
            }
            let _ = write!(summary, "{}", chan_name(cyc[0], descs));
        }
        StallClass::Starvation => {
            let _ = write!(
                summary,
                "starvation/livelock: {live_packets} live packets quiescent for \
                 {quiescent_cycles} cycles with no cyclic dependency; \
                 {} wait edges",
                edges.len()
            );
            let stopped = edges.iter().filter(|e| e.out_stopped).count();
            if stopped > 0 {
                let _ = write!(summary, " ({stopped} behind STOPped outputs)");
            }
        }
    }
    if !edges.is_empty() && !matches!(class, StallClass::Active) {
        let _ = write!(summary, "\nwait-for edges:");
        for e in &edges {
            let _ = write!(
                summary,
                "\n  sw{} p{}->p{}: {} waits for {}{}{}",
                e.sw,
                e.in_port,
                e.out_port,
                chan_name(e.from_chan, descs),
                chan_name(e.to_chan, descs),
                if e.granted { " [granted]" } else { "" },
                if e.out_stopped { " [stopped]" } else { "" },
            );
        }
    }

    StallReport {
        class,
        live_packets,
        quiescent_cycles,
        threshold,
        edges,
        summary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: u32, to: u32) -> WaitEdge {
        WaitEdge {
            sw: 0,
            in_port: 0,
            out_port: 1,
            from_chan: from,
            to_chan: to,
            granted: false,
            out_stopped: false,
        }
    }

    #[test]
    fn no_cycle_in_a_chain() {
        let edges = vec![edge(0, 1), edge(1, 2), edge(2, 3)];
        assert_eq!(find_cycle(&edges), None);
    }

    #[test]
    fn finds_simple_cycle() {
        let edges = vec![edge(0, 1), edge(1, 2), edge(2, 0)];
        let cyc = find_cycle(&edges).unwrap();
        assert_eq!(cyc.len(), 3);
        // Dependency order: each element's successor is the next element.
        for w in cyc.windows(2) {
            assert!(edges
                .iter()
                .any(|e| e.from_chan == w[0] && e.to_chan == w[1]));
        }
    }

    #[test]
    fn finds_cycle_reached_through_a_tail() {
        // 5 -> 0 -> 1 -> 2 -> 0: the cycle excludes the tail node.
        let edges = vec![edge(5, 0), edge(0, 1), edge(1, 2), edge(2, 0)];
        let cyc = find_cycle(&edges).unwrap();
        assert_eq!(cyc.len(), 3);
        assert!(!cyc.contains(&5));
    }

    #[test]
    fn disjoint_components_cleared_independently() {
        let edges = vec![edge(0, 1), edge(1, 2), edge(10, 11), edge(11, 10)];
        let cyc = find_cycle(&edges).unwrap();
        assert_eq!(cyc.len(), 2);
        assert!(cyc.contains(&10) && cyc.contains(&11));
    }

    #[test]
    fn classification_thresholds() {
        // No switches needed: empty edge set exercises the class logic.
        let r = analyze(&[], 0, 1000, 900, 50, &[]);
        assert_eq!(r.class, StallClass::Idle);
        let r = analyze(&[], 3, 1000, 990, 50, &[]);
        assert_eq!(r.class, StallClass::Active);
        let r = analyze(&[], 3, 1000, 100, 50, &[]);
        assert_eq!(r.class, StallClass::Starvation);
        assert!(r.summary.contains("starvation"));
    }
}
