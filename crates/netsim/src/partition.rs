//! Topology-aware sharding for the parallel cycle engine.
//!
//! A [`ShardPlan`] assigns every switch and every NIC to exactly one
//! shard. Switches are laid out in BFS order over the switch graph
//! (neighbours visited in port order, disconnected components seeded in
//! switch-index order) and that linear order is cut into `n_shards`
//! contiguous blocks, so the mesh/torus neighbourhood structure keeps most
//! links intra-shard. NICs follow the switch they attach to, which makes
//! every NIC↔switch channel intra-shard by construction; only
//! switch↔switch links can cross shards, and every channel carries the
//! `delay ≥ 1` lookahead the barrier design relies on (asserted by
//! `Channel::new`, revalidated by the partition proptest).
//!
//! Invariants (checked by `tests/partition_invariants.rs`):
//! * every switch and NIC is in exactly one shard;
//! * all shards are non-empty and switch counts are balanced within a
//!   factor of 2 (blocks differ by at most one switch);
//! * the plan is a pure function of the topology and the shard count — no
//!   RNG, no iteration-order dependence — so every run of the same
//!   configuration shards identically.

use regnet_topology::Topology;

/// A deterministic assignment of switches and NICs to shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    n_shards: usize,
    /// Shard of each switch, indexed by switch id.
    switch_shard: Vec<u32>,
    /// Shard of each NIC, indexed by host id.
    nic_shard: Vec<u32>,
}

impl ShardPlan {
    /// Build a plan with `min(requested, num_switches)` shards (a shard
    /// with no switches would be pure overhead). `requested` must be ≥ 1.
    pub fn new(topo: &Topology, requested: usize) -> ShardPlan {
        assert!(requested >= 1, "shard count must be at least 1");
        let n_sw = topo.num_switches();
        let n_shards = requested.min(n_sw).max(1);

        // BFS over the switch graph. `ports_of`/`switch_neighbors` yield
        // neighbours in port order, and component seeds come in index
        // order, so the traversal — and therefore the plan — is
        // deterministic.
        let mut order = Vec::with_capacity(n_sw);
        let mut seen = vec![false; n_sw];
        let mut queue = std::collections::VecDeque::new();
        for seed in topo.switches() {
            if seen[seed.idx()] {
                continue;
            }
            seen[seed.idx()] = true;
            queue.push_back(seed);
            while let Some(sw) = queue.pop_front() {
                order.push(sw);
                for (_port, next, _link) in topo.switch_neighbors(sw) {
                    if !seen[next.idx()] {
                        seen[next.idx()] = true;
                        queue.push_back(next);
                    }
                }
            }
        }
        debug_assert_eq!(order.len(), n_sw);

        // Cut the BFS order into contiguous blocks; the first
        // `n_sw % n_shards` blocks get one extra switch.
        let base = n_sw / n_shards;
        let extra = n_sw % n_shards;
        let mut switch_shard = vec![0u32; n_sw];
        let mut pos = 0usize;
        for shard in 0..n_shards {
            let len = base + usize::from(shard < extra);
            for sw in &order[pos..pos + len] {
                switch_shard[sw.idx()] = shard as u32;
            }
            pos += len;
        }

        let nic_shard = topo
            .hosts()
            .map(|h| switch_shard[topo.host_switch(h).idx()])
            .collect();

        ShardPlan {
            n_shards,
            switch_shard,
            nic_shard,
        }
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Shard of switch `sw` (by index).
    pub fn switch_shard(&self, sw: usize) -> usize {
        self.switch_shard[sw] as usize
    }

    /// Shard of the NIC of host `h` (by index).
    pub fn nic_shard(&self, h: usize) -> usize {
        self.nic_shard[h] as usize
    }

    /// Switch count per shard.
    pub fn switch_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_shards];
        for &s in &self.switch_shard {
            counts[s as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::TopologyBuilder;

    fn ring(n: usize, hosts_per_switch: usize) -> Topology {
        let mut b = TopologyBuilder::new("ring", 8);
        b.add_switches(n);
        for i in 0..n {
            b.connect(
                regnet_topology::SwitchId(i as u32),
                regnet_topology::SwitchId(((i + 1) % n) as u32),
            )
            .unwrap();
        }
        b.attach_hosts_everywhere(hosts_per_switch).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn blocks_are_contiguous_and_balanced() {
        let topo = ring(10, 2);
        let plan = ShardPlan::new(&topo, 4);
        assert_eq!(plan.n_shards(), 4);
        let counts = plan.switch_counts();
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert_eq!(counts.iter().max(), Some(&3));
        assert_eq!(counts.iter().min(), Some(&2));
        // A ring's BFS order from switch 0 alternates directions, but each
        // shard is still one contiguous BFS block.
        for h in 0..topo.num_hosts() {
            let sw = topo.host_switch(regnet_topology::HostId(h as u32));
            assert_eq!(plan.nic_shard(h), plan.switch_shard(sw.idx()));
        }
    }

    #[test]
    fn shard_count_clamps_to_switches() {
        let topo = ring(3, 1);
        let plan = ShardPlan::new(&topo, 8);
        assert_eq!(plan.n_shards(), 3);
        assert_eq!(plan.switch_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn single_shard_contains_everything() {
        let topo = ring(5, 2);
        let plan = ShardPlan::new(&topo, 1);
        assert_eq!(plan.n_shards(), 1);
        assert!((0..5).all(|s| plan.switch_shard(s) == 0));
        assert!((0..10).all(|h| plan.nic_shard(h) == 0));
    }

    #[test]
    fn deterministic_across_builds() {
        let a = ShardPlan::new(&ring(16, 4), 4);
        let b = ShardPlan::new(&ring(16, 4), 4);
        assert_eq!(a.switch_shard, b.switch_shard);
        assert_eq!(a.nic_shard, b.nic_shard);
    }
}
