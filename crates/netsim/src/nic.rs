//! Per-host network interface card state: injection, reception, and the
//! in-transit buffer pool.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use rand::rngs::SmallRng;

/// Reception progress for the packet currently streaming into this NIC.
#[derive(Debug, Clone, Copy)]
pub struct RxState {
    pub pid: u32,
    pub received: u32,
    pub expected: u32,
    /// True when this packet is being delivered here (as opposed to being
    /// an in-transit packet that will be re-injected).
    pub deliver: bool,
}

/// Transmission progress for the packet currently leaving this NIC.
#[derive(Debug, Clone, Copy)]
pub struct TxState {
    pub pid: u32,
    pub sent: u32,
    pub total: u32,
    pub reinjection: bool,
}

/// What kind of transmission a [`Nic::pick_next_tx`] winner is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxKind {
    /// A locally generated packet leaving for the first time.
    Fresh,
    /// An in-transit packet continuing its journey (holds pool space).
    Reinject,
    /// A source retransmission of a packet lost to a fault; restarts the
    /// journey from segment 0.
    Retransmit,
}

/// One host's network interface.
#[derive(Debug)]
pub struct Nic {
    /// Channel into the switch (data out).
    pub out_chan: u32,
    /// STOP received from the switch input buffer we feed.
    pub stopped: bool,
    /// Locally generated packets awaiting injection (FIFO).
    pub local_queue: VecDeque<u32>,
    /// In-transit packets with their re-injection ready cycle.
    pub reinject: BinaryHeap<Reverse<(u64, u32)>>,
    /// Source retransmissions keyed by the cycle the send-timeout fires.
    pub retransmit: BinaryHeap<Reverse<(u64, u32)>>,
    pub tx: Option<TxState>,
    pub rx: Option<RxState>,
    /// In-transit buffer pool occupancy, flits.
    pub pool_used: u32,
    /// Next scheduled generation time, in (fractional) cycles. `f64::MAX`
    /// for hosts that never generate under the current pattern.
    pub next_gen: f64,
    /// Per-host RNG (destinations, interarrival jitter).
    pub rng: SmallRng,
    /// Explicitly scheduled messages (closed-loop workloads): destination
    /// host ids keyed by generation cycle, non-decreasing.
    pub scheduled: VecDeque<(u64, u32)>,
}

impl Nic {
    pub fn new(out_chan: u32, rng: SmallRng) -> Nic {
        Nic {
            out_chan,
            stopped: false,
            local_queue: VecDeque::new(),
            reinject: BinaryHeap::new(),
            retransmit: BinaryHeap::new(),
            tx: None,
            rx: None,
            pool_used: 0,
            next_gen: 0.0,
            rng,
            scheduled: VecDeque::new(),
        }
    }

    /// The next packet to transmit, if any is eligible at `cycle`.
    ///
    /// The paper's mechanism re-injects in-transit packets "as soon as
    /// possible"; with `itb_priority` they preempt locally queued messages,
    /// otherwise the NIC serves whichever became ready first.
    /// Retransmissions slot in between: they carry already-late traffic, so
    /// they outrank fresh injections, but never preempt in-transit packets
    /// holding pool space.
    pub fn pick_next_tx(&mut self, cycle: u64, itb_priority: bool) -> Option<(u32, TxKind)> {
        let ready = |heap: &BinaryHeap<Reverse<(u64, u32)>>| {
            heap.peek()
                .filter(|Reverse((ready, _))| *ready <= cycle)
                .is_some()
        };
        let reinject_ready = ready(&self.reinject);
        if reinject_ready && (itb_priority || self.local_queue.is_empty()) {
            let Reverse((_, pid)) = self.reinject.pop().unwrap();
            return Some((pid, TxKind::Reinject));
        }
        if ready(&self.retransmit) {
            let Reverse((_, pid)) = self.retransmit.pop().unwrap();
            return Some((pid, TxKind::Retransmit));
        }
        if let Some(pid) = self.local_queue.pop_front() {
            return Some((pid, TxKind::Fresh));
        }
        if reinject_ready {
            let Reverse((_, pid)) = self.reinject.pop().unwrap();
            return Some((pid, TxKind::Reinject));
        }
        None
    }

    /// Nothing for the transmit phase to do at `cycle` — no transmission in
    /// flight (a stopped NIC with a worm in progress must keep being
    /// visited so it resumes on GO), no queued local packet, and no
    /// re-injection or retransmission ready yet. Heap entries that become
    /// ready later are covered by the scheduler's wake-up heap (one entry
    /// per insertion), so the active-set scheduler may retire a NIC for
    /// which this holds.
    pub fn quiescent_for_tx(&self, cycle: u64) -> bool {
        let ready = |heap: &BinaryHeap<Reverse<(u64, u32)>>| {
            heap.peek().is_some_and(|Reverse((r, _))| *r <= cycle)
        };
        self.tx.is_none()
            && self.local_queue.is_empty()
            && !ready(&self.reinject)
            && !ready(&self.retransmit)
    }

    /// Anything left to do at this NIC?
    pub fn is_idle(&self) -> bool {
        self.tx.is_none()
            && self.rx.is_none()
            && self.local_queue.is_empty()
            && self.reinject.is_empty()
            && self.retransmit.is_empty()
            && self.scheduled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn nic() -> Nic {
        Nic::new(0, SmallRng::seed_from_u64(0))
    }

    #[test]
    fn pick_prefers_reinjection_with_priority() {
        let mut n = nic();
        n.local_queue.push_back(7);
        n.reinject.push(Reverse((10, 3)));
        // Not ready yet at cycle 5: local goes first.
        assert_eq!(n.pick_next_tx(5, true), Some((7, TxKind::Fresh)));
        n.local_queue.push_back(8);
        // Ready at cycle 10: reinjection preempts.
        assert_eq!(n.pick_next_tx(10, true), Some((3, TxKind::Reinject)));
        assert_eq!(n.pick_next_tx(10, true), Some((8, TxKind::Fresh)));
        assert_eq!(n.pick_next_tx(10, true), None);
    }

    #[test]
    fn pick_without_priority_serves_local_first() {
        let mut n = nic();
        n.local_queue.push_back(7);
        n.reinject.push(Reverse((0, 3)));
        assert_eq!(n.pick_next_tx(10, false), Some((7, TxKind::Fresh)));
        assert_eq!(n.pick_next_tx(10, false), Some((3, TxKind::Reinject)));
    }

    #[test]
    fn reinject_orders_by_ready_cycle() {
        let mut n = nic();
        n.reinject.push(Reverse((30, 1)));
        n.reinject.push(Reverse((10, 2)));
        n.reinject.push(Reverse((20, 3)));
        assert_eq!(n.pick_next_tx(100, true), Some((2, TxKind::Reinject)));
        assert_eq!(n.pick_next_tx(100, true), Some((3, TxKind::Reinject)));
        assert_eq!(n.pick_next_tx(100, true), Some((1, TxKind::Reinject)));
    }

    #[test]
    fn retransmit_outranks_fresh_but_not_reinjection() {
        let mut n = nic();
        n.local_queue.push_back(7);
        n.retransmit.push(Reverse((10, 4)));
        n.reinject.push(Reverse((10, 3)));
        assert_eq!(n.pick_next_tx(10, true), Some((3, TxKind::Reinject)));
        assert_eq!(n.pick_next_tx(10, true), Some((4, TxKind::Retransmit)));
        assert_eq!(n.pick_next_tx(10, true), Some((7, TxKind::Fresh)));
        // A retransmission whose timeout has not fired yet waits its turn.
        n.retransmit.push(Reverse((50, 5)));
        n.local_queue.push_back(8);
        assert_eq!(n.pick_next_tx(20, true), Some((8, TxKind::Fresh)));
        assert_eq!(n.pick_next_tx(20, true), None);
        assert_eq!(n.pick_next_tx(50, true), Some((5, TxKind::Retransmit)));
    }

    #[test]
    fn tx_quiescence_tracks_ready_cycles() {
        let mut n = nic();
        assert!(n.quiescent_for_tx(0));
        n.reinject.push(Reverse((10, 1)));
        assert!(
            n.quiescent_for_tx(9),
            "future-ready entry: wake-up covers it"
        );
        assert!(!n.quiescent_for_tx(10), "ready entry demands a visit");
        n.reinject.clear();
        n.tx = Some(TxState {
            pid: 1,
            sent: 0,
            total: 4,
            reinjection: false,
        });
        assert!(
            !n.quiescent_for_tx(0),
            "in-flight worm keeps the NIC active"
        );
    }

    #[test]
    fn idle_detection() {
        let mut n = nic();
        assert!(n.is_idle());
        n.local_queue.push_back(1);
        assert!(!n.is_idle());
        n.local_queue.clear();
        n.retransmit.push(Reverse((0, 1)));
        assert!(!n.is_idle());
    }
}
