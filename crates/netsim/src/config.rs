//! Simulation parameters. Defaults are the Myrinet figures from the paper's
//! sections 4.3–4.5.

use serde::{Deserialize, Serialize};

/// Nanoseconds per cycle: one flit per link per cycle at 160 MB/s with
/// one-byte flits.
pub const CYCLE_NS: f64 = 6.25;

/// Message generation process at each host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenerationProcess {
    /// Constant interarrival time with a random per-host phase (the paper:
    /// "message generation rate is constant and the same for all the
    /// hosts").
    Constant,
    /// Poisson arrivals (exponential interarrival), for sensitivity
    /// studies.
    Poisson,
}

/// All timing and sizing parameters of the simulated hardware.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Payload flits (= bytes) per message. The paper evaluates 32, 512 and
    /// 1024 and reports 512.
    pub payload_flits: usize,
    /// Cable pipeline depth in flits. 10 m LAN cable at 4.92 ns/m ≈ 8 flit
    /// times ("there will be a maximum of 8 flits on the link").
    pub link_delay_cycles: u32,
    /// Slack buffer size per switch input, flits (Myrinet: 80 bytes).
    pub slack_buffer_flits: u16,
    /// Send STOP when the input buffer fills beyond this (56 bytes).
    pub stop_threshold: u16,
    /// Send GO when the input buffer drains below this (40 bytes).
    pub go_threshold: u16,
    /// First-flit routing latency through a switch (150 ns = 24 cycles).
    pub switch_routing_cycles: u32,
    /// Cycles to recognise an in-transit packet at the NIC (275 ns = 44
    /// bytes received).
    pub itb_detect_cycles: u32,
    /// Cycles to program the re-injection DMA (200 ns = 32 further bytes).
    pub itb_dma_cycles: u32,
    /// Capacity of the in-transit buffer pool per NIC, in flits (90 KB).
    pub itb_pool_flits: u32,
    /// Extra delay when an in-transit packet overflows to host memory
    /// ("considerably increasing the overhead"; default 1 µs = 160 cycles).
    pub itb_overflow_penalty_cycles: u32,
    /// Give re-injected packets priority over locally generated ones at the
    /// NIC output ("the in-transit host will re-inject packets as soon as
    /// possible").
    pub itb_priority: bool,
    /// Re-inject with cut-through (start before the tail has arrived); when
    /// false the NIC stores the whole packet first (ablation).
    pub itb_cut_through: bool,
    /// Maximum packet payload, flits. Messages larger than this are
    /// segmented into multiple packets and reassembled at the destination
    /// (as GM does above the MTU). `None` = one packet per message, the
    /// paper's model.
    pub mtu_flits: Option<usize>,
    /// Message generation process.
    pub generation: GenerationProcess,
    /// Cap on locally queued messages per host; beyond it, generation stalls
    /// (only relevant beyond saturation; keeps overload runs bounded).
    pub source_queue_cap: usize,
    /// Abort if no flit moves for this many cycles while packets are in
    /// flight — a deadlock would be a simulator or routing bug.
    pub watchdog_cycles: u64,
    /// Source NICs retransmit packets lost to faults (the Myrinet control
    /// program's end-to-end recovery). Off = lost packets are just dropped.
    pub nic_retransmission: bool,
    /// Send-timeout: cycles after the loss before the source retransmits.
    pub retransmit_timeout_cycles: u64,
    /// Per-packet retry budget; once exhausted the packet is dropped and
    /// counted in `ReliabilityStats::dropped_packets`.
    pub max_retransmits: u32,
    /// Cycles between a fault and the re-mapped routing tables taking
    /// effect (discovery + route distribution; sources stall meanwhile).
    /// The default 16 000 cycles = 100 µs is optimistic but keeps the
    /// degradation visible at simulation timescales.
    pub reconfig_latency_cycles: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            payload_flits: 512,
            link_delay_cycles: 8,
            slack_buffer_flits: 80,
            stop_threshold: 56,
            go_threshold: 40,
            switch_routing_cycles: 24,
            itb_detect_cycles: 44,
            itb_dma_cycles: 32,
            itb_pool_flits: 90 * 1024,
            itb_overflow_penalty_cycles: 160,
            itb_priority: true,
            itb_cut_through: true,
            mtu_flits: None,
            generation: GenerationProcess::Constant,
            source_queue_cap: 512,
            watchdog_cycles: 2_000_000,
            nic_retransmission: true,
            retransmit_timeout_cycles: 4_096,
            max_retransmits: 16,
            reconfig_latency_cycles: 16_000,
        }
    }
}

impl SimConfig {
    /// Validate parameter consistency (e.g. the stop margin must fit in the
    /// slack buffer given the round-trip flits in flight).
    pub fn validate(&self) -> Result<(), String> {
        if self.payload_flits == 0 {
            return Err("payload_flits must be positive".into());
        }
        if self.link_delay_cycles == 0 {
            return Err("link_delay_cycles must be positive".into());
        }
        if self.stop_threshold >= self.slack_buffer_flits {
            return Err("stop threshold must be below the slack buffer size".into());
        }
        if self.go_threshold >= self.stop_threshold {
            return Err("go threshold must be below the stop threshold".into());
        }
        if self.mtu_flits == Some(0) {
            return Err("mtu_flits must be positive when set".into());
        }
        if self.retransmit_timeout_cycles == 0 {
            return Err("retransmit_timeout_cycles must be positive".into());
        }
        // After STOP is emitted, up to 2*link_delay more flits may arrive
        // (flits in flight plus flits sent while STOP crosses the cable).
        let margin = self.slack_buffer_flits - self.stop_threshold;
        if (margin as u32) < 2 * self.link_delay_cycles {
            return Err(format!(
                "slack margin {margin} cannot absorb 2x link delay {}",
                self.link_delay_cycles
            ));
        }
        Ok(())
    }

    /// Convert cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * CYCLE_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = SimConfig::default();
        c.validate().unwrap();
        assert_eq!(c.payload_flits, 512);
        // 150 ns at 6.25 ns/cycle.
        assert_eq!(c.switch_routing_cycles, 24);
        // 275 ns and 200 ns.
        assert_eq!(c.itb_detect_cycles, 44);
        assert_eq!(c.itb_dma_cycles, 32);
        assert_eq!(c.itb_pool_flits, 92_160);
        assert_eq!(c.slack_buffer_flits, 80);
        assert_eq!((c.stop_threshold, c.go_threshold), (56, 40));
    }

    #[test]
    fn validation_catches_bad_configs() {
        let bad = [
            SimConfig {
                stop_threshold: 90,
                ..SimConfig::default()
            },
            SimConfig {
                go_threshold: 60,
                ..SimConfig::default()
            },
            SimConfig {
                mtu_flits: Some(0),
                ..SimConfig::default()
            },
            SimConfig {
                payload_flits: 0,
                ..SimConfig::default()
            },
            // 2*20 > 80-56: STOP cannot protect the slack buffer.
            SimConfig {
                link_delay_cycles: 20,
                ..SimConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?} should be rejected");
        }
    }

    #[test]
    fn cycle_conversion() {
        let c = SimConfig::default();
        assert_eq!(c.cycles_to_ns(24), 150.0);
        assert_eq!(c.cycles_to_ns(44), 275.0);
        assert_eq!(c.cycles_to_ns(32), 200.0);
    }
}
