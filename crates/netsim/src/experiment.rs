//! High-level experiment driver: one offered-load point, a full
//! latency/throughput curve, or a saturation-throughput search — the three
//! operations behind every table and figure of the paper.

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_metrics::{Curve, CurvePoint, MetricsRegistry, UtilizationSummary};
use regnet_topology::Topology;
use regnet_traffic::{Pattern, PatternSpec};

use crate::config::SimConfig;
use crate::events::{EventJournal, EventOptions};
use crate::faultplan::{FaultOptions, ReliabilityStats};
use crate::profiler::{ProfileReport, SpanReport};
use crate::sched::Scheduler;
use crate::sim::{ChannelDesc, RunStats, Simulator};
use crate::trace::{ChannelUtilSeries, TraceOptions, TraceReport};

/// Per-run options.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Cycles simulated before measurement starts (fills the network to
    /// steady state).
    pub warmup_cycles: u64,
    /// Length of the measurement window, cycles.
    pub measure_cycles: u64,
    /// RNG seed (generation phases, destination draws, path sampling).
    pub seed: u64,
    /// Telemetry observers to enable for the run (default: all off, which
    /// costs nothing). Results come back through
    /// [`Experiment::run_traced`].
    pub trace: TraceOptions,
    /// Fault schedule to inject (default: `None`, a fault-free run). The
    /// dependability counters come back through
    /// [`Experiment::run_reliability`].
    pub faults: Option<FaultOptions>,
    /// Enable the unified counter registry; the snapshot over the
    /// measurement window rides in [`RunStats::counters`].
    pub counters: bool,
    /// Enable the structured event journal (default: `None`, no journal).
    /// The journal comes back through [`Experiment::run_observed`].
    pub events: Option<EventOptions>,
    /// Enable the per-phase wall-time self-profiler; the report comes back
    /// through [`Experiment::run_observed`].
    pub profile: bool,
    /// Cycle-loop driver (default [`Scheduler::ActiveSet`]). Results are
    /// bit-identical across drivers; [`Scheduler::Scan`] remains available
    /// as the reference implementation the equivalence suite diffs against.
    pub scheduler: Scheduler,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            warmup_cycles: 100_000,
            measure_cycles: 300_000,
            seed: 1,
            trace: TraceOptions::default(),
            faults: None,
            counters: false,
            events: None,
            profile: false,
            scheduler: Scheduler::default(),
        }
    }
}

/// Everything a single run can report beyond its [`RunStats`]: the
/// dependability counters, the trace-observer report, the self-profiler
/// breakdown and the event journal (each `None`/default unless the
/// corresponding [`RunOptions`] field enabled it).
pub struct RunObservation {
    pub stats: RunStats,
    pub reliability: ReliabilityStats,
    pub trace: Option<TraceReport>,
    pub profile: Option<ProfileReport>,
    /// Hierarchical view of `profile` (phase → shard → component bucket).
    pub spans: Option<SpanReport>,
    pub journal: Option<Box<EventJournal>>,
    /// The cycle-loop driver that actually ran
    /// ([`Simulator::effective_scheduler`]). Always equals
    /// `RunOptions::scheduler`; recorded so result writers can assert the
    /// label they store matches the engine that produced the numbers.
    pub effective_scheduler: Scheduler,
}

impl RunObservation {
    /// Project the run into the unified [`MetricsRegistry`]: the 19 event
    /// counters, the run gauges, the 13 reliability counters, the ITB
    /// occupancy peak and the latency summaries — everything the
    /// simulation determined, nothing wall-clock, so two same-seed runs
    /// produce byte-identical Prometheus exposition
    /// ([`MetricsRegistry::to_prometheus`]).
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s = &self.stats;
        if let Some(c) = &s.counters {
            for (name, value) in c.as_pairs() {
                reg.counter_with(
                    "regnet_events_total",
                    "Simulator event counts over the measurement window, by event kind",
                    &[("event", name)],
                    value,
                );
            }
        }
        reg.gauge(
            "regnet_run_window_cycles",
            "Length of the measurement window, cycles",
            s.window_cycles as f64,
        );
        reg.gauge(
            "regnet_run_delivered_messages",
            "Messages fully delivered during the window",
            s.delivered as f64,
        );
        reg.gauge(
            "regnet_run_generated_messages",
            "Messages generated during the window",
            s.generated as f64,
        );
        reg.gauge(
            "regnet_run_delivered_payload_flits",
            "Payload flits delivered during the window",
            s.delivered_payload_flits as f64,
        );
        reg.gauge(
            "regnet_run_avg_latency_ns",
            "Mean network latency (injection to delivery), ns",
            s.avg_latency_ns,
        );
        reg.gauge(
            "regnet_run_p99_latency_ns",
            "99th-percentile network latency, ns",
            s.p99_latency_ns,
        );
        reg.gauge(
            "regnet_run_avg_total_latency_ns",
            "Mean total latency (generation to delivery), ns",
            s.avg_total_latency_ns,
        );
        reg.gauge(
            "regnet_run_avg_itbs_per_msg",
            "Mean in-transit buffer hops per message",
            s.avg_itbs_per_msg,
        );
        reg.gauge(
            "regnet_run_gen_stall_cycles",
            "Generation cycles stalled by flow control",
            s.gen_stall_cycles as f64,
        );
        reg.gauge(
            "regnet_run_max_pool_flits",
            "Peak ITB pool occupancy of any single NIC during the window, flits",
            s.max_pool_flits as f64,
        );
        let r = &self.reliability;
        for (kind, value) in [
            ("link_failures", r.link_failures),
            ("switch_failures", r.switch_failures),
            ("host_failures", r.host_failures),
            ("repairs", r.repairs),
            ("worms_truncated", r.worms_truncated),
            ("retransmissions", r.retransmissions),
            ("dropped_packets", r.dropped_packets),
            ("dropped_messages", r.dropped_messages),
            ("unreachable_drops", r.unreachable_drops),
            ("reconfigurations", r.reconfigurations),
            ("reconfig_failures", r.reconfig_failures),
            ("reconfig_stall_cycles", r.reconfig_stall_cycles),
            ("unreachable_pairs", r.unreachable_pairs),
        ] {
            reg.counter_with(
                "regnet_reliability_total",
                "Dependability event counts, by kind",
                &[("kind", kind)],
                value,
            );
        }
        if let Some(t) = &self.trace {
            reg.counter(
                "regnet_digest_events_total",
                "Delivered-message events folded into the determinism digest",
                t.digest_events,
            );
            if let Some(occ) = &t.itb_occupancy {
                reg.gauge(
                    "regnet_itb_pool_peak_flits",
                    "Peak total ITB pool occupancy across all NICs, flits",
                    occ.max as f64,
                );
            }
            for (name, help, summary) in [
                (
                    "regnet_packet_lifetime_cycles",
                    "Message lifetime (injection to delivery), cycles; sum not tracked",
                    &t.lifetime,
                ),
                (
                    "regnet_itb_reinject_latency_cycles",
                    "ITB ejection to re-injection start, cycles; sum not tracked",
                    &t.reinject_latency,
                ),
            ] {
                if let Some(l) = summary {
                    reg.summary(
                        name,
                        help,
                        l.count,
                        0.0,
                        &[
                            (0.5, l.p50_cycles as f64),
                            (0.99, l.p99_cycles as f64),
                            (1.0, l.max_cycles as f64),
                        ],
                    );
                }
            }
        }
        reg
    }
}

/// Run `f(0..n)` on `threads` OS threads (1 = sequential) and return the
/// results in index order. Work is handed out through a shared counter, so
/// an expensive index does not stall the others; `f` must be deterministic
/// per index for the output to be reproducible.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads.min(n) {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    mine.push((i, f(i)));
                }
                mine
            }));
        }
        for h in handles {
            // Propagate a worker panic with its original payload (message,
            // location context) instead of a generic "worker panicked".
            match h.join() {
                Ok(results) => {
                    for (i, v) in results {
                        out[i] = Some(v);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("missing par_map result"))
        .collect()
}

/// Options for [`Experiment::find_throughput`].
#[derive(Debug, Clone)]
pub struct ThroughputSearch {
    /// First offered load probed (flits/ns/switch).
    pub start: f64,
    /// Multiplicative step of the load ladder.
    pub growth: f64,
    /// Stop after this many saturated points in a row.
    pub saturated_points: usize,
    /// A point counts as saturated when accepted < ratio × offered.
    pub ratio: f64,
    /// Hard cap on probed points.
    pub max_points: usize,
}

impl Default for ThroughputSearch {
    fn default() -> Self {
        ThroughputSearch {
            start: 0.002,
            growth: 1.35,
            saturated_points: 2,
            ratio: 0.92,
            max_points: 24,
        }
    }
}

/// A fully prepared experiment: topology, routing tables, traffic pattern
/// and hardware parameters. Cheap to query repeatedly at different offered
/// loads; immutable, so sweeps can run points from several threads.
pub struct Experiment {
    topo: Topology,
    db: RouteDb,
    pattern: Pattern,
    cfg: SimConfig,
    scheme: RoutingScheme,
}

impl Experiment {
    /// Build the routing tables and resolve the traffic pattern.
    pub fn new(
        topo: Topology,
        scheme: RoutingScheme,
        db_cfg: RouteDbConfig,
        pattern: PatternSpec,
        cfg: SimConfig,
    ) -> Result<Experiment, String> {
        cfg.validate()?;
        let db = RouteDb::build(&topo, scheme, &db_cfg);
        let pattern = Pattern::resolve(pattern, &topo)?;
        Ok(Experiment {
            topo,
            db,
            pattern,
            cfg,
            scheme,
        })
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn scheme(&self) -> RoutingScheme {
        self.scheme
    }

    pub fn route_db(&self) -> &RouteDb {
        &self.db
    }

    pub fn sim_config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Static descriptors of every directed channel, in
    /// [`RunStats::channel_busy`] order. Builds a throwaway simulator (no
    /// cycles are run), so callers that only have `run_*` results can
    /// still map `channel_busy` entries to links.
    pub fn channel_descriptors(&self) -> Vec<ChannelDesc> {
        Simulator::new(
            &self.topo,
            &self.db,
            &self.pattern,
            self.cfg.clone(),
            0.001,
            1,
        )
        .channel_descriptors()
    }

    /// Run the raw simulation at one offered load and return the full
    /// [`RunStats`] (latency, ITB counters, per-channel utilization).
    pub fn run_stats(&self, offered: f64, opts: &RunOptions) -> RunStats {
        self.run_traced(offered, opts).0
    }

    /// Like [`run_stats`](Experiment::run_stats), but also returns the
    /// [`TraceReport`] collected by the observers selected in
    /// `opts.trace` (`None` when they are all off). Observers are enabled
    /// before warmup, so the trace digest covers the entire run — exactly
    /// what the determinism regression suite compares.
    pub fn run_traced(&self, offered: f64, opts: &RunOptions) -> (RunStats, Option<TraceReport>) {
        let (stats, _, report) = self.run_reliability(offered, opts);
        (stats, report)
    }

    /// Like [`run_traced`](Experiment::run_traced), plus the run's
    /// [`ReliabilityStats`] — all zeros unless `opts.faults` schedules
    /// something.
    pub fn run_reliability(
        &self,
        offered: f64,
        opts: &RunOptions,
    ) -> (RunStats, ReliabilityStats, Option<TraceReport>) {
        let obs = self.run_observed(offered, opts);
        (obs.stats, obs.reliability, obs.trace)
    }

    /// Run one point with every observer selected in `opts` and return the
    /// full [`RunObservation`]: stats, reliability, trace report, profiler
    /// breakdown and event journal. This is the superset entry point; the
    /// other `run_*` methods are thin projections of it.
    ///
    /// Observers are enabled before warmup, so the journal sees the whole
    /// run (warmup included) while `RunStats.counters` — reset at
    /// `begin_measurement` — covers exactly the measurement window.
    pub fn run_observed(&self, offered: f64, opts: &RunOptions) -> RunObservation {
        let mut sim = self.make_sim(offered, opts);
        let effective_scheduler = sim.effective_scheduler();
        sim.run(opts.warmup_cycles);
        sim.begin_measurement();
        sim.run(opts.measure_cycles);
        let stats = sim.end_measurement(opts.measure_cycles);
        RunObservation {
            stats,
            reliability: sim.reliability(),
            trace: sim.trace_report(),
            profile: sim.profile_report(),
            spans: sim.span_report(),
            journal: sim.take_journal(),
            effective_scheduler,
        }
    }

    fn make_sim(&self, offered: f64, opts: &RunOptions) -> Simulator<'_> {
        let mut sim = Simulator::new(
            &self.topo,
            &self.db,
            &self.pattern,
            self.cfg.clone(),
            offered,
            opts.seed,
        );
        sim.set_scheduler(opts.scheduler);
        sim.enable_trace(opts.trace.clone());
        if let Some(faults) = &opts.faults {
            sim.enable_faults(faults.clone());
        }
        if opts.counters {
            sim.enable_counters();
        }
        if let Some(ev) = &opts.events {
            sim.enable_events(ev.clone());
        }
        if opts.profile {
            sim.enable_profiler();
        }
        sim
    }

    /// Run one offered-load point and summarise it as a [`CurvePoint`].
    pub fn run_point(&self, offered: f64, opts: &RunOptions) -> CurvePoint {
        let stats = self.run_stats(offered, opts);
        self.to_point(offered, &stats)
    }

    fn to_point(&self, offered: f64, stats: &RunStats) -> CurvePoint {
        CurvePoint {
            offered,
            accepted: stats.accepted_flits_per_ns_per_switch(self.topo.num_switches()),
            avg_latency_ns: stats.avg_latency_ns,
            p99_latency_ns: stats.p99_latency_ns,
            avg_total_latency_ns: stats.avg_total_latency_ns,
            avg_itbs_per_msg: stats.avg_itbs_per_msg,
            delivered: stats.delivered,
        }
    }

    /// Sweep a latency/throughput curve over `loads`, running points on
    /// `threads` OS threads (1 = sequential).
    pub fn sweep(&self, loads: &[f64], opts: &RunOptions, threads: usize) -> Curve {
        let mut curve = Curve::new(format!(
            "{} / {} / {}",
            self.topo.name(),
            self.scheme.label(),
            self.pattern.spec().label()
        ));
        for p in par_map(loads.len(), threads, |i| self.run_point(loads[i], opts)) {
            curve.push(p);
        }
        curve
    }

    /// Search for the saturation throughput (the paper's per-table
    /// "throughput" numbers): climb a geometric load ladder until the
    /// network stops accepting the offered traffic, and report the highest
    /// accepted traffic seen.
    pub fn find_throughput(&self, search: &ThroughputSearch, opts: &RunOptions) -> f64 {
        let mut best = 0.0f64;
        let mut offered = search.start;
        let mut saturated_run = 0;
        for _ in 0..search.max_points {
            let p = self.run_point(offered, opts);
            best = best.max(p.accepted);
            if p.accepted < offered * search.ratio {
                saturated_run += 1;
                if saturated_run >= search.saturated_points {
                    break;
                }
            } else {
                saturated_run = 0;
            }
            offered *= search.growth;
        }
        best
    }

    /// Link-utilization summary at one offered load, restricted to
    /// switch↔switch channels (what the paper's Figures 8/9/11 map).
    pub fn link_utilization(
        &self,
        offered: f64,
        opts: &RunOptions,
    ) -> (UtilizationSummary, Vec<ChannelDesc>) {
        let mut sim = self.make_sim(offered, opts);
        let descs = sim.channel_descriptors();
        sim.run(opts.warmup_cycles);
        sim.begin_measurement();
        sim.run(opts.measure_cycles);
        let stats = sim.end_measurement(opts.measure_cycles);
        let mut busy = Vec::new();
        let mut kept = Vec::new();
        for (d, &b) in descs.iter().zip(&stats.channel_busy) {
            if d.switch_link {
                busy.push(b);
                kept.push(*d);
            }
        }
        (
            UtilizationSummary::from_busy_cycles(&busy, opts.measure_cycles),
            kept,
        )
    }

    /// [`link_utilization`](Experiment::link_utilization) plus the
    /// per-channel utilization *time series* recorded by the
    /// `channel_util_interval` observer (rows filtered to switch↔switch
    /// channels, parallel to the returned descriptors). The series is
    /// `None` when `opts.trace.channel_util_interval` is unset.
    pub fn link_utilization_traced(
        &self,
        offered: f64,
        opts: &RunOptions,
    ) -> (
        UtilizationSummary,
        Vec<ChannelDesc>,
        Option<ChannelUtilSeries>,
    ) {
        let mut sim = self.make_sim(offered, opts);
        let descs = sim.channel_descriptors();
        sim.run(opts.warmup_cycles);
        sim.begin_measurement();
        sim.run(opts.measure_cycles);
        let stats = sim.end_measurement(opts.measure_cycles);
        let series = sim.trace_report().and_then(|r| r.channel_util);
        let mut busy = Vec::new();
        let mut kept = Vec::new();
        let mut kept_rows = Vec::new();
        for (i, (d, &b)) in descs.iter().zip(&stats.channel_busy).enumerate() {
            if d.switch_link {
                busy.push(b);
                kept.push(*d);
                if let Some(s) = &series {
                    kept_rows.push(s.busy[i].clone());
                }
            }
        }
        let series = series.map(|s| ChannelUtilSeries {
            interval: s.interval,
            buckets: s.buckets,
            busy: kept_rows,
        });
        (
            UtilizationSummary::from_busy_cycles(&busy, opts.measure_cycles),
            kept,
            series,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::gen;

    fn quick_opts() -> RunOptions {
        RunOptions {
            warmup_cycles: 5_000,
            measure_cycles: 40_000,
            seed: 3,
            ..RunOptions::default()
        }
    }

    fn small_exp(scheme: RoutingScheme) -> Experiment {
        Experiment::new(
            gen::torus_2d(4, 4, 2).unwrap(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            SimConfig {
                payload_flits: 64,
                ..SimConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn run_point_accepts_offered_at_low_load() {
        let exp = small_exp(RoutingScheme::ItbRr);
        let p = exp.run_point(0.003, &quick_opts());
        assert!(p.delivered > 10);
        assert!((p.accepted - 0.003).abs() / 0.003 < 0.15);
        assert!(p.avg_latency_ns > 0.0);
    }

    #[test]
    fn sweep_parallel_equals_sequential() {
        let exp = small_exp(RoutingScheme::UpDown);
        let loads = [0.002, 0.004, 0.006];
        let seq = exp.sweep(&loads, &quick_opts(), 1);
        let par = exp.sweep(&loads, &quick_opts(), 3);
        assert_eq!(seq.points.len(), par.points.len());
        for (a, b) in seq.points.iter().zip(&par.points) {
            assert_eq!(
                a.delivered, b.delivered,
                "parallel sweep must be deterministic"
            );
            assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
        }
    }

    #[test]
    fn par_map_surfaces_worker_panic_message() {
        let err = std::panic::catch_unwind(|| {
            par_map(8, 3, |i| {
                if i == 5 {
                    panic!("index 5 exploded");
                }
                i * 2
            })
        })
        .expect_err("the worker panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("panic payload should be a string");
        assert!(
            msg.contains("index 5 exploded"),
            "original panic message lost: {msg:?}"
        );
    }

    #[test]
    fn find_throughput_converges() {
        let exp = small_exp(RoutingScheme::UpDown);
        let t = exp.find_throughput(
            &ThroughputSearch {
                start: 0.004,
                growth: 1.6,
                ..ThroughputSearch::default()
            },
            &quick_opts(),
        );
        assert!(t > 0.004, "throughput {t} too small");
        assert!(t < 0.5, "throughput {t} unreasonably large");
    }

    #[test]
    fn link_utilization_switch_links_only() {
        let exp = small_exp(RoutingScheme::UpDown);
        let (util, descs) = exp.link_utilization(0.006, &quick_opts());
        // 4x4 torus: 32 switch links = 64 directed channels.
        assert_eq!(descs.len(), 64);
        assert_eq!(util.per_channel.len(), 64);
        assert!(util.max() > 0.0);
        assert!(util.max() <= 1.0);
        assert!(descs.iter().all(|d| d.switch_link));
    }

    #[test]
    fn invalid_pattern_is_rejected() {
        // Bit-reversal on a non-power-of-two host count must fail at
        // construction, not at run time.
        let err = Experiment::new(
            gen::cplant().unwrap(),
            RoutingScheme::UpDown,
            RouteDbConfig::default(),
            PatternSpec::BitReversal,
            SimConfig::default(),
        );
        assert!(err.is_err());
    }
}
