//! Deterministic fault schedules and the runtime state that drives them.
//!
//! A [`FaultPlan`] is a time-ordered list of fail/repair events for links,
//! switches and hosts — either scripted explicitly or drawn from seeded
//! MTBF/MTTR exponential processes. The plan is part of a run's identity:
//! the same seed plus the same plan reproduces the same `RunStats`,
//! [`ReliabilityStats`] and trace digest, bit for bit.
//!
//! The simulator consumes the plan through
//! [`Simulator::enable_faults`](crate::Simulator::enable_faults); the
//! runtime bookkeeping lives in [`FaultRuntime`] (crate-private).
//!
//! Fault execution is a scheduler hook site: purging a worm resends GO
//! symbols and hands arrivals/grants to components the active-set
//! scheduler may have retired as quiescent, so every mutation the fault
//! phase makes re-registers the affected channels, switches and NICs
//! with the scheduler — including *same cycle* (phase 0) ctl deliveries,
//! which the tagless wake wheel handles because all channels share one
//! delay. Exactly two hook sites exist (the purge's ctl fix-up and the
//! retransmission wake-up), and both dispatch through the simulator's
//! `sched_note_ctl`/`sched_wake_nic_at` helpers, which route either to
//! the sequential `ActiveSched` or to the owning shard's scheduler when
//! the shard-parallel engine is installed — fault plans run natively on
//! every engine, and mid-cycle losses are deferred to a deterministic
//! replay point after NIC tx (see `par.rs` `# Faults`).
//! `tests/scheduler_equivalence.rs` pins cross-engine equality under a
//! fault plan on every paper topology × scheme.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use regnet_core::RouteDbConfig;
use regnet_mapper::{FaultSet, PhysicalRoutes};
use regnet_topology::{HostId, LinkId, SwitchId};

/// What a fault event acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    Link(LinkId),
    Switch(SwitchId),
    Host(HostId),
}

/// One scheduled change of a network element's health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation cycle the event takes effect (start of the cycle).
    pub cycle: u64,
    pub target: FaultTarget,
    /// `true` = the element fails; `false` = it is repaired.
    pub fail: bool,
}

/// A deterministic schedule of fail/repair events.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan with one link failing at `cycle`, never repaired.
    pub fn single_link(link: LinkId, cycle: u64) -> FaultPlan {
        let mut p = FaultPlan::new();
        p.fail_link(cycle, link);
        p
    }

    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    pub fn fail_link(&mut self, cycle: u64, l: LinkId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Link(l),
            fail: true,
        })
    }

    pub fn repair_link(&mut self, cycle: u64, l: LinkId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Link(l),
            fail: false,
        })
    }

    pub fn fail_switch(&mut self, cycle: u64, s: SwitchId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Switch(s),
            fail: true,
        })
    }

    pub fn repair_switch(&mut self, cycle: u64, s: SwitchId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Switch(s),
            fail: false,
        })
    }

    pub fn fail_host(&mut self, cycle: u64, h: HostId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Host(h),
            fail: true,
        })
    }

    pub fn repair_host(&mut self, cycle: u64, h: HostId) -> &mut Self {
        self.push(FaultEvent {
            cycle,
            target: FaultTarget::Host(h),
            fail: false,
        })
    }

    /// A seeded MTBF/MTTR process over `links`: each link alternates
    /// up/down with exponentially distributed up-times (mean `mtbf_cycles`)
    /// and down-times (mean `mttr_cycles`), truncated at `horizon_cycles`.
    /// Deterministic per (seed, link id).
    pub fn mtbf_links(
        links: &[LinkId],
        horizon_cycles: u64,
        mtbf_cycles: f64,
        mttr_cycles: f64,
        seed: u64,
    ) -> FaultPlan {
        assert!(mtbf_cycles > 0.0 && mttr_cycles > 0.0);
        let mut plan = FaultPlan::new();
        for &l in links {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA17_0000 ^ ((l.0 as u64) << 24));
            let mut exp = |mean: f64| -> f64 {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                -u.ln() * mean
            };
            let mut t = 0.0f64;
            loop {
                t += exp(mtbf_cycles);
                if t >= horizon_cycles as f64 {
                    break;
                }
                plan.fail_link(t as u64, l);
                t += exp(mttr_cycles);
                if t >= horizon_cycles as f64 {
                    break;
                }
                plan.repair_link(t as u64, l);
            }
        }
        plan.normalize();
        plan
    }

    /// Stable-sort the events by cycle (scripted order breaks ties).
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.cycle);
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// How the simulator reacts to a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultOptions {
    pub plan: FaultPlan,
    /// Invoke the mapper (discovery + route rebuild) after each event, once
    /// the configured reconfiguration latency elapses. Off = routes are
    /// never updated (ablation: pure retransmission).
    pub reconfigure: bool,
    /// Route-build parameters for reconfigurations (the root is overridden
    /// by the seed's switch, as a real re-mapping would elect).
    pub db_cfg: RouteDbConfig,
    /// Host the management process runs on; discovery starts here. Falls
    /// back to the lowest-numbered live host if this one is down.
    pub seed_host: HostId,
}

impl Default for FaultOptions {
    fn default() -> Self {
        FaultOptions {
            plan: FaultPlan::new(),
            reconfigure: true,
            db_cfg: RouteDbConfig::default(),
            seed_host: HostId(0),
        }
    }
}

impl FaultOptions {
    pub fn with_plan(plan: FaultPlan) -> FaultOptions {
        FaultOptions {
            plan,
            ..FaultOptions::default()
        }
    }
}

/// Dependability counters for one run. All zeros when the plan is empty.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReliabilityStats {
    pub link_failures: u64,
    pub switch_failures: u64,
    pub host_failures: u64,
    pub repairs: u64,
    /// Packets whose worm was truncated by a fault (each loss counts once).
    pub worms_truncated: u64,
    /// Source retransmissions performed.
    pub retransmissions: u64,
    /// Packets dropped for good (retry budget exhausted, source dead, or
    /// destination unreachable).
    pub dropped_packets: u64,
    /// Messages with at least one dropped packet.
    pub dropped_messages: u64,
    /// Generation attempts suppressed because the destination was
    /// unreachable under the current routing tables.
    pub unreachable_drops: u64,
    /// Successful route rebuilds swapped in.
    pub reconfigurations: u64,
    /// Rebuild attempts that failed (e.g. no live host to map from).
    pub reconfig_failures: u64,
    /// Cycles sources spent stalled waiting for a rebuild.
    pub reconfig_stall_cycles: u64,
    /// Ordered host pairs unable to communicate after the last rebuild.
    pub unreachable_pairs: u64,
}

/// Live fault state inside the simulator (crate-private).
pub(crate) struct FaultRuntime {
    /// The normalized plan.
    pub events: Vec<FaultEvent>,
    /// Cursor into `events`.
    pub next_event: usize,
    pub reconfigure: bool,
    pub db_cfg: RouteDbConfig,
    pub seed_host: HostId,
    /// Faults currently in force.
    pub active: FaultSet,
    /// Host itself powered on (independent of reachability).
    pub host_up: Vec<bool>,
    /// Host powered on *and* reachable under the current routing tables —
    /// the gate for generation and injection.
    pub host_ok: Vec<bool>,
    /// Cycle the pending reconfiguration completes, if one is in flight.
    pub reconfig_due: Option<u64>,
    /// Rebuilt physical routing tables; `None` until the first rebuild.
    pub routes: Option<PhysicalRoutes>,
    pub rel: ReliabilityStats,
}

impl FaultRuntime {
    pub fn new(opts: FaultOptions, n_hosts: usize) -> FaultRuntime {
        let mut plan = opts.plan;
        plan.normalize();
        FaultRuntime {
            events: plan.events,
            next_event: 0,
            reconfigure: opts.reconfigure,
            db_cfg: opts.db_cfg,
            seed_host: opts.seed_host,
            active: FaultSet::new(),
            host_up: vec![true; n_hosts],
            host_ok: vec![true; n_hosts],
            reconfig_due: None,
            routes: None,
            rel: ReliabilityStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_normalizes_by_cycle_keeping_script_order() {
        let mut p = FaultPlan::new();
        p.fail_link(500, LinkId(2))
            .fail_switch(100, SwitchId(1))
            .repair_link(500, LinkId(2))
            .fail_host(100, HostId(3));
        p.normalize();
        let cycles: Vec<u64> = p.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![100, 100, 500, 500]);
        // Stable: the two cycle-500 events keep fail-before-repair order.
        assert!(p.events[2].fail && !p.events[3].fail);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn mtbf_process_is_deterministic_and_alternates() {
        let links = [LinkId(0), LinkId(7)];
        let a = FaultPlan::mtbf_links(&links, 1_000_000, 50_000.0, 10_000.0, 9);
        let b = FaultPlan::mtbf_links(&links, 1_000_000, 50_000.0, 10_000.0, 9);
        assert_eq!(a, b, "same seed must give the same schedule");
        let c = FaultPlan::mtbf_links(&links, 1_000_000, 50_000.0, 10_000.0, 10);
        assert_ne!(a, c, "different seed must give a different schedule");
        assert!(!a.is_empty(), "1M cycles at 50k MTBF should produce events");
        // Per link: strictly increasing cycles, strictly alternating
        // fail/repair starting with a failure.
        for &l in &links {
            let evs: Vec<&FaultEvent> = a
                .events
                .iter()
                .filter(|e| e.target == FaultTarget::Link(l))
                .collect();
            for (i, e) in evs.iter().enumerate() {
                assert_eq!(e.fail, i % 2 == 0, "alternation broken at {i}");
                if i > 0 {
                    assert!(evs[i - 1].cycle <= e.cycle);
                }
            }
        }
    }

    #[test]
    fn single_link_helper() {
        let p = FaultPlan::single_link(LinkId(4), 1_000);
        assert_eq!(
            p.events,
            vec![FaultEvent {
                cycle: 1_000,
                target: FaultTarget::Link(LinkId(4)),
                fail: true
            }]
        );
    }
}
