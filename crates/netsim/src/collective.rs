//! Closed-loop (collective) runs: inject a fixed message set and measure
//! the completion time, instead of driving the network at a fixed rate.

use serde::{Deserialize, Serialize};

use regnet_core::RouteDb;
use regnet_topology::{HostId, Topology};
use regnet_traffic::{Pattern, PatternSpec};

use crate::config::{SimConfig, CYCLE_NS};
use crate::sim::Simulator;

/// Results of one collective phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectiveStats {
    /// Messages in the phase.
    pub messages: usize,
    /// Cycles from the first injection opportunity to the last delivery.
    pub makespan_cycles: u64,
    /// Same in nanoseconds.
    pub makespan_ns: f64,
    /// Mean per-message network latency, ns.
    pub avg_latency_ns: f64,
    /// 99th percentile network latency, ns.
    pub p99_latency_ns: f64,
    /// Mean in-transit buffers per message.
    pub avg_itbs_per_msg: f64,
}

/// Errors from a collective run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CollectiveError {
    /// The phase did not complete within the cycle budget.
    Timeout { budget: u64, undelivered: usize },
    /// The message set was empty.
    Empty,
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectiveError::Timeout {
                budget,
                undelivered,
            } => write!(
                f,
                "collective did not finish within {budget} cycles ({undelivered} packets left)"
            ),
            CollectiveError::Empty => write!(f, "empty message set"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// Run a fixed message set to completion and report the makespan.
///
/// All messages are released at cycle 0 (each host's NIC serialises its own
/// sends, as the real hardware would). `max_cycles` bounds the run; a
/// deadlock-free configuration always terminates well before any sane
/// budget.
pub fn run_collective(
    topo: &Topology,
    db: &RouteDb,
    cfg: SimConfig,
    messages: &[(HostId, HostId)],
    max_cycles: u64,
    seed: u64,
) -> Result<CollectiveStats, CollectiveError> {
    if messages.is_empty() {
        return Err(CollectiveError::Empty);
    }
    // The open-loop generator is disabled; the pattern is a placeholder
    // required by the simulator's constructor.
    let pattern = Pattern::resolve(PatternSpec::Uniform, topo).expect("uniform always resolves");
    let mut sim = Simulator::new(topo, db, &pattern, cfg, 1e-9, seed);
    sim.stop_generation();
    for &(src, dst) in messages {
        sim.schedule_message(src, dst, 0);
    }
    sim.begin_measurement();
    let drained = sim
        .run_until_drained(max_cycles)
        .ok_or(CollectiveError::Timeout {
            budget: max_cycles,
            undelivered: sim.packets_in_flight(),
        })?;
    let stats = sim.end_measurement(drained.max(1));
    debug_assert_eq!(stats.delivered as usize, messages.len());
    Ok(CollectiveStats {
        messages: messages.len(),
        makespan_cycles: drained,
        makespan_ns: drained as f64 * CYCLE_NS,
        avg_latency_ns: stats.avg_latency_ns,
        p99_latency_ns: stats.p99_latency_ns,
        avg_itbs_per_msg: stats.avg_itbs_per_msg,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_core::{RouteDbConfig, RoutingScheme};
    use regnet_topology::gen;
    use regnet_traffic::collectives;

    fn cfg() -> SimConfig {
        SimConfig {
            payload_flits: 64,
            ..SimConfig::default()
        }
    }

    #[test]
    fn broadcast_completes_and_serialises_at_the_root() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let msgs = collectives::broadcast(&topo, HostId(0));
        let stats = run_collective(&topo, &db, cfg(), &msgs, 2_000_000, 1).unwrap();
        assert_eq!(stats.messages, 31);
        // The root's single injection channel serialises 31 packets of
        // ~67 flits: makespan must exceed 31 * 67 cycles.
        assert!(stats.makespan_cycles > 31 * 67);
        assert!(stats.avg_latency_ns > 0.0);
    }

    #[test]
    fn shift_phase_is_fast_and_parallel() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let shift = collectives::shift(&topo, 2);
        let s = run_collective(&topo, &db, cfg(), &shift, 2_000_000, 1).unwrap();
        // Fully parallel permutation: makespan close to a single-message
        // latency, far below the serialised bound.
        assert!(s.makespan_cycles < 3_000, "{}", s.makespan_cycles);
    }

    #[test]
    fn all_to_all_itb_beats_updown_at_scale() {
        // The headline claim in closed-loop form: on the paper-scale torus
        // an all-to-all exchange finishes faster with in-transit buffers
        // (~25% in our measurements). On tiny networks the phase is
        // injection-limited and the schemes tie, so this runs at 8x8.
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let msgs = collectives::all_to_all(&topo);
        let run = |scheme| {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            run_collective(&topo, &db, cfg(), &msgs, 50_000_000, 1)
                .unwrap()
                .makespan_cycles
        };
        let ud = run(RoutingScheme::UpDown);
        let rr = run(RoutingScheme::ItbRr);
        assert!(
            rr < ud,
            "ITB-RR all-to-all ({rr} cycles) should beat UP/DOWN ({ud} cycles)"
        );
    }

    #[test]
    fn empty_set_is_an_error() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        assert_eq!(
            run_collective(&topo, &db, cfg(), &[], 1000, 1).unwrap_err(),
            CollectiveError::Empty
        );
    }

    #[test]
    fn timeout_reports_undelivered() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let msgs = collectives::all_to_all(&topo);
        let err = run_collective(&topo, &db, cfg(), &msgs, 10, 1).unwrap_err();
        match err {
            CollectiveError::Timeout { undelivered, .. } => assert!(undelivered > 0),
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn deterministic() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let msgs = collectives::neighbor_exchange(
            &topo,
            &mut <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5),
        );
        let a = run_collective(&topo, &db, cfg(), &msgs, 2_000_000, 9).unwrap();
        let b = run_collective(&topo, &db, cfg(), &msgs, 2_000_000, 9).unwrap();
        assert_eq!(a.makespan_cycles, b.makespan_cycles);
        assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
    }
}
