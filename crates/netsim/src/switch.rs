//! Per-switch simulation state: input buffers with stop&go flow control,
//! the routing control unit, and output-port arbitration state.

use std::collections::VecDeque;

use crate::channel::{CTL_GO, CTL_STOP};
use crate::config::SimConfig;

/// A packet resident (partially or fully) in one input buffer.
#[derive(Debug)]
pub struct InPkt {
    pub pid: u32,
    /// Flits that will arrive at this input for this packet.
    pub expected: u32,
    pub received: u32,
    /// Flits forwarded to the output (excludes the consumed header byte).
    pub forwarded: u32,
    /// Has the routing control unit removed the first header flit?
    pub header_consumed: bool,
}

impl InPkt {
    /// Flits buffered and ready to forward right now.
    #[inline]
    pub fn available(&self) -> u32 {
        self.received - u32::from(self.header_consumed) - self.forwarded
    }

    /// Has every forwardable flit been forwarded?
    #[inline]
    pub fn done(&self) -> bool {
        self.forwarded == self.expected - 1
    }
}

/// Routing progress of the packet at the head of an input queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadState {
    /// Waiting for the head packet's first flit (or no packet at all).
    Idle,
    /// The routing control unit is processing the header (150 ns).
    Routing { ready: u64 },
    /// Waiting for the requested output port.
    Requesting,
    /// Connected through the crossbar; flits are streaming.
    Granted,
}

/// One switch input port: slack buffer + routing control unit.
#[derive(Debug)]
pub struct InPort {
    /// Channel whose flits arrive here (index into the simulator's channel
    /// table); stop/go symbols are sent back on it.
    pub in_chan: u32,
    /// Buffer occupancy in flits.
    pub occ: u16,
    /// Packets in arrival order; only the head can be routed/forwarded.
    pub queue: VecDeque<InPkt>,
    /// Routing state of `queue[0]`.
    pub head: HeadState,
    /// Output port requested by `queue[0]` (valid once routed).
    pub head_out: u8,
    /// Last flow-control symbol we sent was STOP.
    pub stop_sent: bool,
}

impl InPort {
    pub fn new(in_chan: u32) -> InPort {
        InPort {
            in_chan,
            occ: 0,
            queue: VecDeque::new(),
            head: HeadState::Idle,
            head_out: 0,
            stop_sent: false,
        }
    }

    /// Account one arriving flit; returns `Some(CTL_STOP)` when the STOP
    /// threshold is crossed.
    #[inline]
    pub fn on_flit_in(&mut self, cfg: &SimConfig) -> Option<u8> {
        self.occ += 1;
        debug_assert!(
            self.occ <= cfg.slack_buffer_flits,
            "slack buffer overflow: flow control failed (occ {})",
            self.occ
        );
        if self.occ > cfg.stop_threshold && !self.stop_sent {
            self.stop_sent = true;
            Some(CTL_STOP)
        } else {
            None
        }
    }

    /// Account one flit leaving the buffer (forwarded or consumed); returns
    /// `Some(CTL_GO)` when the GO threshold is crossed.
    #[inline]
    pub fn on_flit_out(&mut self, cfg: &SimConfig) -> Option<u8> {
        debug_assert!(self.occ > 0);
        self.occ -= 1;
        if self.occ < cfg.go_threshold && self.stop_sent {
            self.stop_sent = false;
            Some(CTL_GO)
        } else {
            None
        }
    }

    /// Remove `flits` buffered flits at once (a packet purged after a
    /// fault); returns `Some(CTL_GO)` when the GO threshold is crossed.
    pub fn on_flits_purged(&mut self, flits: u16, cfg: &SimConfig) -> Option<u8> {
        debug_assert!(self.occ >= flits);
        self.occ -= flits;
        if self.occ < cfg.go_threshold && self.stop_sent {
            self.stop_sent = false;
            Some(CTL_GO)
        } else {
            None
        }
    }
}

/// One switch output port.
#[derive(Debug)]
pub struct OutPort {
    /// Channel this port drives.
    pub out_chan: u32,
    /// Input port currently connected through the crossbar.
    pub conn_in: Option<u8>,
    /// STOP received from the downstream receiver.
    pub stopped: bool,
    /// Round-robin pointer for demand-slotted arbitration.
    pub rr: u8,
}

impl OutPort {
    pub fn new(out_chan: u32) -> OutPort {
        OutPort {
            out_chan,
            conn_in: None,
            stopped: false,
            rr: 0,
        }
    }
}

/// All simulation state of one switch.
#[derive(Debug)]
pub struct SwitchState {
    /// Indexed by port; `None` where nothing is connected.
    pub inp: Vec<Option<InPort>>,
    pub outp: Vec<Option<OutPort>>,
    /// Port indices that are actually connected (iteration order for
    /// arbitration).
    pub active_ports: Vec<u8>,
}

impl SwitchState {
    /// No packet resident in any input buffer. Under that condition a
    /// switch-phase visit is provably a no-op — every head is `Idle` (head
    /// state always refers to `queue[0]`) and no crossbar connection is
    /// held (connections are cleared when the worm completes or is
    /// purged) — so the active-set scheduler may retire the switch until
    /// the next flit arrives.
    pub fn is_quiescent(&self) -> bool {
        let quiet = self.inp.iter().flatten().all(|p| p.queue.is_empty());
        debug_assert!(
            !quiet || self.inp.iter().flatten().all(|p| p.head == HeadState::Idle),
            "empty input queues with a non-idle head"
        );
        debug_assert!(
            !quiet || self.outp.iter().flatten().all(|o| o.conn_in.is_none()),
            "empty input queues with a live crossbar connection"
        );
        quiet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_go_thresholds() {
        let cfg = SimConfig::default();
        let mut p = InPort::new(0);
        let mut stop_at = None;
        for i in 1..=60u16 {
            if p.on_flit_in(&cfg) == Some(CTL_STOP) {
                stop_at = Some(i);
                break;
            }
        }
        // STOP when occupancy *exceeds* 56.
        assert_eq!(stop_at, Some(57));
        assert!(p.stop_sent);
        // No repeated STOP while draining slightly.
        let mut go_at = None;
        for i in 1..=60u16 {
            if p.on_flit_out(&cfg) == Some(CTL_GO) {
                go_at = Some(i);
                break;
            }
        }
        // occ 57 -> GO when it drops *below* 40, i.e. at 39 (18 drains).
        assert_eq!(go_at, Some(18));
        assert!(!p.stop_sent);
    }

    #[test]
    fn no_spurious_signals() {
        let cfg = SimConfig::default();
        let mut p = InPort::new(0);
        for _ in 0..20 {
            assert_eq!(p.on_flit_in(&cfg), None);
        }
        for _ in 0..20 {
            assert_eq!(p.on_flit_out(&cfg), None);
        }
    }

    #[test]
    fn inpkt_accounting() {
        let mut pkt = InPkt {
            pid: 1,
            expected: 10,
            received: 1,
            forwarded: 0,
            header_consumed: false,
        };
        assert_eq!(pkt.available(), 1);
        pkt.header_consumed = true;
        assert_eq!(pkt.available(), 0);
        pkt.received = 10;
        assert_eq!(pkt.available(), 9);
        pkt.forwarded = 9;
        assert_eq!(pkt.available(), 0);
        assert!(pkt.done());
    }
}
