//! Event-driven time skipping — the engine behind
//! [`Scheduler::EventDriven`](crate::sched::Scheduler::EventDriven).
//!
//! The active-set scheduler already visits only channels, switches and
//! NICs with work, but it still *ticks every cycle*: at very low load or
//! while a fault-recovery stall empties the network, millions of cycles
//! execute seven empty phases each. This module adds the classic
//! discrete-event shortcut on top of the same wake state: whenever the
//! network is **provably idle** — both wake wheels drained and every
//! active list empty — the run loop computes the earliest future cycle
//! that can possibly have work and jumps the clock straight to it.
//!
//! # Why a skip is effect-free
//!
//! A cycle with no flit in flight, no control symbol in flight, no busy
//! switch and no eligible NIC executes seven phases that touch nothing:
//! the control/arrival phases iterate empty buckets, the switch/NIC
//! phases iterate empty active lists, and generation/fault/observer work
//! only happens at cycles this module treats as *time sources* (below).
//! Jumping over such cycles therefore leaves every piece of simulator
//! state — packet arena, RNGs, counters, digests, journal — exactly as
//! the tick-every-cycle loop would, with two deliberate compensations:
//!
//! * `reconfig_stall_cycles` ticks once per cycle while a
//!   reconfiguration is pending, so a jump of `t - c` cycles adds
//!   `t - c` to it (the jump target is clamped to the reconfiguration
//!   completion, so the whole span is pending time).
//! * `gen_stall_cycles` needs no compensation: a full source queue
//!   implies a non-quiescent NIC, which blocks skipping entirely.
//!
//! # Time sources
//!
//! The jump target is the minimum over every mechanism that can create
//! work at a future cycle out of thin air (i.e. without a flit moving):
//!
//! 1. the NIC wake-up heap (re-injections and retransmission timers
//!    becoming eligible) — [`ActiveSched::next_wake`](crate::sched::ActiveSched::next_wake);
//! 2. per-host open-loop generation (`ceil(next_gen)`) and the head of
//!    the closed-loop `scheduled` queue — excluding hosts currently
//!    failed/unreachable, whose `host_ok` can only flip back at a fault
//!    or reconfiguration cycle, which is itself a time source;
//! 3. the next fault-plan event and the pending reconfiguration
//!    completion;
//! 4. the next telemetry sampling tick (utilization / occupancy /
//!    goodput flush) — the flush must *execute* on schedule so the
//!    sample series stays bit-identical, even when every delta is zero;
//! 5. the watchdog boundary `last_activity + watchdog + 1`, only while
//!    packets are live (the watchdog cannot fire otherwise), so a stall
//!    inside a skipped region still panics at the same cycle;
//! 6. the caller's run limit (`run(cycles)` boundaries are exact, so
//!    `begin`/`end_measurement` land on identical cycles).
//!
//! Skipping happens at the top of `run`/`run_until_drained` — never
//! inside `step` — and the skip telemetry (`skipped_cycles`, the
//! optional skip log) lives outside `RunStats` and the counter registry,
//! so result equality across schedulers is preserved by construction.
//! `tests/proptest_timeskip.rs` checks the quiescence predicate against
//! a tick-every-cycle twin, and the shared harness in `tests/common/`
//! enforces bit-identical results on every paper topology.

use super::Simulator;

impl Simulator<'_> {
    /// Total cycles jumped over by the event-driven driver so far.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Record every `(from, to)` jump for inspection via
    /// [`skip_log`](Simulator::skip_log). Test instrumentation.
    pub fn enable_skip_log(&mut self) {
        self.skip_log = Some(Vec::new());
    }

    /// The jumps recorded since [`enable_skip_log`](Simulator::enable_skip_log):
    /// each entry `(from, to)` means cycles `from..to` were skipped.
    pub fn skip_log(&self) -> &[(u64, u64)] {
        self.skip_log.as_deref().unwrap_or(&[])
    }

    /// If the network is provably idle at the current cycle, jump the
    /// clock to the earliest future cycle that can have work, clamped to
    /// `limit`. No-op unless idle and the target lies ahead.
    pub(crate) fn try_time_skip(&mut self, limit: u64) {
        let Some(sc) = self.sched.as_deref() else {
            return;
        };
        // O(1) quiescence gate: any in-flight flit or control symbol has
        // a wheel entry, and any busy switch or eligible NIC is on an
        // active list. Wake-ups already due but not yet drained are
        // covered by `next_wake` clamping the target to "now".
        if !(sc.wheels_empty() && sc.active_lists_empty()) {
            return;
        }
        let c = self.cycle;
        let t = self.next_cycle_with_work().min(limit);
        if t <= c {
            return;
        }
        if let Some(f) = self.faults.as_deref_mut() {
            // The scan loop ticks the stall counter once per cycle while
            // a reconfiguration is pending; `t` is clamped to the
            // completion cycle, so the whole span counts.
            if f.reconfig_due.is_some() {
                f.rel.reconfig_stall_cycles += t - c;
            }
        }
        self.skipped_cycles += t - c;
        if let Some(log) = &mut self.skip_log {
            log.push((c, t));
        }
        self.cycle = t;
    }

    /// The earliest cycle at which any time source can create work.
    /// `u64::MAX` when nothing is pending (callers clamp to a run limit).
    fn next_cycle_with_work(&self) -> u64 {
        let sc = self.sched.as_deref().expect("event driver without sched");
        let mut t = u64::MAX;
        if let Some(wake) = sc.next_wake() {
            t = t.min(wake);
        }
        for (h, nic) in self.nics.iter().enumerate() {
            if let Some(f) = self.faults.as_deref() {
                // Failed/unreachable hosts generate nothing; `host_ok`
                // can only flip back at a fault or reconfiguration
                // cycle, which is accounted below, and re-enabled hosts
                // get `next_gen` re-seeded at that (executed) cycle.
                if !f.host_ok[h] {
                    continue;
                }
            }
            if let Some(&(at, _)) = nic.scheduled.front() {
                t = t.min(at);
            }
            if nic.next_gen != f64::MAX {
                // Generation fires at the first integer cycle >= next_gen.
                t = t.min(nic.next_gen.max(0.0).ceil() as u64);
            }
        }
        if let Some(f) = self.faults.as_deref() {
            if let Some(ev) = f.events.get(f.next_event) {
                t = t.min(ev.cycle);
            }
            if let Some(due) = f.reconfig_due {
                t = t.min(due);
            }
        }
        if let Some(tr) = self.trace.as_deref() {
            // A flush guarded by `cycle + 1 >= next` executes during
            // cycle `next - 1`.
            t = t.min(tr.next_tick().saturating_sub(1));
        }
        if self.arena.live() > 0 {
            // First cycle the watchdog can trip; quiescence with live
            // packets is exactly the state it exists to catch, so the
            // panic must land on the same cycle as the other schedulers.
            t = t.min(self.last_activity + self.cfg.watchdog_cycles + 1);
        }
        t
    }

    /// Does the *current* cycle have pending work? A raw-state scan,
    /// deliberately independent of the active-set bookkeeping, used by
    /// `tests/proptest_timeskip.rs` to cross-check the quiescence
    /// predicate on a tick-every-cycle twin: no cycle inside a skipped
    /// span may satisfy this.
    ///
    /// "Work" means an effect observable in results: flits or control
    /// symbols in flight, busy switches, NICs with something to send,
    /// generation or scheduled messages due, a fault event or completed
    /// reconfiguration due, a telemetry flush due, or a watchdog trip.
    /// The per-cycle `reconfig_stall_cycles` tick of a *pending*
    /// reconfiguration is excluded — the skip path compensates it
    /// exactly. A partially reassembled `rx` worm is also excluded: its
    /// remaining flits are in flight or at an eligible sender, both
    /// already covered.
    pub fn cycle_has_pending_work(&self) -> bool {
        let c = self.cycle;
        if self
            .channels
            .iter()
            .any(|ch| ch.has_data_in_flight() || ch.has_ctl_in_flight())
        {
            return true;
        }
        if self.switches.iter().any(|sw| !sw.is_quiescent()) {
            return true;
        }
        for (h, nic) in self.nics.iter().enumerate() {
            if !nic.quiescent_for_tx(c) {
                return true;
            }
            let host_ok = self.faults.as_deref().is_none_or(|f| f.host_ok[h]);
            if !host_ok {
                continue;
            }
            if nic.scheduled.front().is_some_and(|&(at, _)| at <= c) {
                return true;
            }
            if nic.next_gen != f64::MAX && nic.next_gen <= c as f64 {
                return true;
            }
        }
        if let Some(f) = self.faults.as_deref() {
            if f.events.get(f.next_event).is_some_and(|ev| ev.cycle <= c) {
                return true;
            }
            if f.reconfig_due.is_some_and(|due| due <= c) {
                return true;
            }
        }
        if let Some(tr) = self.trace.as_deref() {
            if c + 1 >= tr.next_tick() {
                return true;
            }
        }
        if self.arena.live() > 0
            && c - self.last_activity > self.cfg.watchdog_cycles
            && self.nics.iter().all(|n| n.tx.is_none() || n.stopped)
        {
            return true;
        }
        false
    }
}
