//! Cycle-loop scheduling strategies.
//!
//! The simulator's four hot phases (control arrivals, data arrivals,
//! switches, NIC transmission) can be driven four ways:
//!
//! * [`Scheduler::Scan`] — the reference implementation: visit every
//!   channel, switch and NIC on every cycle. Trivially correct, O(network
//!   size) per cycle regardless of load.
//! * [`Scheduler::ActiveSet`] — event-driven: every channel write registers
//!   the channel in a per-cycle timing wheel (the arrival cycle is known at
//!   send time because all channels share one pipeline delay), and
//!   switches/NICs live in dedup'd active lists that members leave only
//!   when provably quiescent. Per cycle the loop touches only components
//!   with work, which at low offered load is a small fraction of the
//!   network.
//! * [`Scheduler::EventDriven`] — the active-set machinery plus discrete
//!   time skipping: whenever both wake wheels are empty, both active lists
//!   are empty and no NIC wake-up is due, the run loop computes the next
//!   cycle at which *anything* can happen (wake heap, generation clocks,
//!   fault plan, reconfiguration deadline, trace sampling, watchdog
//!   boundary) and advances the clock straight to it (see `event.rs`).
//! * [`Scheduler::Parallel`] — shard-parallel: the topology is cut into
//!   `threads` contiguous blocks of a BFS order over the switch graph
//!   (see [`crate::partition`]), each shard runs the active-set machinery
//!   on its own components on a persistent barrier-synchronized worker
//!   pool, and cross-shard effects are buffered and merged in
//!   deterministic channel-id order at the barriers (see `par.rs`).
//!
//! All schedulers are bit-identical: same `RunStats`, counters, event
//! journal and trace digest. The scan loop's observable ordering (channel,
//! switch and NIC index order within each phase) is reproduced by sorting
//! each drained wheel bucket and each active list before visiting it, so
//! the active set is a strict subsequence of the scan order, and the
//! parallel engine's merge keys reproduce the same order shard-blind. The
//! determinism suite runs under any via `REGNET_SCHEDULER`, and the
//! `scheduler_equivalence` integration test diffs all engines end-to-end.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which cycle-loop driver [`crate::Simulator`] uses. See the module docs
/// for the contract between the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Full scan of every component every cycle (reference implementation).
    Scan,
    /// Timing-wheel wake-ups + dedup'd active lists (default; bit-identical
    /// to `Scan`, much faster at low load).
    #[default]
    ActiveSet,
    /// [`Scheduler::ActiveSet`] plus discrete-event time skipping: provably
    /// idle spans are jumped in O(1) instead of ticked cycle by cycle.
    /// Bit-identical to the other engines; near-O(traffic) cost at low
    /// load. See `crates/netsim/src/event.rs` for the skip-safety
    /// argument.
    EventDriven,
    /// Shard-parallel active sets on a persistent worker pool.
    /// Bit-identical to the sequential engines for any `threads`; the
    /// shard count (and therefore every result) is `threads` alone, while
    /// the live OS-thread count is capped at the host's parallelism.
    /// Fault plans run natively: the fault phase executes on the main
    /// thread with the workers parked, and mid-cycle losses are replayed
    /// at a deterministic point after NIC tx (see `par.rs` `# Faults`).
    Parallel {
        /// Shard count; `0` means "auto" ([`crate::threads::threads`]).
        threads: usize,
    },
}

impl Scheduler {
    /// Stable label (bench reports, CI matrix keys). Thread counts are
    /// reported separately (the label identifies the engine).
    pub fn label(self) -> &'static str {
        match self {
            Scheduler::Scan => "scan",
            Scheduler::ActiveSet => "active-set",
            Scheduler::EventDriven => "event",
            Scheduler::Parallel { .. } => "parallel",
        }
    }

    /// Parse a label as written in bench reports or the
    /// `REGNET_SCHEDULER` environment variable. `parallel` uses the shared
    /// `REGNET_THREADS`/detected-parallelism rule; `parallel:<n>` pins the
    /// shard count.
    pub fn parse(s: &str) -> Option<Scheduler> {
        let s = s.trim().to_ascii_lowercase();
        if let Some(n) = s.strip_prefix("parallel:") {
            let threads = n.trim().parse::<usize>().ok().filter(|&n| n >= 1)?;
            return Some(Scheduler::Parallel { threads });
        }
        match s.as_str() {
            "scan" => Some(Scheduler::Scan),
            "active" | "active-set" | "activeset" | "active_set" => Some(Scheduler::ActiveSet),
            "event" | "event-driven" | "eventdriven" | "event_driven" => {
                Some(Scheduler::EventDriven)
            }
            "parallel" => Some(Scheduler::Parallel {
                threads: crate::threads::threads(),
            }),
            _ => None,
        }
    }

    /// The shard count a [`Scheduler::Parallel`] run would use (resolving
    /// `threads: 0` to the auto rule); `None` for the sequential engines.
    pub fn parallel_threads(self) -> Option<usize> {
        match self {
            Scheduler::Parallel { threads } => Some(if threads == 0 {
                crate::threads::threads()
            } else {
                threads
            }),
            _ => None,
        }
    }
}

/// Run-time state of the active-set scheduler.
///
/// Invariants:
/// * A channel index appears in `data_wheel[c % delay]` whenever a flit was
///   written that arrives at cycle `c` (`ctl_wheel` likewise for control
///   symbols). Stale entries (the flit was purged or the cable died after
///   registration) are harmless: the drain finds the slot empty and skips.
/// * `sw_active` holds exactly the switch ids whose `sw_is_active` flag is
///   set; a switch is listed whenever any of its input buffers holds a
///   packet (a switch with empty input queues provably has idle heads and
///   no crossbar connections, so visiting it is a no-op).
/// * `nic_active`/`nic_is_active` likewise; a NIC is listed whenever its
///   transmit phase has work *now* (in-flight tx, queued local packet,
///   ready re-injection or retransmission). Heap entries that become ready
///   in the future are covered by `nic_wake`, which gets an entry at every
///   heap insertion.
#[derive(Debug)]
pub(crate) struct ActiveSched {
    delay: u64,
    data_wheel: Vec<Vec<u32>>,
    ctl_wheel: Vec<Vec<u32>>,
    /// Entries currently parked across all `data_wheel` buckets. Kept so
    /// the event-driven driver can test "both wheels drained" in O(1); the
    /// count covers raw (pre-dedup) entries, which is exactly what makes
    /// zero mean "no bucket holds anything".
    data_entries: usize,
    /// `ctl_wheel` counterpart of `data_entries`.
    ctl_entries: usize,
    /// Recycled bucket storage (capacity reuse across drains).
    spare: Vec<Vec<u32>>,
    sw_active: Vec<u32>,
    sw_is_active: Vec<bool>,
    nic_active: Vec<u32>,
    nic_is_active: Vec<bool>,
    /// `(ready_cycle, host)` wake-ups for NICs whose re-injection or
    /// retransmission becomes eligible in the future.
    nic_wake: BinaryHeap<Reverse<(u64, u32)>>,
}

impl ActiveSched {
    pub fn new(delay: u32, n_switches: usize, n_nics: usize) -> ActiveSched {
        assert!(delay > 0);
        let delay = delay as u64;
        ActiveSched {
            delay,
            data_wheel: (0..delay).map(|_| Vec::new()).collect(),
            ctl_wheel: (0..delay).map(|_| Vec::new()).collect(),
            data_entries: 0,
            ctl_entries: 0,
            spare: Vec::new(),
            sw_active: Vec::new(),
            sw_is_active: vec![false; n_switches],
            nic_active: Vec::new(),
            nic_is_active: vec![false; n_nics],
            nic_wake: BinaryHeap::new(),
        }
    }

    /// A data flit was written on channel `ci` at `cycle`; it arrives at
    /// `cycle + delay`, whose bucket is the same `cycle % delay` index.
    #[inline]
    pub fn note_data(&mut self, cycle: u64, ci: u32) {
        let idx = (cycle % self.delay) as usize;
        self.data_wheel[idx].push(ci);
        self.data_entries += 1;
    }

    /// A control symbol was written on channel `ci` at `cycle`. Same bucket
    /// arithmetic as `note_data` — which also covers the fault-phase case:
    /// a symbol written in phase 0 of cycle `c` lands in the bucket drained
    /// by *this* cycle's control phase, exactly when the scan loop would
    /// read the (shared) slot.
    #[inline]
    pub fn note_ctl(&mut self, cycle: u64, ci: u32) {
        let idx = (cycle % self.delay) as usize;
        self.ctl_wheel[idx].push(ci);
        self.ctl_entries += 1;
    }

    /// Drain the data bucket for `cycle`: sorted and dedup'd so the caller
    /// visits channels in scan (index) order. Return the bucket to
    /// [`recycle`](ActiveSched::recycle) after processing.
    pub fn take_data(&mut self, cycle: u64) -> Vec<u32> {
        let idx = (cycle % self.delay) as usize;
        let empty = self.spare.pop().unwrap_or_default();
        let mut v = std::mem::replace(&mut self.data_wheel[idx], empty);
        self.data_entries -= v.len();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Drain the control bucket for `cycle` (see `take_data`).
    pub fn take_ctl(&mut self, cycle: u64) -> Vec<u32> {
        let idx = (cycle % self.delay) as usize;
        let empty = self.spare.pop().unwrap_or_default();
        let mut v = std::mem::replace(&mut self.ctl_wheel[idx], empty);
        self.ctl_entries -= v.len();
        v.sort_unstable();
        v.dedup();
        v
    }

    pub fn recycle(&mut self, mut bucket: Vec<u32>) {
        bucket.clear();
        self.spare.push(bucket);
    }

    #[inline]
    pub fn activate_switch(&mut self, sw: u32) {
        if !self.sw_is_active[sw as usize] {
            self.sw_is_active[sw as usize] = true;
            self.sw_active.push(sw);
        }
    }

    #[inline]
    pub fn activate_nic(&mut self, h: u32) {
        if !self.nic_is_active[h as usize] {
            self.nic_is_active[h as usize] = true;
            self.nic_active.push(h);
        }
    }

    /// Register a future wake-up for `h` (a heap entry becoming ready at
    /// `ready`). Stale wake-ups (the packet was purged meanwhile) cost one
    /// no-op visit.
    #[inline]
    pub fn wake_nic_at(&mut self, ready: u64, h: u32) {
        self.nic_wake.push(Reverse((ready, h)));
    }

    /// Move every wake-up due at or before `cycle` into the active list.
    pub fn drain_wakes(&mut self, cycle: u64) {
        while let Some(&Reverse((ready, h))) = self.nic_wake.peek() {
            if ready > cycle {
                break;
            }
            self.nic_wake.pop();
            self.activate_nic(h);
        }
    }

    /// Take the switch active list for this cycle's visit; members the
    /// caller retires must be flagged via `retire_switch`, and the
    /// still-active remainder merged back with `merge_switches`.
    pub fn take_active_switches(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.sw_active)
    }

    pub fn retire_switch(&mut self, sw: u32) {
        self.sw_is_active[sw as usize] = false;
    }

    pub fn merge_switches(&mut self, mut kept: Vec<u32>) {
        self.sw_active.append(&mut kept);
    }

    pub fn take_active_nics(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.nic_active)
    }

    pub fn retire_nic(&mut self, h: u32) {
        self.nic_is_active[h as usize] = false;
    }

    pub fn merge_nics(&mut self, mut kept: Vec<u32>) {
        self.nic_active.append(&mut kept);
    }

    // ---- Quiescence accessors for the event-driven driver (`event.rs`).

    /// No flit or control symbol is parked in either wake wheel. O(1).
    pub fn wheels_empty(&self) -> bool {
        self.data_entries == 0 && self.ctl_entries == 0
    }

    /// No switch or NIC is in an active list. O(1).
    pub fn active_lists_empty(&self) -> bool {
        self.sw_active.is_empty() && self.nic_active.is_empty()
    }

    /// Earliest pending NIC wake-up, if any. Stale entries (the packet was
    /// purged meanwhile) still count: waking to a no-op visit is harmless,
    /// and treating the peek as a time bound keeps the skip target
    /// conservative.
    pub fn next_wake(&self) -> Option<u64> {
        self.nic_wake.peek().map(|&Reverse((ready, _))| ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for s in [
            Scheduler::Scan,
            Scheduler::ActiveSet,
            Scheduler::EventDriven,
        ] {
            assert_eq!(Scheduler::parse(s.label()), Some(s));
        }
        assert_eq!(Scheduler::parse("active"), Some(Scheduler::ActiveSet));
        assert_eq!(
            Scheduler::parse("event-driven"),
            Some(Scheduler::EventDriven)
        );
        assert_eq!(Scheduler::parse("nonsense"), None);
        assert_eq!(Scheduler::default(), Scheduler::ActiveSet);
        assert_eq!(Scheduler::EventDriven.parallel_threads(), None);
    }

    #[test]
    fn parallel_parsing() {
        assert_eq!(
            Scheduler::parse("parallel:4"),
            Some(Scheduler::Parallel { threads: 4 })
        );
        assert_eq!(
            Scheduler::parse(" Parallel:2 "),
            Some(Scheduler::Parallel { threads: 2 })
        );
        assert_eq!(Scheduler::parse("parallel:0"), None);
        assert_eq!(Scheduler::parse("parallel:x"), None);
        // Bare "parallel" resolves the thread count via the shared rule.
        let auto = Scheduler::parse("parallel").unwrap();
        assert_eq!(auto.label(), "parallel");
        assert!(auto.parallel_threads().unwrap() >= 1);
        assert_eq!(
            Scheduler::Parallel { threads: 3 }.parallel_threads(),
            Some(3)
        );
        assert_eq!(Scheduler::ActiveSet.parallel_threads(), None);
    }

    #[test]
    fn wheel_buckets_sort_and_dedup() {
        let mut s = ActiveSched::new(4, 1, 1);
        s.note_data(10, 7);
        s.note_data(10, 3);
        s.note_data(10, 7);
        // Cycle 14 maps to the same bucket (10 % 4 == 14 % 4).
        assert_eq!(s.take_data(14), vec![3, 7]);
        let b = s.take_data(14);
        assert!(b.is_empty(), "bucket drained");
        s.recycle(b);
        // Recycled storage is reused.
        s.note_ctl(0, 9);
        assert_eq!(s.take_ctl(4), vec![9]);
    }

    #[test]
    fn active_lists_dedup_and_retire() {
        let mut s = ActiveSched::new(1, 3, 2);
        s.activate_switch(2);
        s.activate_switch(0);
        s.activate_switch(2);
        let list = s.take_active_switches();
        assert_eq!(list, vec![2, 0], "dedup'd, caller sorts");
        s.retire_switch(0);
        s.merge_switches(vec![2]);
        s.activate_switch(0); // re-activation after retire works
        assert_eq!(s.take_active_switches(), vec![2, 0]);
    }

    #[test]
    fn nic_wakes_fire_in_order() {
        let mut s = ActiveSched::new(1, 1, 4);
        s.wake_nic_at(20, 1);
        s.wake_nic_at(10, 3);
        s.wake_nic_at(15, 1);
        s.drain_wakes(9);
        assert!(s.take_active_nics().is_empty());
        s.drain_wakes(15);
        assert_eq!(s.take_active_nics(), vec![3, 1]);
        s.retire_nic(3);
        s.retire_nic(1);
        s.drain_wakes(100);
        assert_eq!(s.take_active_nics(), vec![1], "cycle-20 wake still fires");
    }

    /// Duplicate `(ready, host)` pairs in the future heap must collapse to
    /// one activation: the active list dedups by membership bit, so a host
    /// woken twice for the same cycle appears exactly once.
    #[test]
    fn drain_wakes_duplicate_entries_collapse() {
        let mut s = ActiveSched::new(1, 1, 4);
        s.wake_nic_at(12, 2);
        s.wake_nic_at(12, 2);
        s.wake_nic_at(12, 2);
        s.wake_nic_at(12, 0);
        s.drain_wakes(12);
        // Ties on `ready` pop in host order: (12, 0) before (12, 2).
        assert_eq!(s.take_active_nics(), vec![0, 2]);
        // The heap is fully drained: nothing left to fire later.
        assert_eq!(s.next_wake(), None);
        s.drain_wakes(1_000);
        assert!(s.take_active_nics().is_empty());
    }

    /// A stale wake-up — one scheduled for a packet that has since been
    /// purged — still fires, putting the NIC on the active list; the NIC
    /// phase then finds nothing to do and retires it. The scheduler layer
    /// must tolerate this (wakes are hints, not obligations) and the
    /// retire must not cancel *future* wakes for the same host.
    #[test]
    fn stale_wake_after_purge_is_harmless() {
        let mut s = ActiveSched::new(1, 1, 4);
        s.wake_nic_at(10, 1); // retransmit timer, packet later purged
        s.wake_nic_at(30, 1); // unrelated later wake for the same host
        s.drain_wakes(10);
        assert_eq!(s.take_active_nics(), vec![1]);
        s.retire_nic(1); // NIC phase found nothing to do
        assert_eq!(s.next_wake(), Some(30), "future wake survives the retire");
        s.drain_wakes(30);
        assert_eq!(s.take_active_nics(), vec![1]);
    }

    /// Wheel wraparound at slot boundaries: with delay d, cycles c and
    /// c + d share a bucket. Entries noted for the *next* lap must be
    /// visible when that lap's cycle drains the slot, and a drain at
    /// cycle c must hand over everything in the bucket (the simulator
    /// never notes more than one lap ahead, so this is safe).
    #[test]
    fn wheel_wraparound_at_slot_boundaries() {
        let mut s = ActiveSched::new(3, 1, 1);
        // Slot 0 holds cycles 0, 3, 6, ...
        s.note_data(3, 5);
        assert!(!s.wheels_empty());
        assert_eq!(s.take_data(3), vec![5]);
        assert!(s.wheels_empty());
        // Next lap reuses the slot cleanly after a drain.
        s.note_data(6, 8);
        s.note_data(6, 2);
        assert_eq!(s.take_data(6), vec![2, 8]);
        // The last slot wraps to cycle delay-1 + k*delay.
        s.note_ctl(2, 4);
        s.note_ctl(5, 1);
        assert_eq!(s.take_ctl(5), vec![1, 4], "same slot, both laps drain");
        assert!(s.wheels_empty());
    }

    /// The O(1) quiescence accessors used by the event-driven driver:
    /// raw entry counters track note/take exactly, including dup'd
    /// entries that dedup would hide.
    #[test]
    fn quiescence_accessors_track_raw_entries() {
        let mut s = ActiveSched::new(4, 2, 2);
        assert!(s.wheels_empty());
        assert!(s.active_lists_empty());
        assert_eq!(s.next_wake(), None);
        s.note_data(1, 6);
        s.note_data(1, 6); // duplicate still counts until drained
        s.note_ctl(2, 3);
        assert!(!s.wheels_empty());
        assert_eq!(s.take_data(1), vec![6]);
        assert!(!s.wheels_empty(), "ctl entry still pending");
        assert_eq!(s.take_ctl(2), vec![3]);
        assert!(s.wheels_empty());
        s.activate_nic(1);
        assert!(!s.active_lists_empty());
        s.retire_nic(1);
        // Retire clears membership but the id stays queued until taken.
        s.take_active_nics();
        assert!(s.active_lists_empty());
        s.wake_nic_at(40, 0);
        s.wake_nic_at(25, 1);
        assert_eq!(s.next_wake(), Some(25));
    }
}
