//! Run-time telemetry for the simulator: pluggable observers that are
//! zero-cost when disabled.
//!
//! The simulator owns an `Option<Box<TraceState>>`; with tracing disabled
//! every hook in the hot path is a single `is_some` branch. When enabled
//! (see [`TraceOptions`]), the engine records:
//!
//! - **per-channel utilization time series** — busy cycles per channel per
//!   fixed-size bucket of cycles (the paper's Figures 8/9/11 show only the
//!   end-of-window average; the series shows how utilization evolves);
//! - **packet lifetime histogram** — injection → delivery, per message;
//! - **ITB re-injection latency histogram** — ejection at an in-transit
//!   host → first re-injected flit (includes the 275 ns detection, the
//!   200 ns DMA programming and any queueing at the re-injecting NIC);
//! - **ITB pool occupancy time series** — total reserved pool flits across
//!   all NICs, sampled on a fixed interval;
//! - **trace digest** — an order-sensitive FNV-1a fold of every
//!   delivered-message event `(cycle, src, dst, payload, itbs)`. Two runs
//!   of the same seeded configuration must produce identical digests; the
//!   determinism regression suite is built on this.

use serde::{Deserialize, Serialize};

use regnet_metrics::Histogram;

use crate::channel::Channel;
use crate::counters::{CounterSnapshot, Counters};
use crate::nic::Nic;

/// Which observers to enable. `Default` is everything off — the simulator
/// then allocates no trace state at all.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceOptions {
    /// Sample per-channel busy cycles every this many cycles.
    pub channel_util_interval: Option<u64>,
    /// Record message lifetime and ITB re-injection latency histograms.
    pub packet_lifetimes: bool,
    /// Sample total ITB pool occupancy every this many cycles.
    pub itb_occupancy_interval: Option<u64>,
    /// Fold delivered-message events into a stable digest.
    pub digest: bool,
    /// Bucket delivered payload flits every this many cycles (goodput time
    /// series; shows the dip and recovery around a fault).
    pub goodput_interval: Option<u64>,
    /// Sample the unified metrics row (live packets, ITB pool flits, the
    /// 19 event counters) every this many cycles.
    pub metrics_interval: Option<u64>,
}

impl TraceOptions {
    /// Anything enabled?
    pub fn any(&self) -> bool {
        self.channel_util_interval.is_some()
            || self.packet_lifetimes
            || self.itb_occupancy_interval.is_some()
            || self.digest
            || self.goodput_interval.is_some()
            || self.metrics_interval.is_some()
    }

    /// Only the determinism digest (cheapest useful observer).
    pub fn digest_only() -> TraceOptions {
        TraceOptions {
            digest: true,
            ..TraceOptions::default()
        }
    }

    /// Every observer on, with both time series sampled every
    /// `interval` cycles.
    pub fn full(interval: u64) -> TraceOptions {
        assert!(interval > 0, "trace interval must be positive");
        TraceOptions {
            channel_util_interval: Some(interval),
            packet_lifetimes: true,
            itb_occupancy_interval: Some(interval),
            digest: true,
            goodput_interval: Some(interval),
            metrics_interval: Some(interval),
        }
    }
}

/// Busy-cycle time series for every directed channel, bucketed on a fixed
/// interval. `busy[ch][b]` is the number of busy cycles of channel `ch`
/// during bucket `b`; divide by `interval` for utilization in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelUtilSeries {
    pub interval: u64,
    pub buckets: u64,
    pub busy: Vec<Vec<u32>>,
}

/// Total ITB pool occupancy (reserved flits over all NICs), sampled every
/// `interval` cycles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OccupancySeries {
    pub interval: u64,
    pub samples: Vec<u64>,
    pub max: u64,
}

/// Delivered payload flits per bucket of `interval` cycles. Divide by
/// `interval` for goodput in flits/cycle; a fault shows up as a dip, the
/// reconfiguration as the recovery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoodputSeries {
    pub interval: u64,
    pub samples: Vec<u64>,
}

/// One row of the unified metrics series: every column of
/// [`MetricsSeries::names`] sampled at the end of `cycle`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSample {
    /// The cycle the row was sampled at (end-of-cycle).
    pub cycle: u64,
    /// One value per [`MetricsSeries::names`] column.
    pub values: Vec<u64>,
}

/// Fixed-column metrics time series sampled in the cycle domain: live
/// packets, total ITB pool flits and the 19 event counters (cumulative
/// since the last counter reset; zero columns when the counter registry
/// is off). The column layout is fixed so the series is deterministic
/// regardless of which observers are enabled.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSeries {
    pub interval: u64,
    pub names: Vec<String>,
    pub samples: Vec<MetricsSample>,
}

impl MetricsSeries {
    /// Column names of every series: the two gauges, then the 19 counters.
    pub fn column_names() -> Vec<String> {
        let mut names = vec!["live_packets".to_string(), "itb_pool_flits".to_string()];
        names.extend(CounterSnapshot::NAMES.iter().map(|s| s.to_string()));
        names
    }

    /// One JSON object per sample, e.g.
    /// `{"cycle":4999,"live_packets":3,...}` — loadable row-by-row without
    /// holding the whole series.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str("{\"cycle\":");
            out.push_str(&s.cycle.to_string());
            for (name, v) in self.names.iter().zip(&s.values) {
                out.push_str(",\"");
                out.push_str(name);
                out.push_str("\":");
                out.push_str(&v.to_string());
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Quantile summary of one histogramed latency population (cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    pub count: u64,
    pub p50_cycles: u64,
    pub p99_cycles: u64,
    pub max_cycles: u64,
}

impl LatencySummary {
    fn from_histogram(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            p50_cycles: h.quantile(0.5),
            p99_cycles: h.quantile(0.99),
            max_cycles: h.quantile(1.0),
        }
    }
}

/// Everything the enabled observers recorded, snapshot at collection time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceReport {
    /// FNV-1a fold of delivered-message events; `None` when the digest
    /// observer was off.
    pub digest: Option<u64>,
    /// Number of events folded into the digest.
    pub digest_events: u64,
    pub channel_util: Option<ChannelUtilSeries>,
    pub itb_occupancy: Option<OccupancySeries>,
    pub goodput: Option<GoodputSeries>,
    /// Injection → delivery, per message.
    pub lifetime: Option<LatencySummary>,
    /// ITB ejection → re-injection start, per in-transit hop.
    pub reinject_latency: Option<LatencySummary>,
    /// Unified metrics series, present when `metrics_interval` was set.
    pub metrics: Option<MetricsSeries>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Live observer state, boxed inside the simulator when tracing is on.
#[derive(Debug)]
pub(crate) struct TraceState {
    opts: TraceOptions,
    // Channel-utilization series.
    util_next_flush: u64,
    util_snapshot: Vec<u64>,
    util_busy: Vec<Vec<u32>>,
    util_buckets: u64,
    // Pool-occupancy series.
    occ_next_sample: u64,
    occ_samples: Vec<u64>,
    occ_max: u64,
    // Goodput series.
    goodput_next_flush: u64,
    goodput_acc: u64,
    goodput_samples: Vec<u64>,
    // Unified metrics series.
    met_next_flush: u64,
    met_samples: Vec<MetricsSample>,
    // Latency histograms.
    lifetime: Histogram,
    reinject: Histogram,
    /// pid -> cycle the in-transit NIC started processing the packet.
    reinject_pending: std::collections::HashMap<u32, u64>,
    // Digest.
    digest: u64,
    digest_events: u64,
}

impl TraceState {
    pub(crate) fn new(opts: TraceOptions, n_channels: usize) -> TraceState {
        let track_util = opts.channel_util_interval.is_some();
        TraceState {
            util_next_flush: opts.channel_util_interval.unwrap_or(u64::MAX),
            util_snapshot: if track_util {
                vec![0; n_channels]
            } else {
                Vec::new()
            },
            util_busy: if track_util {
                vec![Vec::new(); n_channels]
            } else {
                Vec::new()
            },
            util_buckets: 0,
            occ_next_sample: opts.itb_occupancy_interval.unwrap_or(u64::MAX),
            occ_samples: Vec::new(),
            occ_max: 0,
            goodput_next_flush: opts.goodput_interval.unwrap_or(u64::MAX),
            goodput_acc: 0,
            goodput_samples: Vec::new(),
            met_next_flush: opts.metrics_interval.unwrap_or(u64::MAX),
            met_samples: Vec::new(),
            lifetime: Histogram::new(),
            reinject: Histogram::new(),
            reinject_pending: std::collections::HashMap::new(),
            digest: FNV_OFFSET,
            digest_events: 0,
            opts,
        }
    }

    #[inline]
    fn fold(&mut self, word: u64) {
        // FNV-1a over the 8 bytes of `word`.
        let mut h = self.digest;
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.digest = h;
    }

    /// A message was fully delivered.
    pub(crate) fn on_message_delivered(
        &mut self,
        cycle: u64,
        src: u32,
        dst: u32,
        payload_flits: u64,
        itbs: u64,
        inject_cycle: u64,
    ) {
        if self.opts.digest {
            self.fold(cycle);
            self.fold(((src as u64) << 32) | dst as u64);
            self.fold(payload_flits);
            self.fold(itbs);
            self.digest_events += 1;
        }
        if self.opts.packet_lifetimes && inject_cycle != u64::MAX && cycle >= inject_cycle {
            self.lifetime.record(cycle - inject_cycle);
        }
        if self.opts.goodput_interval.is_some() {
            self.goodput_acc += payload_flits;
        }
    }

    /// A packet was ejected into an in-transit buffer (`cycle` is when the
    /// NIC began the detection + DMA processing).
    pub(crate) fn on_itb_eject(&mut self, cycle: u64, pid: u32) {
        if self.opts.packet_lifetimes {
            self.reinject_pending.insert(pid, cycle);
        }
    }

    /// A previously ejected packet started re-injecting.
    pub(crate) fn on_reinject_start(&mut self, cycle: u64, pid: u32) {
        if self.opts.packet_lifetimes {
            if let Some(eject) = self.reinject_pending.remove(&pid) {
                self.reinject.record(cycle.saturating_sub(eject));
            }
        }
    }

    /// Called once per cycle from `Simulator::step` (the only per-cycle
    /// cost; everything else is event-driven). `live_packets` is the
    /// arena's live-packet count; `counters` is the simulator's counter
    /// registry when enabled (snapshot only on a metrics flush).
    pub(crate) fn on_cycle_end(
        &mut self,
        cycle: u64,
        channels: &[Channel],
        nics: &[Nic],
        live_packets: u64,
        counters: Option<&Counters>,
    ) {
        if cycle + 1 >= self.util_next_flush {
            let interval = self.opts.channel_util_interval.unwrap_or(u64::MAX);
            for (i, ch) in channels.iter().enumerate() {
                let now = ch.busy_cycles;
                let delta = now.saturating_sub(self.util_snapshot[i]);
                self.util_snapshot[i] = now;
                self.util_busy[i].push(delta.min(interval) as u32);
            }
            self.util_buckets += 1;
            self.util_next_flush = self.util_next_flush.saturating_add(interval);
        }
        if cycle + 1 >= self.occ_next_sample {
            let total: u64 = nics.iter().map(|n| n.pool_used as u64).sum();
            self.occ_max = self.occ_max.max(total);
            self.occ_samples.push(total);
            self.occ_next_sample = self
                .occ_next_sample
                .saturating_add(self.opts.itb_occupancy_interval.unwrap_or(u64::MAX));
        }
        if cycle + 1 >= self.goodput_next_flush {
            self.goodput_samples.push(self.goodput_acc);
            self.goodput_acc = 0;
            self.goodput_next_flush = self
                .goodput_next_flush
                .saturating_add(self.opts.goodput_interval.unwrap_or(u64::MAX));
        }
        if cycle + 1 >= self.met_next_flush {
            let pool: u64 = nics.iter().map(|n| n.pool_used as u64).sum();
            let mut values = Vec::with_capacity(2 + CounterSnapshot::NAMES.len());
            values.push(live_packets);
            values.push(pool);
            match counters {
                // Fixed column layout: zeros when the registry is off, so
                // the series shape never depends on other observers.
                Some(c) => values.extend(c.snapshot().as_pairs().iter().map(|&(_, v)| v)),
                None => values.extend(std::iter::repeat_n(0, CounterSnapshot::NAMES.len())),
            }
            self.met_samples.push(MetricsSample { cycle, values });
            self.met_next_flush = self
                .met_next_flush
                .saturating_add(self.opts.metrics_interval.unwrap_or(u64::MAX));
        }
    }

    /// The earliest cycle boundary at which `on_cycle_end` will flush a
    /// sample. A flush guarded by `cycle + 1 >= next` executes during cycle
    /// `next - 1`, so the event-driven driver clamps its skip target to
    /// `next_tick() - 1`. `u64::MAX` when no sampling observer is armed.
    pub(crate) fn next_tick(&self) -> u64 {
        self.util_next_flush
            .min(self.occ_next_sample)
            .min(self.goodput_next_flush)
            .min(self.met_next_flush)
    }

    /// The measurement window restarted and channel busy counters were
    /// reset; re-baseline the utilization snapshots.
    pub(crate) fn on_busy_reset(&mut self) {
        for s in &mut self.util_snapshot {
            *s = 0;
        }
    }

    /// Snapshot everything recorded so far.
    pub(crate) fn report(&self) -> TraceReport {
        TraceReport {
            digest: self.opts.digest.then_some(self.digest),
            digest_events: self.digest_events,
            channel_util: self
                .opts
                .channel_util_interval
                .map(|interval| ChannelUtilSeries {
                    interval,
                    buckets: self.util_buckets,
                    busy: self.util_busy.clone(),
                }),
            itb_occupancy: self
                .opts
                .itb_occupancy_interval
                .map(|interval| OccupancySeries {
                    interval,
                    samples: self.occ_samples.clone(),
                    max: self.occ_max,
                }),
            goodput: self.opts.goodput_interval.map(|interval| GoodputSeries {
                interval,
                samples: self.goodput_samples.clone(),
            }),
            lifetime: self
                .opts
                .packet_lifetimes
                .then(|| LatencySummary::from_histogram(&self.lifetime)),
            reinject_latency: self
                .opts
                .packet_lifetimes
                .then(|| LatencySummary::from_histogram(&self.reinject)),
            metrics: self.opts.metrics_interval.map(|interval| MetricsSeries {
                interval,
                names: MetricsSeries::column_names(),
                samples: self.met_samples.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_default_off() {
        let o = TraceOptions::default();
        assert!(!o.any());
        assert!(TraceOptions::digest_only().any());
        assert!(TraceOptions::full(100).any());
    }

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = TraceState::new(TraceOptions::digest_only(), 0);
        let mut b = TraceState::new(TraceOptions::digest_only(), 0);
        a.on_message_delivered(10, 1, 2, 64, 0, 5);
        a.on_message_delivered(11, 3, 4, 64, 1, 6);
        b.on_message_delivered(11, 3, 4, 64, 1, 6);
        b.on_message_delivered(10, 1, 2, 64, 0, 5);
        let (ra, rb) = (a.report(), b.report());
        assert_eq!(ra.digest_events, 2);
        assert_ne!(ra.digest, rb.digest, "digest must be order-sensitive");
        // And equal histories agree.
        let mut c = TraceState::new(TraceOptions::digest_only(), 0);
        c.on_message_delivered(10, 1, 2, 64, 0, 5);
        c.on_message_delivered(11, 3, 4, 64, 1, 6);
        assert_eq!(a.report().digest, c.report().digest);
    }

    #[test]
    fn reinject_latency_pairs_eject_with_start() {
        let mut t = TraceState::new(
            TraceOptions {
                packet_lifetimes: true,
                ..TraceOptions::default()
            },
            0,
        );
        t.on_itb_eject(100, 7);
        t.on_reinject_start(175, 7);
        // Unmatched start is ignored.
        t.on_reinject_start(300, 99);
        let r = t.report();
        let lat = r.reinject_latency.unwrap();
        assert_eq!(lat.count, 1);
        assert!(lat.p50_cycles <= 75 && lat.max_cycles >= 64);
    }

    #[test]
    fn report_disabled_sections_absent() {
        let t = TraceState::new(TraceOptions::digest_only(), 4);
        let r = t.report();
        assert!(r.channel_util.is_none());
        assert!(r.itb_occupancy.is_none());
        assert!(r.goodput.is_none());
        assert!(r.lifetime.is_none());
        assert!(r.digest.is_some());
    }

    #[test]
    fn goodput_buckets_delivered_payload() {
        let mut t = TraceState::new(
            TraceOptions {
                goodput_interval: Some(100),
                ..TraceOptions::default()
            },
            0,
        );
        for c in 0..250u64 {
            if c == 10 || c == 50 {
                t.on_message_delivered(c, 0, 1, 64, 0, 5);
            }
            if c == 150 {
                t.on_message_delivered(c, 2, 3, 32, 0, 5);
            }
            t.on_cycle_end(c, &[], &[], 0, None);
        }
        let g = t.report().goodput.unwrap();
        assert_eq!(g.interval, 100);
        assert_eq!(g.samples, vec![128, 32]);
    }

    #[test]
    fn metrics_series_samples_on_the_interval() {
        let mut t = TraceState::new(
            TraceOptions {
                metrics_interval: Some(100),
                ..TraceOptions::default()
            },
            0,
        );
        assert_eq!(t.next_tick(), 100);
        for c in 0..250u64 {
            t.on_cycle_end(c, &[], &[], c, None);
        }
        let m = t.report().metrics.unwrap();
        assert_eq!(m.interval, 100);
        assert_eq!(m.names.len(), 2 + CounterSnapshot::NAMES.len());
        assert_eq!(m.names[0], "live_packets");
        // The flush guarded by `cycle + 1 >= next` runs during cycle 99/199.
        assert_eq!(m.samples.len(), 2);
        assert_eq!(m.samples[0].cycle, 99);
        assert_eq!(m.samples[0].values[0], 99);
        assert_eq!(m.samples[1].cycle, 199);
        // Counter columns are present but zero when the registry is off.
        assert!(m.samples[0].values[2..].iter().all(|&v| v == 0));
        let jsonl = m.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.starts_with("{\"cycle\":99,\"live_packets\":99,"));
    }
}
