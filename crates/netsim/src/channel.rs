//! Unidirectional pipelined channels with reverse-direction stop/go control.

use crate::packet::NO_PACKET;

/// Who receives the data flits of a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receiver {
    /// A switch input buffer.
    SwitchIn { sw: u32, port: u8 },
    /// A host NIC.
    Nic { host: u32 },
}

/// Who drives the data flits of a channel (and therefore receives its
/// stop/go control flits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sender {
    /// A switch output port.
    SwitchOut { sw: u32, port: u8 },
    /// A host NIC.
    Nic { host: u32 },
}

/// Stop/go control symbols travelling against the data direction.
pub const CTL_NONE: u8 = 0;
pub const CTL_STOP: u8 = 1;
pub const CTL_GO: u8 = 2;

/// One unidirectional channel: a delay line of `delay` flit slots, plus a
/// parallel delay line for stop/go control symbols flowing the opposite way
/// (Myrinet encodes control symbols inline; they do not consume data
/// bandwidth).
#[derive(Debug)]
pub struct Channel {
    pub sender: Sender,
    pub receiver: Receiver,
    delay: u32,
    /// `data[c % delay]` is the flit that *arrives* at cycle `c`; a flit
    /// written at cycle `c` (same index, after the arrival was consumed)
    /// arrives at `c + delay`.
    data: Box<[u32]>,
    /// Same discipline for control symbols (written by the receiver side,
    /// read by the sender side).
    ctl: Box<[u8]>,
    /// Data flits observed during the measurement window (utilization).
    pub busy_cycles: u64,
    /// A dead channel drops every flit offered to it (cable fault).
    dead: bool,
    /// Cycle of the last `send_ctl`, used by the call-order check: a slot
    /// may only be overwritten by a second symbol sent in the *same* cycle
    /// (a deliberate supersede); anything else would silently destroy an
    /// undelivered symbol.
    ctl_written_at: u64,
}

impl Channel {
    pub fn new(sender: Sender, receiver: Receiver, delay: u32) -> Channel {
        assert!(delay > 0);
        Channel {
            sender,
            receiver,
            delay,
            data: vec![NO_PACKET; delay as usize].into_boxed_slice(),
            ctl: vec![CTL_NONE; delay as usize].into_boxed_slice(),
            busy_cycles: 0,
            dead: false,
            ctl_written_at: 0,
        }
    }

    #[inline]
    fn slot(&self, cycle: u64) -> usize {
        (cycle % self.delay as u64) as usize
    }

    /// Take the data flit arriving this cycle (if any), freeing the slot.
    #[inline]
    pub fn take_arrival(&mut self, cycle: u64) -> Option<u32> {
        let s = self.slot(cycle);
        let v = self.data[s];
        if v == NO_PACKET {
            None
        } else {
            self.data[s] = NO_PACKET;
            self.busy_cycles += 1;
            Some(v)
        }
    }

    /// Send one flit of `packet`; it will arrive `delay` cycles from now.
    /// Must be called after `take_arrival` for the same cycle. A dead
    /// channel silently eats the flit — the sender cannot tell (Myrinet
    /// links carry no acknowledgement; loss is detected end-to-end).
    #[inline]
    pub fn send(&mut self, cycle: u64, packet: u32) {
        if self.dead {
            return;
        }
        let s = self.slot(cycle);
        debug_assert_eq!(self.data[s], NO_PACKET, "channel slot collision");
        self.data[s] = packet;
    }

    /// Take the control symbol arriving this cycle.
    #[inline]
    pub fn take_ctl_arrival(&mut self, cycle: u64) -> u8 {
        let s = self.slot(cycle);
        let v = self.ctl[s];
        self.ctl[s] = CTL_NONE;
        v
    }

    /// Emit a stop/go symbol towards the sender; arrives `delay` cycles
    /// from now. Control symbols die with the cable too.
    ///
    /// Must be called after [`take_ctl_arrival`](Channel::take_ctl_arrival)
    /// for the same cycle: the write reuses the slot the current cycle's
    /// arrival occupies, so calling out of order would silently drop that
    /// symbol. The only legal overwrite is superseding a symbol sent
    /// earlier in the *same* cycle (e.g. a purge's GO replacing this
    /// cycle's STOP), which the debug assertion below permits.
    #[inline]
    pub fn send_ctl(&mut self, cycle: u64, symbol: u8) {
        if self.dead {
            return;
        }
        let s = self.slot(cycle);
        debug_assert!(
            self.ctl[s] == CTL_NONE || self.ctl_written_at == cycle,
            "send_ctl would clobber an undelivered control symbol \
             (call take_ctl_arrival for this cycle first)"
        );
        self.ctl[s] = symbol;
        self.ctl_written_at = cycle;
    }

    /// Any data flits still in flight?
    pub fn has_data_in_flight(&self) -> bool {
        self.data.iter().any(|&v| v != NO_PACKET)
    }

    /// Any control symbols (STOP/GO/purge) still in flight? Used by the
    /// event-driven driver's pending-work oracle.
    pub fn has_ctl_in_flight(&self) -> bool {
        self.ctl.iter().any(|&v| v != CTL_NONE)
    }

    /// Reset the utilization counter (start of the measurement window).
    pub fn reset_busy(&mut self) {
        self.busy_cycles = 0;
    }

    /// Kill the channel: every in-flight flit is lost. Returns the distinct
    /// packet ids whose flits were destroyed (the victims' worms have been
    /// truncated — the upstream state must be purged by the caller).
    pub fn fail(&mut self) -> Vec<u32> {
        self.dead = true;
        let mut victims: Vec<u32> = self
            .data
            .iter()
            .copied()
            .filter(|&v| v != NO_PACKET)
            .collect();
        victims.sort_unstable();
        victims.dedup();
        self.data.fill(NO_PACKET);
        self.ctl.fill(CTL_NONE);
        victims
    }

    /// Drop every in-flight flit of one packet (its worm is being purged
    /// after a fault elsewhere on its path).
    pub fn purge(&mut self, pid: u32) {
        for slot in self.data.iter_mut() {
            if *slot == pid {
                *slot = NO_PACKET;
            }
        }
    }

    /// Bring a repaired channel back into service, empty.
    pub fn repair(&mut self) {
        self.dead = false;
        self.data.fill(NO_PACKET);
        self.ctl.fill(CTL_NONE);
    }

    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// Raw-pointer projections for the shard-parallel engine (`crate::par`).
///
/// Within one region of a parallel cycle a channel can be touched by two
/// shards at once, but always through *disjoint fields*: the shard owning
/// the receiver drains `data`/`busy_cycles` while the shard owning the
/// sender drains `ctl`, and in the switch/NIC region the channel's unique
/// data sender writes `data` while the receiving in-port's shard writes
/// `ctl`/`ctl_written_at`. These helpers therefore never materialize a
/// `&mut Channel`; each accesses only the fields named in its body
/// (`sender`, `receiver` and `delay` are immutable; `dead` mutates only
/// in the fault phase, which runs on the main thread with the workers
/// parked). Keep them in lockstep with the methods above.
pub(crate) mod raw {
    use super::{Channel, CTL_NONE};
    use crate::packet::NO_PACKET;

    #[inline]
    unsafe fn slot(c: *const Channel, cycle: u64) -> usize {
        (cycle % (*c).delay as u64) as usize
    }

    /// Mirror of [`Channel::take_arrival`].
    #[inline]
    pub(crate) unsafe fn take_arrival(c: *mut Channel, cycle: u64) -> Option<u32> {
        let s = slot(c, cycle);
        let v = (*c).data[s];
        if v == NO_PACKET {
            None
        } else {
            (*c).data[s] = NO_PACKET;
            (*c).busy_cycles += 1;
            Some(v)
        }
    }

    /// Mirror of [`Channel::send`].
    #[inline]
    pub(crate) unsafe fn send(c: *mut Channel, cycle: u64, packet: u32) {
        if (*c).dead {
            return;
        }
        let s = slot(c, cycle);
        debug_assert_eq!((*c).data[s], NO_PACKET, "channel slot collision");
        (*c).data[s] = packet;
    }

    /// Mirror of [`Channel::is_dead`]. `dead` only changes in the fault
    /// phase (main thread, workers parked), so reading it from a region
    /// is race-free.
    #[inline]
    pub(crate) unsafe fn is_dead(c: *const Channel) -> bool {
        (*c).dead
    }

    /// Mirror of [`Channel::take_ctl_arrival`].
    #[inline]
    pub(crate) unsafe fn take_ctl_arrival(c: *mut Channel, cycle: u64) -> u8 {
        let s = slot(c, cycle);
        let v = (*c).ctl[s];
        (*c).ctl[s] = CTL_NONE;
        v
    }

    /// Mirror of [`Channel::send_ctl`].
    #[inline]
    pub(crate) unsafe fn send_ctl(c: *mut Channel, cycle: u64, symbol: u8) {
        if (*c).dead {
            return;
        }
        let s = slot(c, cycle);
        debug_assert!(
            (*c).ctl[s] == CTL_NONE || (*c).ctl_written_at == cycle,
            "send_ctl would clobber an undelivered control symbol \
             (call take_ctl_arrival for this cycle first)"
        );
        (*c).ctl[s] = symbol;
        (*c).ctl_written_at = cycle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> Channel {
        Channel::new(
            Sender::Nic { host: 0 },
            Receiver::SwitchIn { sw: 0, port: 0 },
            8,
        )
    }

    #[test]
    fn flit_takes_delay_cycles() {
        let mut c = chan();
        c.send(100, 42);
        for cyc in 101..108 {
            assert_eq!(c.take_arrival(cyc), None);
        }
        assert_eq!(c.take_arrival(108), Some(42));
        assert_eq!(c.take_arrival(108), None, "slot freed after take");
        assert!(!c.has_data_in_flight());
    }

    #[test]
    fn back_to_back_flits() {
        let mut c = chan();
        for i in 0..20u64 {
            // Receiver first, sender second, every cycle.
            let got = c.take_arrival(i);
            if i >= 8 {
                assert_eq!(got, Some((i - 8) as u32));
            } else {
                assert_eq!(got, None);
            }
            c.send(i, i as u32);
        }
        assert_eq!(c.busy_cycles, 12);
    }

    #[test]
    fn control_symbols_travel_independently() {
        let mut c = chan();
        c.send(50, 7);
        c.send_ctl(50, CTL_STOP);
        assert_eq!(c.take_ctl_arrival(57), CTL_NONE);
        assert_eq!(c.take_ctl_arrival(58), CTL_STOP);
        assert_eq!(c.take_ctl_arrival(58), CTL_NONE);
        assert_eq!(c.take_arrival(58), Some(7));
    }

    #[test]
    #[should_panic(expected = "slot collision")]
    fn double_send_panics_in_debug() {
        let mut c = chan();
        c.send(10, 1);
        c.send(10, 2);
    }

    #[test]
    #[should_panic(expected = "undelivered control symbol")]
    fn misordered_ctl_send_panics_in_debug() {
        let mut c = chan();
        c.send_ctl(10, CTL_STOP);
        // Cycle 18 reuses slot 10 % 8, and the STOP arriving right now has
        // not been taken: without the check it would vanish silently.
        c.send_ctl(18, CTL_GO);
    }

    #[test]
    fn ctl_send_after_take_is_ordered() {
        let mut c = chan();
        c.send_ctl(10, CTL_STOP);
        assert_eq!(c.take_ctl_arrival(18), CTL_STOP);
        c.send_ctl(18, CTL_GO); // slot freed by the take: legal
        assert_eq!(c.take_ctl_arrival(26), CTL_GO);
    }

    #[test]
    fn same_cycle_ctl_supersede_is_allowed() {
        let mut c = chan();
        // A purge's GO may overwrite a STOP sent earlier the same cycle;
        // the receiver sees only the final symbol.
        c.send_ctl(5, CTL_STOP);
        c.send_ctl(5, CTL_GO);
        assert_eq!(c.take_ctl_arrival(13), CTL_GO);
    }

    #[test]
    fn fail_truncates_and_repair_restores() {
        let mut c = chan();
        c.send(0, 5);
        c.send(1, 5);
        c.send(2, 9);
        c.send_ctl(2, CTL_STOP);
        assert_eq!(c.fail(), vec![5, 9], "distinct in-flight victims");
        assert!(c.is_dead());
        assert!(!c.has_data_in_flight());
        // A dead cable eats everything offered to it.
        c.send(3, 11);
        c.send_ctl(3, CTL_GO);
        for cyc in 4..30 {
            assert_eq!(c.take_arrival(cyc), None);
            assert_eq!(c.take_ctl_arrival(cyc), CTL_NONE);
        }
        c.repair();
        assert!(!c.is_dead());
        c.send(30, 1);
        assert_eq!(c.take_arrival(38), Some(1));
    }

    #[test]
    fn reset_busy() {
        let mut c = chan();
        c.send(0, 1);
        c.take_arrival(8);
        assert_eq!(c.busy_cycles, 1);
        c.reset_busy();
        assert_eq!(c.busy_cycles, 0);
    }
}
