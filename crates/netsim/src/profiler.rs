//! Engine self-profiler: wall-clock time per simulation phase.
//!
//! Answers "where does the engine spend its time" — routing and
//! arbitration vs channel bookkeeping vs generation vs observer overhead —
//! without an external profiler. When enabled, `Simulator::step` takes a
//! timestamped path that wraps each phase with `Instant::now()`; disabled
//! (the default), the fast path has no timing calls at all.
//!
//! Wall-clock figures are host-machine noise, so they are kept strictly
//! out of `RunStats` (which must be bit-identical across same-seed runs);
//! collect them separately with `Simulator::profile_report`.

use serde::{Deserialize, Serialize};

/// The per-cycle phases the profiler distinguishes, in execution order.
pub const PHASE_NAMES: [&str; 7] = [
    "faults",     // fault events, loss handling, reconfiguration
    "control",    // stop/go symbol arrivals
    "arrivals",   // data-flit arrivals into switches and NICs
    "switches",   // route lookup, arbitration, crossbar transfer
    "nic_tx",     // NIC transmission
    "generation", // message generation
    "observers",  // watchdog + trace/journal per-cycle work
];

pub(crate) const N_PHASES: usize = PHASE_NAMES.len();

#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Faults = 0,
    Control = 1,
    Arrivals = 2,
    Switches = 3,
    NicTx = 4,
    Generation = 5,
    Observers = 6,
}

/// Accumulated nanoseconds per phase.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    pub ns: [u64; N_PHASES],
    pub cycles: u64,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler::default()
    }

    #[inline]
    pub(crate) fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    pub(crate) fn report(&self) -> ProfileReport {
        let total_ns: u64 = self.ns.iter().sum();
        ProfileReport {
            cycles: self.cycles,
            total_ns,
            phases: PHASE_NAMES
                .iter()
                .zip(self.ns)
                .map(|(&name, ns)| PhaseProfile {
                    name: name.to_string(),
                    ns,
                    fraction: if total_ns > 0 {
                        ns as f64 / total_ns as f64
                    } else {
                        0.0
                    },
                })
                .collect(),
        }
    }
}

/// Wall time attributed to one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    pub name: String,
    pub ns: u64,
    /// Share of the total profiled time, in `[0, 1]`.
    pub fraction: f64,
}

/// Everything the profiler measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Cycles stepped while profiling.
    pub cycles: u64,
    /// Total profiled wall time, ns.
    pub total_ns: u64,
    /// Per-phase breakdown, in execution order.
    pub phases: Vec<PhaseProfile>,
}

impl ProfileReport {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.cycles as f64 / (self.total_ns as f64 / 1e9)
    }

    /// Compact percentage table for terminal output.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "profiled {} cycles in {:.3} s ({:.0} cycles/s)\n",
            self.cycles,
            self.total_ns as f64 / 1e9,
            self.cycles_per_sec()
        );
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<11} {:>6.2}%  {:>12} ns\n",
                p.name,
                p.fraction * 100.0,
                p.ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fractions_sum_to_one() {
        let mut p = Profiler::new();
        p.add(Phase::Switches, 600);
        p.add(Phase::Arrivals, 300);
        p.add(Phase::Observers, 100);
        p.cycles = 10;
        let r = p.report();
        assert_eq!(r.total_ns, 1000);
        assert_eq!(r.phases.len(), PHASE_NAMES.len());
        let sum: f64 = r.phases.iter().map(|x| x.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(r.phases[3].name, "switches");
        assert!((r.phases[3].fraction - 0.6).abs() < 1e-12);
        assert!(r.cycles_per_sec() > 0.0);
        assert!(r.to_table().contains("switches"));
    }

    #[test]
    fn empty_profiler_reports_zeros() {
        let r = Profiler::new().report();
        assert_eq!(r.total_ns, 0);
        assert_eq!(r.cycles_per_sec(), 0.0);
        assert!(r.phases.iter().all(|p| p.fraction == 0.0));
    }
}
