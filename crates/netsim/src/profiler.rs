//! Engine self-profiler: wall-clock time per simulation phase, with
//! optional child spans below each phase.
//!
//! Answers "where does the engine spend its time" — routing and
//! arbitration vs channel bookkeeping vs generation vs observer overhead —
//! without an external profiler. When enabled, `Simulator::step` takes a
//! timestamped path that wraps each phase with `Instant::now()`; disabled
//! (the default), the fast path has no timing calls at all.
//!
//! Two views of the same data:
//!
//! * [`ProfileReport`] — the flat per-phase table (`bench_report`'s
//!   committed baseline format; unchanged layout).
//! * [`SpanReport`] — the hierarchical tree *phase → shard → component
//!   bucket* with a collapsed-stack export ([`SpanReport::to_collapsed`],
//!   `inferno`/`flamegraph.pl`-compatible), which says where *inside* the
//!   switch phase a mega-scale run spends its time.
//!
//! Wall-clock figures are host-machine noise, so they are kept strictly
//! out of `RunStats` (which must be bit-identical across same-seed runs);
//! collect them separately with `Simulator::profile_report` /
//! `Simulator::span_report`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The per-cycle phases the profiler distinguishes, in execution order.
pub const PHASE_NAMES: [&str; 7] = [
    "faults",     // fault events, loss handling, reconfiguration
    "control",    // stop/go symbol arrivals
    "arrivals",   // data-flit arrivals into switches and NICs
    "switches",   // route lookup, arbitration, crossbar transfer
    "nic_tx",     // NIC transmission
    "generation", // message generation
    "observers",  // watchdog + trace/journal per-cycle work
];

pub(crate) const N_PHASES: usize = PHASE_NAMES.len();

/// Shard index used for child spans recorded by the sequential engines
/// (no shard level in the tree).
pub(crate) const NO_SHARD: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) enum Phase {
    Faults = 0,
    Control = 1,
    Arrivals = 2,
    Switches = 3,
    NicTx = 4,
    Generation = 5,
    Observers = 6,
}

/// Accumulated nanoseconds per phase, plus child-span buckets keyed by
/// `(phase, shard, label)`. The flat array stays authoritative: child
/// spans are timed independently inside the phase and reconciled against
/// the phase total at report time.
#[derive(Debug, Default)]
pub(crate) struct Profiler {
    pub ns: [u64; N_PHASES],
    pub cycles: u64,
    children: BTreeMap<(u8, u32, &'static str), u64>,
}

impl Profiler {
    pub(crate) fn new() -> Profiler {
        Profiler::default()
    }

    #[inline]
    pub(crate) fn add(&mut self, phase: Phase, ns: u64) {
        self.ns[phase as usize] += ns;
    }

    /// Accumulate a child span under `phase`. Use [`NO_SHARD`] for spans
    /// recorded outside the shard-parallel engine.
    #[inline]
    pub(crate) fn add_child(&mut self, phase: Phase, shard: u32, label: &'static str, ns: u64) {
        *self
            .children
            .entry((phase as u8, shard, label))
            .or_insert(0) += ns;
    }

    pub(crate) fn report(&self) -> ProfileReport {
        let total_ns: u64 = self.ns.iter().sum();
        ProfileReport {
            cycles: self.cycles,
            total_ns,
            phases: PHASE_NAMES
                .iter()
                .zip(self.ns)
                .map(|(&name, ns)| PhaseProfile {
                    name: name.to_string(),
                    ns,
                    fraction: if total_ns > 0 {
                        ns as f64 / total_ns as f64
                    } else {
                        0.0
                    },
                })
                .collect(),
        }
    }

    /// Build the hierarchical view. Per phase the child spans are
    /// reconciled against the flat phase total: children and phases are
    /// timed by separate `Instant` pairs, so clock granularity can push
    /// the child sum a hair past the phase wall time — in that case the
    /// children are scaled down proportionally (floor division, remainder
    /// to the largest child) so `self + Σ child.total == total` holds
    /// *exactly* at every node and phase totals equal [`ProfileReport`]'s.
    pub(crate) fn span_report(&self) -> SpanReport {
        let mut roots = Vec::with_capacity(N_PHASES);
        for (p, &phase_name) in PHASE_NAMES.iter().enumerate() {
            let phase_ns = self.ns[p];
            // BTreeMap order: shards ascending, labels alphabetical,
            // NO_SHARD (u32::MAX) last — deterministic.
            let mut leaves: Vec<(u32, &'static str, u64)> = self
                .children
                .iter()
                .filter(|&(&(ph, _, _), _)| ph == p as u8)
                .map(|(&(_, shard, label), &ns)| (shard, label, ns))
                .collect();
            let sum: u64 = leaves.iter().map(|&(_, _, ns)| ns).sum();
            let self_ns = if sum > phase_ns {
                let mut scaled_sum = 0u64;
                for l in &mut leaves {
                    l.2 = ((l.2 as u128 * phase_ns as u128) / sum as u128) as u64;
                    scaled_sum += l.2;
                }
                if let Some(largest) = leaves.iter_mut().max_by_key(|l| l.2) {
                    largest.2 += phase_ns - scaled_sum;
                }
                0
            } else {
                phase_ns - sum
            };
            let mut children = Vec::new();
            let mut i = 0;
            while i < leaves.len() {
                let (shard, label, ns) = leaves[i];
                if shard == NO_SHARD {
                    children.push(SpanNode::leaf(label, ns));
                    i += 1;
                    continue;
                }
                let mut kids = Vec::new();
                let mut shard_total = 0u64;
                while i < leaves.len() && leaves[i].0 == shard {
                    shard_total += leaves[i].2;
                    kids.push(SpanNode::leaf(leaves[i].1, leaves[i].2));
                    i += 1;
                }
                children.push(SpanNode {
                    name: format!("shard{shard}"),
                    total_ns: shard_total,
                    self_ns: 0,
                    children: kids,
                });
            }
            roots.push(SpanNode {
                name: phase_name.to_string(),
                total_ns: phase_ns,
                self_ns,
                children,
            });
        }
        SpanReport {
            cycles: self.cycles,
            total_ns: self.ns.iter().sum(),
            roots,
        }
    }
}

/// Wall time attributed to one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    pub name: String,
    pub ns: u64,
    /// Share of the total profiled time, in `[0, 1]`.
    pub fraction: f64,
}

/// Everything the profiler measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Cycles stepped while profiling.
    pub cycles: u64,
    /// Total profiled wall time, ns.
    pub total_ns: u64,
    /// Per-phase breakdown, in execution order.
    pub phases: Vec<PhaseProfile>,
}

impl ProfileReport {
    /// Simulated cycles per wall-clock second.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.cycles as f64 / (self.total_ns as f64 / 1e9)
    }

    /// Compact percentage table for terminal output.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "profiled {} cycles in {:.3} s ({:.0} cycles/s)\n",
            self.cycles,
            self.total_ns as f64 / 1e9,
            self.cycles_per_sec()
        );
        for p in &self.phases {
            out.push_str(&format!(
                "  {:<11} {:>6.2}%  {:>12} ns\n",
                p.name,
                p.fraction * 100.0,
                p.ns
            ));
        }
        out
    }
}

/// One node of the span tree. Invariant (enforced at construction):
/// `self_ns + Σ children.total_ns == total_ns`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    pub name: String,
    /// Wall time of this span including its children, ns.
    pub total_ns: u64,
    /// Wall time not attributed to any child, ns.
    pub self_ns: u64,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    fn leaf(name: &str, ns: u64) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            total_ns: ns,
            self_ns: ns,
            children: Vec::new(),
        }
    }
}

/// The hierarchical profile: one root span per phase, in execution order;
/// phase totals equal the flat [`ProfileReport`] exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Cycles stepped while profiling.
    pub cycles: u64,
    /// Total profiled wall time, ns (== Σ root totals).
    pub total_ns: u64,
    pub roots: Vec<SpanNode>,
}

impl SpanReport {
    /// Collapsed-stack export: one `frame;frame;frame <self_ns>` line per
    /// span with non-zero self time, rooted at `engine`. Feed to
    /// `inferno-flamegraph` / `flamegraph.pl` for an SVG.
    pub fn to_collapsed(&self) -> String {
        fn walk(out: &mut String, prefix: &str, node: &SpanNode) {
            let stack = format!("{prefix};{}", node.name);
            if node.self_ns > 0 {
                out.push_str(&stack);
                out.push(' ');
                out.push_str(&node.self_ns.to_string());
                out.push('\n');
            }
            for c in &node.children {
                walk(out, &stack, c);
            }
        }
        let mut out = String::new();
        for root in &self.roots {
            walk(&mut out, "engine", root);
        }
        out
    }

    /// Indented tree table for terminal output.
    pub fn to_table(&self) -> String {
        fn walk(out: &mut String, node: &SpanNode, depth: usize, grand_total: u64) {
            let pct = if grand_total > 0 {
                node.total_ns as f64 / grand_total as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:indent$}{:<width$} {:>6.2}%  {:>12} ns\n",
                "",
                node.name,
                pct,
                node.total_ns,
                indent = depth * 2,
                width = 24usize.saturating_sub(depth * 2),
            ));
            for c in &node.children {
                walk(out, c, depth + 1, grand_total);
            }
        }
        let mut out = format!(
            "span profile: {} cycles in {:.3} s\n",
            self.cycles,
            self.total_ns as f64 / 1e9
        );
        for root in &self.roots {
            walk(&mut out, root, 0, self.total_ns);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_node_invariant(n: &SpanNode) {
        let child_sum: u64 = n.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(
            n.self_ns + child_sum,
            n.total_ns,
            "span invariant violated at {:?}",
            n.name
        );
        for c in &n.children {
            assert_node_invariant(c);
        }
    }

    #[test]
    fn report_fractions_sum_to_one() {
        let mut p = Profiler::new();
        p.add(Phase::Switches, 600);
        p.add(Phase::Arrivals, 300);
        p.add(Phase::Observers, 100);
        p.cycles = 10;
        let r = p.report();
        assert_eq!(r.total_ns, 1000);
        assert_eq!(r.phases.len(), PHASE_NAMES.len());
        let sum: f64 = r.phases.iter().map(|x| x.fraction).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(r.phases[3].name, "switches");
        assert!((r.phases[3].fraction - 0.6).abs() < 1e-12);
        assert!(r.cycles_per_sec() > 0.0);
        assert!(r.to_table().contains("switches"));
    }

    #[test]
    fn empty_profiler_reports_zeros() {
        let r = Profiler::new().report();
        assert_eq!(r.total_ns, 0);
        assert_eq!(r.cycles_per_sec(), 0.0);
        assert!(r.phases.iter().all(|p| p.fraction == 0.0));
    }

    #[test]
    fn span_tree_reconciles_with_flat_phases() {
        let mut p = Profiler::new();
        p.cycles = 5;
        p.add(Phase::Switches, 1000);
        p.add_child(Phase::Switches, NO_SHARD, "routing", 600);
        p.add_child(Phase::Switches, NO_SHARD, "crossbar", 300);
        p.add(Phase::Observers, 50);
        let spans = p.span_report();
        let flat = p.report();
        assert_eq!(spans.total_ns, flat.total_ns);
        for (root, phase) in spans.roots.iter().zip(&flat.phases) {
            assert_eq!(root.name, phase.name);
            assert_eq!(root.total_ns, phase.ns);
            assert_node_invariant(root);
        }
        // Unattributed phase time shows up as self time.
        let sw = &spans.roots[Phase::Switches as usize];
        assert_eq!(sw.self_ns, 100);
        assert_eq!(sw.children.len(), 2);
        // BTreeMap label order: crossbar before routing.
        assert_eq!(sw.children[0].name, "crossbar");
        assert_eq!(sw.children[1].name, "routing");
    }

    #[test]
    fn overshooting_children_are_scaled_to_fit_exactly() {
        let mut p = Profiler::new();
        p.add(Phase::Arrivals, 1000);
        // Children sum to 1003 > 1000 (separate Instant pairs drift).
        p.add_child(Phase::Arrivals, 0, "control", 500);
        p.add_child(Phase::Arrivals, 0, "arrivals", 200);
        p.add_child(Phase::Arrivals, 1, "control", 303);
        let spans = p.span_report();
        let arr = &spans.roots[Phase::Arrivals as usize];
        assert_eq!(arr.total_ns, 1000);
        assert_eq!(arr.self_ns, 0);
        let child_sum: u64 = arr.children.iter().map(|c| c.total_ns).sum();
        assert_eq!(child_sum, 1000, "scaled children must sum exactly");
        assert_node_invariant(arr);
        // Shard grouping: two shard intermediates with self 0.
        assert_eq!(arr.children[0].name, "shard0");
        assert_eq!(arr.children[1].name, "shard1");
        assert_eq!(arr.children[0].self_ns, 0);
        assert_eq!(arr.children[0].children.len(), 2);
    }

    #[test]
    fn collapsed_stacks_cover_the_total() {
        let mut p = Profiler::new();
        p.add(Phase::Switches, 1000);
        p.add_child(Phase::Switches, 2, "switches", 700);
        p.add_child(Phase::Switches, 2, "nic_tx", 100);
        p.add(Phase::Generation, 50);
        let spans = p.span_report();
        let collapsed = spans.to_collapsed();
        assert!(collapsed.contains("engine;switches 200\n"));
        assert!(collapsed.contains("engine;switches;shard2;switches 700\n"));
        assert!(collapsed.contains("engine;switches;shard2;nic_tx 100\n"));
        assert!(collapsed.contains("engine;generation 50\n"));
        // Every line's value is a self time; they sum to the grand total.
        let sum: u64 = collapsed
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, spans.total_ns);
        assert!(spans.to_table().contains("shard2"));
    }
}
