//! Cycle-accurate simulator of Myrinet-style source-routed networks.
//!
//! The simulator reproduces the network model of the paper's section 4 at
//! flit granularity, one cycle = one flit time = 6.25 ns (160 MB/s links,
//! one-byte flits):
//!
//! * **Links** are pipelined: a 10 m LAN cable holds up to 8 flits in
//!   flight ([`SimConfig::link_delay_cycles`]).
//! * **Flow control** is Myrinet's hardware stop&go: each switch input has
//!   an 80-byte slack buffer that emits STOP when it fills beyond 56 bytes
//!   and GO when it drains below 40; control flits cross the cable in the
//!   reverse direction with the same latency.
//! * **Switches** are input-buffered cut-through: the routing control unit
//!   consumes the first header flit, takes 150 ns, and requests the output
//!   port; each output arbitrates among requesting inputs in demand-slotted
//!   round-robin; the crossbar is non-blocking.
//! * **NICs** hold the whole packet before first injection, obey stop&go,
//!   and implement the **in-transit buffer** mechanism: an arriving packet
//!   flagged for this host is ejected unconditionally (this breaks the
//!   deadlock cycle), recognised after 44 bytes (275 ns), its re-injection
//!   DMA programmed after 32 further bytes (200 ns), and re-injected —
//!   cut-through — as soon as the output channel is free. The 90 KB ITB
//!   pool overflows to host memory at a configurable penalty.
//!
//! The [`experiment`] module provides the high-level API used by the
//! examples and the paper-reproduction harness: run one offered-load point,
//! sweep a latency/throughput curve, or search for the saturation
//! throughput.
//!
//! # Quickstart
//!
//! ```
//! use regnet_topology::gen;
//! use regnet_core::{RouteDbConfig, RoutingScheme};
//! use regnet_traffic::PatternSpec;
//! use regnet_netsim::experiment::{Experiment, RunOptions};
//! use regnet_netsim::SimConfig;
//!
//! let topo = gen::torus_2d(4, 4, 2).unwrap();
//! let exp = Experiment::new(
//!     topo,
//!     RoutingScheme::ItbRr,
//!     RouteDbConfig::default(),
//!     PatternSpec::Uniform,
//!     SimConfig { payload_flits: 64, ..SimConfig::default() },
//! ).unwrap();
//! let point = exp.run_point(
//!     0.01,
//!     &RunOptions { warmup_cycles: 5_000, measure_cycles: 20_000, seed: 1, ..RunOptions::default() },
//! );
//! assert!(point.delivered > 0);
//! assert!(point.avg_latency_ns > 0.0);
//! ```

mod channel;
pub mod collective;
mod config;
pub mod counters;
pub mod events;
pub mod experiment;
pub mod faultplan;
mod nic;
mod packet;
mod par;
pub mod partition;
pub mod profiler;
mod sched;
mod sim;
mod switch;
pub mod threads;
pub mod trace;
pub mod wfg;

pub use config::{GenerationProcess, SimConfig, CYCLE_NS};
pub use counters::CounterSnapshot;
pub use events::{BlockCause, Event, EventJournal, EventKind, EventMask, EventOptions, NO_PACKET};
pub use experiment::{par_map, Experiment, RunObservation, RunOptions, ThroughputSearch};
pub use faultplan::{FaultEvent, FaultOptions, FaultPlan, FaultTarget, ReliabilityStats};
pub use partition::ShardPlan;
pub use profiler::{PhaseProfile, ProfileReport, SpanNode, SpanReport, PHASE_NAMES};
pub use sched::Scheduler;
pub use sim::{ChannelDesc, RunStats, Simulator};
pub use trace::{
    ChannelUtilSeries, GoodputSeries, LatencySummary, MetricsSample, MetricsSeries,
    OccupancySeries, TraceOptions, TraceReport,
};
pub use wfg::{StallClass, StallReport};
