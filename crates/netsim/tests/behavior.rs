//! Behavioural tests of the simulated hardware: arbitration fairness, flow
//! control under pressure, hotspot serialisation, and link-class usage.

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::{SimConfig, Simulator};
use regnet_topology::{gen, HostId, NodeId, SwitchId, TopologyBuilder};
use regnet_traffic::{Pattern, PatternSpec};

fn cfg64() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

/// Two hosts on one switch hammer the single link towards another switch:
/// round-robin arbitration must share it almost exactly 50/50.
#[test]
fn output_arbitration_is_fair() {
    let mut b = TopologyBuilder::new("fair", 6);
    b.add_switches(2);
    b.connect(SwitchId(0), SwitchId(1)).unwrap();
    // Senders h0, h1 on switch 0; receivers h2, h3 on switch 1.
    b.attach_host(SwitchId(0)).unwrap();
    b.attach_host(SwitchId(0)).unwrap();
    b.attach_host(SwitchId(1)).unwrap();
    b.attach_host(SwitchId(1)).unwrap();
    let topo = b.build().unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 1e-9, 1);
    sim.stop_generation();
    // 60 messages from each sender, all crossing the shared link.
    for i in 0..60u64 {
        sim.schedule_message(HostId(0), HostId(2), i);
        sim.schedule_message(HostId(1), HostId(3), i);
    }
    sim.begin_measurement();
    let drained = sim.run_until_drained(2_000_000).expect("must drain");
    let stats = sim.end_measurement(drained);
    assert_eq!(stats.delivered, 120);
    // Fairness: total time ~= 120 serialized packets; if one input starved,
    // its last delivery would land much later. Measure via p99 vs mean.
    assert!(
        stats.p99_latency_ns < stats.avg_latency_ns * 2.3,
        "p99 {:.0} vs mean {:.0}: starvation suspected",
        stats.p99_latency_ns,
        stats.avg_latency_ns
    );
}

/// Flow control under maximal pressure: all hosts blast one destination;
/// slack buffers must never overflow (debug assertions check occupancy) and
/// throughput must pin at the destination link rate.
#[test]
fn hotspot_serialises_at_link_rate() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let hotspot = HostId(21);
    let pattern = Pattern::resolve(
        PatternSpec::Hotspot {
            fraction: 1.0,
            host: hotspot,
        },
        &topo,
    )
    .unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 0.5, 3);
    sim.run(20_000);
    sim.begin_measurement();
    sim.run(100_000);
    let stats = sim.end_measurement(100_000);
    // Deliveries decompose into (a) traffic *into* the hotspot, capped by
    // its reception link (1 flit/cycle incl. headers ≈ 95.5k payload per
    // 100k cycles at 64/67 efficiency) and (b) the hotspot's own outgoing
    // uniform traffic, capped the same way by its injection link. Total
    // must stay under ~2 links' worth and reasonably close to it (both
    // links saturated).
    assert!(
        stats.delivered_payload_flits < 196_000,
        "more than two link-capacities delivered: {}",
        stats.delivered_payload_flits
    );
    assert!(
        stats.delivered_payload_flits > 150_000,
        "hotspot links underutilised: {}",
        stats.delivered_payload_flits
    );
}

/// Express channels (the distance-2 links) actually carry traffic under
/// ITB-RR on the express torus.
#[test]
fn express_channels_carry_traffic() {
    let topo = gen::torus_2d_express(4, 4, 2).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 0.02, 5);
    let descs = sim.channel_descriptors();
    sim.run(10_000);
    sim.begin_measurement();
    sim.run(50_000);
    let stats = sim.end_measurement(50_000);
    let mut express_busy = 0u64;
    let mut ring_busy = 0u64;
    for (d, &busy) in descs.iter().zip(&stats.channel_busy) {
        if let (NodeId::Switch(a), NodeId::Switch(b)) = (d.from, d.to) {
            let (ra, ca) = ((a.0 / 4) as i32, (a.0 % 4) as i32);
            let (rb, cb) = ((b.0 / 4) as i32, (b.0 % 4) as i32);
            let dr = (ra - rb).rem_euclid(4).min((rb - ra).rem_euclid(4));
            let dc = (ca - cb).rem_euclid(4).min((cb - ca).rem_euclid(4));
            if dr + dc == 2 {
                express_busy += busy;
            } else {
                ring_busy += busy;
            }
        }
    }
    assert!(express_busy > 0, "express channels never used");
    assert!(ring_busy > 0, "ring channels never used");
}

/// Latency decomposition sanity on an uncontended two-switch path, with
/// the paper's exact constants: cable 8 cycles, routing 24 cycles, wire
/// length = payload + header.
#[test]
fn zero_load_latency_decomposition() {
    let mut b = TopologyBuilder::new("line2", 4);
    b.add_switches(2);
    b.connect(SwitchId(0), SwitchId(1)).unwrap();
    b.attach_hosts_everywhere(1).unwrap();
    let topo = b.build().unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 1e-9, 1);
    sim.stop_generation();
    sim.schedule_message(HostId(0), HostId(1), 0);
    sim.begin_measurement();
    let drained = sim.run_until_drained(100_000).unwrap();
    let stats = sim.end_measurement(drained.max(1));
    assert_eq!(stats.delivered, 1);
    // Wire: 2 port bytes + type + 64 payload = 67 flits.
    // Path: 3 cables (h0->s0, s0->s1, s1->h1) at 8 cycles each,
    // 2 routing delays at 24 cycles, tail = 67 flits minus the 2 consumed
    // header bytes stream behind the head: latency ~= 24 + 8 + 24 + 8 + 65
    // (+ the first cable + 1-cycle phase offsets).
    let lat_cycles = stats.avg_latency_ns / 6.25;
    assert!(
        (130.0..150.0).contains(&lat_cycles),
        "unexpected uncontended latency: {lat_cycles} cycles"
    );
}

/// The same journey with a 1024-byte payload costs exactly 960 more cycles
/// (one cycle per extra payload flit) — pipelining means nothing else
/// changes.
#[test]
fn payload_scales_latency_linearly() {
    let run = |payload: usize| {
        let mut b = TopologyBuilder::new("line2", 4);
        b.add_switches(2);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        let topo = b.build().unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let cfg = SimConfig {
            payload_flits: payload,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 1e-9, 1);
        sim.stop_generation();
        sim.schedule_message(HostId(0), HostId(1), 0);
        sim.begin_measurement();
        let drained = sim.run_until_drained(100_000).unwrap();
        let stats = sim.end_measurement(drained.max(1));
        stats.avg_latency_ns / 6.25
    };
    let l64 = run(64);
    let l1024 = run(1024);
    assert_eq!((l1024 - l64).round() as i64, 960);
}

/// Scheduled messages respect their release cycles.
#[test]
fn scheduled_release_times() {
    let topo = gen::torus_2d(4, 4, 1).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 1e-9, 1);
    sim.stop_generation();
    sim.schedule_message(HostId(0), HostId(5), 10_000);
    sim.begin_measurement();
    // Nothing may happen before cycle 10_000.
    sim.run(9_999);
    assert_eq!(sim.packets_in_flight(), 0);
    let drained = sim.run_until_drained(100_000).unwrap();
    assert!(drained > 10_000);
    let stats = sim.end_measurement(drained);
    assert_eq!(stats.delivered, 1);
}

/// The generation-vs-injection latency split: total latency includes the
/// source queue, network latency does not.
#[test]
fn total_latency_includes_source_queueing() {
    let topo = gen::torus_2d(4, 4, 1).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg64(), 1e-9, 1);
    sim.stop_generation();
    // Ten messages from one host released simultaneously: the 2nd..10th
    // wait in the source queue.
    for _ in 0..10 {
        sim.schedule_message(HostId(0), HostId(15), 0);
    }
    sim.begin_measurement();
    let drained = sim.run_until_drained(1_000_000).unwrap();
    let stats = sim.end_measurement(drained);
    assert_eq!(stats.delivered, 10);
    assert!(
        stats.avg_total_latency_ns > stats.avg_latency_ns * 2.0,
        "total {:.0} should far exceed network {:.0} under source queueing",
        stats.avg_total_latency_ns,
        stats.avg_latency_ns
    );
}
