//! Tests of the MTU segmentation / reassembly layer (a GM-like extension;
//! `mtu_flits: None` reproduces the paper's one-packet-per-message model).

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::{SimConfig, Simulator};
use regnet_topology::{gen, HostId, Topology};
use regnet_traffic::{Pattern, PatternSpec};

fn run(
    topo: &Topology,
    scheme: RoutingScheme,
    cfg: SimConfig,
    load: f64,
    cycles: u64,
) -> regnet_netsim::RunStats {
    let db = RouteDb::build(topo, scheme, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, topo).unwrap();
    let mut sim = Simulator::new(topo, &db, &pattern, cfg, load, 11);
    sim.begin_measurement();
    sim.run(cycles);
    sim.stop_generation();
    let mut guard = 0;
    while sim.packets_in_flight() > 0 {
        sim.run(2_000);
        guard += 1;
        assert!(guard < 2_000, "drain failed:\n{}", sim.dump_state());
    }
    sim.end_measurement(cycles)
}

#[test]
fn no_mtu_means_one_packet_per_message() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let cfg = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let stats = run(&topo, RoutingScheme::ItbRr, cfg, 0.008, 40_000);
    assert!(stats.delivered > 20);
    assert_eq!(stats.delivered_packets, stats.delivered);
}

#[test]
fn mtu_equal_to_payload_is_bit_identical_to_none() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let base = SimConfig {
        payload_flits: 256,
        ..SimConfig::default()
    };
    let with_mtu = SimConfig {
        mtu_flits: Some(256),
        ..base.clone()
    };
    let a = run(&topo, RoutingScheme::ItbRr, base, 0.008, 40_000);
    let b = run(&topo, RoutingScheme::ItbRr, with_mtu, 0.008, 40_000);
    assert_eq!(a.delivered, b.delivered);
    assert_eq!(a.avg_latency_ns, b.avg_latency_ns);
    assert_eq!(a.channel_busy, b.channel_busy);
}

#[test]
fn segmentation_conserves_messages_and_counts_packets() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let cfg = SimConfig {
        payload_flits: 512,
        mtu_flits: Some(128),
        ..SimConfig::default()
    };
    let stats = run(&topo, RoutingScheme::ItbRr, cfg, 0.008, 60_000);
    assert!(stats.generated > 20);
    assert_eq!(stats.delivered, stats.generated);
    // 512/128 = exactly 4 packets per message.
    assert_eq!(stats.delivered_packets, stats.delivered * 4);
    // Payload is conserved: 512 flits per message.
    assert_eq!(stats.delivered_payload_flits, stats.delivered * 512);
}

#[test]
fn uneven_segmentation_rounds_up() {
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let cfg = SimConfig {
        payload_flits: 500,
        mtu_flits: Some(200), // 200 + 200 + 100
        ..SimConfig::default()
    };
    let stats = run(&topo, RoutingScheme::UpDown, cfg, 0.006, 60_000);
    assert_eq!(stats.delivered_packets, stats.delivered * 3);
    assert_eq!(stats.delivered_payload_flits, stats.delivered * 500);
}

#[test]
fn segmented_messages_reassemble_across_alternative_paths() {
    // Under ITB-RR each packet of a message may take a different minimal
    // path and arrive out of order; reassembly must still complete, and the
    // message must use ITBs when its packets do.
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let cfg = SimConfig {
        payload_flits: 512,
        mtu_flits: Some(64), // 8 packets per message
        ..SimConfig::default()
    };
    let stats = run(&topo, RoutingScheme::ItbRr, cfg, 0.006, 60_000);
    assert_eq!(stats.delivered, stats.generated);
    assert_eq!(stats.delivered_packets, stats.delivered * 8);
    // avg ITBs is per *message* now: the sum over its 8 packets.
    assert!(stats.avg_itbs_per_msg > 0.3, "{}", stats.avg_itbs_per_msg);
}

#[test]
fn scheduled_messages_segment_too() {
    let topo = gen::torus_2d(4, 4, 1).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let cfg = SimConfig {
        payload_flits: 300,
        mtu_flits: Some(100),
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&topo, &db, &pattern, cfg, 1e-9, 2);
    sim.stop_generation();
    sim.schedule_message(HostId(0), HostId(10), 0);
    sim.begin_measurement();
    let drained = sim.run_until_drained(1_000_000).unwrap();
    let stats = sim.end_measurement(drained);
    assert_eq!(stats.delivered, 1);
    assert_eq!(stats.delivered_packets, 3);
    assert_eq!(stats.delivered_payload_flits, 300);
}

#[test]
fn segmentation_reduces_message_latency_under_itb_rr() {
    // Smaller packets pipeline better through multi-hop paths *and* spread
    // over alternative routes; at moderate load the message latency with an
    // MTU should not be dramatically worse than without, and the network
    // must accept the same traffic.
    let topo = gen::torus_2d(4, 4, 2).unwrap();
    let whole = run(
        &topo,
        RoutingScheme::ItbRr,
        SimConfig {
            payload_flits: 512,
            ..SimConfig::default()
        },
        0.01,
        60_000,
    );
    let cut = run(
        &topo,
        RoutingScheme::ItbRr,
        SimConfig {
            payload_flits: 512,
            mtu_flits: Some(128),
            ..SimConfig::default()
        },
        0.01,
        60_000,
    );
    let whole_acc = whole.accepted_flits_per_ns_per_switch(16);
    let cut_acc = cut.accepted_flits_per_ns_per_switch(16);
    assert!((whole_acc - cut_acc).abs() / whole_acc < 0.1);
    // Per-message latency may go either way (header overhead vs pipeline
    // spreading) but must stay in the same regime.
    assert!(cut.avg_latency_ns < whole.avg_latency_ns * 2.0);
}
