//! Full-scale route validation on the paper's three networks: every
//! ordered switch pair, every scheme, every alternative — structural
//! checks only (no simulation), so this covers all ~4k pairs per network
//! in seconds.

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme, SegmentEnd};
use regnet_routing::SwitchPath;
use regnet_topology::{gen, DistanceMatrix, Orientation, SwitchId, Topology};

fn check_db(topo: &Topology, scheme: RoutingScheme) {
    let cfg = RouteDbConfig::default();
    let db = RouteDb::build(topo, scheme, &cfg);
    let orient = Orientation::compute(topo, cfg.root);
    let dm = DistanceMatrix::compute(topo);
    for (s, d, alts) in db.iter_pairs() {
        assert!(!alts.is_empty(), "{scheme} {s}->{d}: no route");
        for t in alts {
            // Segment chain: starts at s, ends at d, hands over at ITBs.
            assert_eq!(t.segments[0].switches[0], s);
            assert_eq!(*t.segments.last().unwrap().switches.last().unwrap(), d);
            for w in t.segments.windows(2) {
                assert_eq!(*w[0].switches.last().unwrap(), w[1].switches[0]);
            }
            for seg in &t.segments {
                let p = SwitchPath::new(seg.switches.clone());
                assert!(p.is_connected(topo), "{scheme} {s}->{d}: segment {p}");
                assert!(
                    p.is_legal(&orient),
                    "{scheme} {s}->{d}: illegal segment {p}"
                );
                if let SegmentEnd::Itb(h) = seg.end {
                    assert_eq!(topo.host_switch(h), p.dst());
                }
            }
            if scheme.uses_itbs() {
                assert_eq!(
                    t.total_links(),
                    dm.get(s, d) as usize,
                    "{scheme} {s}->{d}: ITB route must be minimal"
                );
            } else {
                assert_eq!(t.num_itbs(), 0);
            }
        }
    }
}

#[test]
fn torus_all_pairs_all_schemes() {
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    for scheme in RoutingScheme::extended() {
        check_db(&topo, scheme);
    }
}

#[test]
fn express_all_pairs_all_schemes() {
    let topo = gen::torus_2d_express(8, 8, 8).unwrap();
    for scheme in RoutingScheme::extended() {
        check_db(&topo, scheme);
    }
}

#[test]
fn cplant_all_pairs_all_schemes() {
    let topo = gen::cplant().unwrap();
    for scheme in RoutingScheme::extended() {
        check_db(&topo, scheme);
    }
}

/// The table-size cap of the paper: no pair may carry more than 10
/// alternatives, and pairs with abundant minimal paths should reach the
/// cap.
#[test]
fn alternative_cap_respected_and_reached() {
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
    let mut max_seen = 0;
    for (_, _, alts) in db.iter_pairs() {
        assert!(alts.len() <= 10);
        max_seen = max_seen.max(alts.len());
    }
    assert_eq!(
        max_seen, 10,
        "some pair should use the full 10 alternatives"
    );
}

/// Moving the spanning-tree root changes which minimal paths are forbidden
/// but never the ITB guarantees.
#[test]
fn alternative_roots_keep_invariants() {
    let topo = gen::torus_2d(8, 8, 2).unwrap();
    for root in [SwitchId(0), SwitchId(27), SwitchId(63)] {
        let cfg = RouteDbConfig {
            root,
            ..RouteDbConfig::default()
        };
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &cfg);
        let orient = Orientation::compute(&topo, root);
        let dm = DistanceMatrix::compute(&topo);
        for (s, d, alts) in db.iter_pairs() {
            for t in alts {
                assert_eq!(t.total_links(), dm.get(s, d) as usize);
                for seg in &t.segments {
                    assert!(SwitchPath::new(seg.switches.clone()).is_legal(&orient));
                }
            }
        }
    }
}
