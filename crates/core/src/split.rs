//! Splitting a minimal path into up\*/down\*-legal segments with in-transit
//! hosts at the forbidden transitions — the heart of the ITB mechanism.

use regnet_routing::SwitchPath;
use regnet_topology::{HostId, Orientation, SwitchId, Topology};

use crate::journey::{Segment, SegmentEnd};
use crate::JourneyTemplate;

/// Strategy for picking which of a switch's hosts serves as the in-transit
/// host. The paper attaches 8 hosts per switch; spreading in-transit load
/// over them avoids overloading a single NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItbHostPicker {
    /// Always the first host of the switch.
    First,
    /// Deterministic hash of (source switch, destination switch, segment
    /// index), spreading in-transit load across the switch's hosts.
    Spread,
}

impl ItbHostPicker {
    fn pick(self, topo: &Topology, sw: SwitchId, key: u64) -> Option<HostId> {
        let hosts = topo.hosts_of(sw);
        if hosts.is_empty() {
            return None;
        }
        Some(match self {
            ItbHostPicker::First => hosts[0],
            ItbHostPicker::Spread => {
                // Fibonacci hash of the key.
                let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
                hosts[(h as usize) % hosts.len()]
            }
        })
    }
}

/// Split a (typically minimal) path into up\*/down\*-legal segments.
///
/// Walk the path tracking the up\*/down\* phase; on each forbidden down→up
/// transition, end the current segment at an in-transit host attached to the
/// current switch and start a new segment there (phase resets to "up",
/// because a freshly injected packet has taken no link yet).
///
/// The returned template's final segment is one port byte short (the
/// destination host port is appended at materialisation); in-transit
/// segments are complete, ending with the in-transit host's port byte.
///
/// Panics if a switch at a transition point has no hosts (the mechanism
/// needs a NIC to buffer in); in the paper's topologies every switch has 8.
/// Use [`try_split_minimal_path`] when hostless switches are possible
/// (e.g. on degraded networks after failures).
pub fn split_minimal_path(
    topo: &Topology,
    orient: &Orientation,
    path: &SwitchPath,
    picker: ItbHostPicker,
) -> JourneyTemplate {
    try_split_minimal_path(topo, orient, path, picker).unwrap_or_else(|| {
        panic!("in-transit buffer needs a host at a transition switch of {path}, but it has none")
    })
}

/// Like [`split_minimal_path`], but returns `None` when the path needs an
/// in-transit buffer at a switch that has no hosts attached (the packet
/// cannot be ejected there, so the path is unusable under the ITB
/// mechanism).
pub fn try_split_minimal_path(
    topo: &Topology,
    orient: &Orientation,
    path: &SwitchPath,
    picker: ItbHostPicker,
) -> Option<JourneyTemplate> {
    let switches = path.switches();
    let (src_sw, dst_sw) = (path.src(), path.dst());
    let mut segments: Vec<Segment> = Vec::new();
    let mut seg_switches: Vec<SwitchId> = vec![switches[0]];
    let mut seg_ports = Vec::new();
    let mut seen_down = false;
    let mut parallel_select = pair_key(src_sw, dst_sw) as usize;

    for (hop_idx, (a, b)) in path.hops().enumerate() {
        let up = orient.is_up_move(a, b);
        if seen_down && up {
            // Forbidden transition: eject at `a` into an in-transit host.
            let key = pair_key(src_sw, dst_sw) ^ (hop_idx as u64) << 1;
            let itb_host = picker.pick(topo, a, key)?;
            debug_assert_eq!(topo.host_switch(itb_host), a);
            seg_ports.push(topo.host_port(itb_host));
            segments.push(Segment {
                switches: std::mem::take(&mut seg_switches),
                ports: std::mem::take(&mut seg_ports),
                end: SegmentEnd::Itb(itb_host),
            });
            seg_switches.push(a);
            seen_down = false;
        }
        if !up {
            seen_down = true;
        }
        // Port from a to b (spread across parallel links deterministically).
        let choices = topo.ports_to(a, b);
        debug_assert!(!choices.is_empty(), "path not connected at {a}->{b}");
        seg_ports.push(choices[parallel_select % choices.len()]);
        parallel_select = parallel_select.wrapping_add(1);
        seg_switches.push(b);
    }

    // Final segment: one port byte short (destination host port appended at
    // materialisation time).
    segments.push(Segment {
        switches: seg_switches,
        ports: seg_ports,
        end: SegmentEnd::Deliver,
    });

    let t = JourneyTemplate { segments };
    debug_assert_eq!(t.total_links(), path.len_links());
    Some(t)
}

fn pair_key(a: SwitchId, b: SwitchId) -> u64 {
    ((a.0 as u64) << 32) | b.0 as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::{gen, DistanceMatrix, Port, TopologyBuilder};

    /// Every segment of a split must itself be a legal up*/down* path.
    fn assert_segments_legal(t: &JourneyTemplate, orient: &Orientation) {
        for seg in &t.segments {
            let p = SwitchPath::new(seg.switches.clone());
            assert!(p.is_legal(orient), "segment {p} not legal");
        }
    }

    fn ring4() -> (Topology, Orientation) {
        let mut b = TopologyBuilder::new("ring4", 4);
        b.add_switches(4);
        for i in 0..4u32 {
            b.connect(SwitchId(i), SwitchId((i + 1) % 4)).unwrap();
        }
        b.attach_hosts_everywhere(2).unwrap();
        let topo = b.build().unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        (topo, orient)
    }

    #[test]
    fn no_split_for_legal_path() {
        let (topo, orient) = ring4();
        // 2 -> 1 -> 0 is all-up: no ITB needed.
        let p = SwitchPath::new(vec![SwitchId(2), SwitchId(1), SwitchId(0)]);
        let t = split_minimal_path(&topo, &orient, &p, ItbHostPicker::First);
        assert_eq!(t.num_itbs(), 0);
        assert_eq!(t.segments[0].switches.len(), 3);
        // Ports: 2->1, 1->0; destination port appended later.
        assert_eq!(t.segments[0].ports.len(), 2);
        assert_segments_legal(&t, &orient);
    }

    #[test]
    fn split_at_forbidden_transition() {
        let (topo, orient) = ring4();
        // Levels: [0,1,2,1]. Path 1 -> 2 -> 3: 1->2 down, 2->3 up: forbidden
        // at hop 1, so an ITB is placed at switch 2.
        let p = SwitchPath::new(vec![SwitchId(1), SwitchId(2), SwitchId(3)]);
        let t = split_minimal_path(&topo, &orient, &p, ItbHostPicker::First);
        assert_eq!(t.num_itbs(), 1);
        match t.segments[0].end {
            SegmentEnd::Itb(h) => assert_eq!(topo.host_switch(h), SwitchId(2)),
            SegmentEnd::Deliver => panic!("expected ITB end"),
        }
        assert_eq!(t.segments[0].switches, vec![SwitchId(1), SwitchId(2)]);
        assert_eq!(t.segments[1].switches, vec![SwitchId(2), SwitchId(3)]);
        // Segment 0 ports: 1->2 plus the ITB host port (complete).
        assert_eq!(t.segments[0].ports.len(), 2);
        // Segment 1 ports: 2->3 only (destination port appended later).
        assert_eq!(t.segments[1].ports.len(), 1);
        assert_segments_legal(&t, &orient);
        assert_eq!(t.total_links(), 2);
    }

    #[test]
    fn all_minimal_paths_split_into_legal_segments_on_paper_torus() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        let mut total_itbs = 0usize;
        let mut pairs = 0usize;
        for s in topo.switches() {
            for d in topo.switches() {
                if s == d {
                    continue;
                }
                let paths = regnet_routing::minimal::k_minimal_paths(&topo, &dm, s, d, 2, 11);
                for p in paths {
                    let t = split_minimal_path(&topo, &orient, &p, ItbHostPicker::Spread);
                    assert_segments_legal(&t, &orient);
                    assert_eq!(t.total_links(), dm.get(s, d) as usize);
                    total_itbs += t.num_itbs();
                    pairs += 1;
                }
            }
        }
        // Paper: 0.43-0.54 ITBs per message on average under uniform
        // traffic. The per-path average over all pairs is in the same band.
        let avg = total_itbs as f64 / pairs as f64;
        assert!(
            (0.2..=0.9).contains(&avg),
            "avg ITBs per minimal path = {avg}"
        );
    }

    #[test]
    fn spread_picker_uses_multiple_hosts() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        let mut used = std::collections::HashSet::new();
        for s in topo.switches() {
            for d in topo.switches() {
                if s == d {
                    continue;
                }
                for p in regnet_routing::minimal::k_minimal_paths(&topo, &dm, s, d, 2, 3) {
                    let t = split_minimal_path(&topo, &orient, &p, ItbHostPicker::Spread);
                    for seg in &t.segments {
                        if let SegmentEnd::Itb(h) = seg.end {
                            used.insert((topo.host_switch(h), h));
                        }
                    }
                }
            }
        }
        // Group by switch: at least one switch should use >1 distinct host.
        let mut per_switch = std::collections::HashMap::new();
        for (sw, h) in used {
            per_switch.entry(sw).or_insert_with(Vec::new).push(h);
        }
        assert!(
            per_switch.values().any(|v| v.len() > 1),
            "Spread picker never varied the in-transit host"
        );
    }

    #[test]
    fn materialised_journey_is_well_formed() {
        let (topo, orient) = ring4();
        let p = SwitchPath::new(vec![SwitchId(1), SwitchId(2), SwitchId(3)]);
        let t = split_minimal_path(&topo, &orient, &p, ItbHostPicker::First);
        let dst = topo.hosts_of(SwitchId(3))[1];
        let j = t.materialise(topo.hosts_of(SwitchId(1))[0], dst, topo.host_port(dst));
        j.validate().unwrap();
        assert_eq!(j.num_itbs(), 1);
        // Header: 3 port bytes + 1 itb host port + 1 mark + 1 type = wait:
        // seg0 ports = [1->2, itb host port] (2), seg1 = [2->3, dst port] (2),
        // plus 1 mark + 1 type = 6.
        assert_eq!(j.header_flits_at_injection(), 6);
        let _ = Port(0); // keep Port import used in this test module
    }
}
