//! Route-level statistics, matching the numbers quoted in section 4.7 of
//! the paper (fraction of minimal paths, average distance, average number
//! of in-transit buffers per route).

use regnet_topology::{DistanceMatrix, HostId, Topology};
use serde::{Deserialize, Serialize};

use crate::journey::SegmentEnd;
use crate::scheme::RouteDb;

/// Summary statistics of a [`RouteDb`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteStats {
    /// Fraction of ordered distinct switch pairs whose (first-alternative)
    /// route is minimal. The paper reports 80% for up\*/down\* on the 2-D
    /// torus, 94% with express channels and 100% on CPLANT.
    pub minimal_fraction: f64,
    /// Average route length in links over ordered distinct switch pairs,
    /// averaged across alternatives. Paper: 4.57 (up\*/down\*) vs 4.06
    /// (minimal) on the torus.
    pub avg_distance: f64,
    /// Average in-transit buffers per route, over all alternatives of all
    /// ordered distinct pairs. Paper: 0.43 per message with ITB-SP and 0.54
    /// with ITB-RR on the torus under uniform traffic.
    pub avg_itbs: f64,
    /// Largest number of ITBs on any single route.
    pub max_itbs: usize,
    /// Mean number of alternative routes per pair.
    pub avg_alternatives: f64,
}

impl RouteStats {
    /// Compute statistics over every ordered distinct switch pair of `db`.
    pub fn compute(topo: &Topology, db: &RouteDb) -> RouteStats {
        let dm = DistanceMatrix::compute(topo);
        let mut pairs = 0usize;
        let mut minimal_first = 0usize;
        let mut dist_sum = 0.0f64;
        let mut itb_sum = 0.0f64;
        let mut itb_max = 0usize;
        let mut alt_sum = 0usize;
        for (s, d, alts) in db.iter_pairs() {
            if s == d {
                continue;
            }
            pairs += 1;
            alt_sum += alts.len();
            if alts[0].total_links() == dm.get(s, d) as usize {
                minimal_first += 1;
            }
            // Per-pair averages across alternatives, so pairs with many
            // alternatives do not dominate (the round-robin policy gives
            // each alternative of a pair equal weight, and every pair the
            // same traffic).
            let mut pair_dist = 0usize;
            let mut pair_itbs = 0usize;
            for t in alts {
                pair_dist += t.total_links();
                pair_itbs += t.num_itbs();
                itb_max = itb_max.max(t.num_itbs());
            }
            dist_sum += pair_dist as f64 / alts.len() as f64;
            itb_sum += pair_itbs as f64 / alts.len() as f64;
        }
        RouteStats {
            minimal_fraction: minimal_first as f64 / pairs.max(1) as f64,
            avg_distance: dist_sum / pairs.max(1) as f64,
            avg_itbs: itb_sum / pairs.max(1) as f64,
            max_itbs: itb_max,
            avg_alternatives: alt_sum as f64 / pairs.max(1) as f64,
        }
    }
}

/// Distribution of in-transit duty over hosts: how many routes use each host
/// as an in-transit buffer. A heavily skewed distribution would overload a
/// few NICs.
pub fn itb_host_load(topo: &Topology, db: &RouteDb) -> Vec<(HostId, usize)> {
    let mut load = vec![0usize; topo.num_hosts()];
    for (_, _, alts) in db.iter_pairs() {
        for t in alts {
            for seg in &t.segments {
                if let SegmentEnd::Itb(h) = seg.end {
                    load[h.idx()] += 1;
                }
            }
        }
    }
    topo.hosts().map(|h| (h, load[h.idx()])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{RouteDbConfig, RoutingScheme};
    use regnet_topology::gen;

    #[test]
    fn paper_torus_updown_stats() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let stats = RouteStats::compute(&topo, &db);
        assert!(
            (0.72..=0.88).contains(&stats.minimal_fraction),
            "torus UP/DOWN minimal fraction {}, paper ~0.80",
            stats.minimal_fraction
        );
        assert!(
            (4.3..=4.9).contains(&stats.avg_distance),
            "torus UP/DOWN avg distance {}, paper 4.57",
            stats.avg_distance
        );
        assert_eq!(stats.avg_itbs, 0.0);
        assert_eq!(stats.max_itbs, 0);
        assert_eq!(stats.avg_alternatives, 1.0);
    }

    #[test]
    fn paper_torus_itb_stats() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let stats = RouteStats::compute(&topo, &db);
        // ITB routing always uses minimal paths.
        assert_eq!(stats.minimal_fraction, 1.0);
        assert!(
            (stats.avg_distance - 4.06).abs() < 0.1,
            "ITB avg distance {}, paper 4.06",
            stats.avg_distance
        );
        // Paper: ~0.43-0.54 ITBs per message under uniform traffic.
        assert!(
            (0.2..=0.9).contains(&stats.avg_itbs),
            "avg ITBs {} out of band",
            stats.avg_itbs
        );
        assert!(stats.avg_alternatives > 1.5);
    }

    #[test]
    fn paper_express_minimal_fraction() {
        // Paper: "the percentage of minimal paths is 94%" for UP/DOWN on
        // the torus with express channels.
        let topo = gen::torus_2d_express(8, 8, 8).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let stats = RouteStats::compute(&topo, &db);
        assert!(
            stats.minimal_fraction > 0.85,
            "express UP/DOWN minimal fraction {}, paper 0.94",
            stats.minimal_fraction
        );
    }

    #[test]
    fn paper_cplant_minimal_fraction() {
        // Paper: "UP/DOWN always uses minimal paths in this topology".
        let topo = gen::cplant().unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let stats = RouteStats::compute(&topo, &db);
        assert!(
            stats.minimal_fraction > 0.9,
            "cplant UP/DOWN minimal fraction {}",
            stats.minimal_fraction
        );
    }

    #[test]
    fn itb_load_is_spread() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let load = itb_host_load(&topo, &db);
        let total: usize = load.iter().map(|&(_, l)| l).sum();
        assert!(total > 0);
        let max = load.iter().map(|&(_, l)| l).max().unwrap();
        // With the Spread picker no single host should carry more than a
        // few percent of all in-transit duty.
        assert!(
            (max as f64) < total as f64 * 0.05,
            "one host carries {max} of {total} ITB routes"
        );
    }
}
