//! Multi-segment source routes ("journeys") and their wire format.
//!
//! A journey is the complete trip of a packet from its source host to its
//! destination host. Under plain up\*/down\* routing it has a single
//! segment; under the ITB mechanism it may have several, each ending at an
//! in-transit host that ejects and re-injects the packet.
//!
//! ## Wire format
//!
//! A Myrinet packet header is an ordered list of output-port bytes (one
//! consumed per switch) followed by a type byte. The ITB mechanism inserts
//! an *ITB mark* in front of each in-transit segment boundary, so the header
//! of a 2-segment journey looks like:
//!
//! ```text
//! [seg0 port bytes…][ITB mark][seg1 port bytes…][type] [payload…]
//! ```
//!
//! Every switch consumes one port byte; the in-transit host consumes the
//! ITB mark before re-injection. This module does the flit accounting that
//! the simulator relies on.

use serde::{Deserialize, Serialize};

use regnet_topology::{HostId, Port, SwitchId};

/// How a segment ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SegmentEnd {
    /// The packet is delivered: this is the final segment.
    Deliver,
    /// The packet is ejected into an in-transit buffer at this host and
    /// re-injected for the next segment.
    Itb(HostId),
}

/// One up\*/down\*-legal leg of a journey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Switches traversed by this segment, in order. The first segment
    /// starts at the source host's switch; later segments start at the
    /// previous in-transit host's switch.
    pub switches: Vec<SwitchId>,
    /// Output-port bytes, one per switch in `switches`. The final byte
    /// addresses the segment's end host (in-transit host or destination).
    pub ports: Vec<Port>,
    /// How the segment ends.
    pub end: SegmentEnd,
}

impl Segment {
    /// Switch-to-switch links traversed by this segment.
    pub fn len_links(&self) -> usize {
        self.switches.len().saturating_sub(1)
    }
}

/// A fully materialised source route from one host to another.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Journey {
    pub src: HostId,
    pub dst: HostId,
    pub segments: Vec<Segment>,
}

impl Journey {
    /// Number of in-transit buffer hops used.
    pub fn num_itbs(&self) -> usize {
        self.segments.len() - 1
    }

    /// Total switch-to-switch links traversed across all segments.
    pub fn total_links(&self) -> usize {
        self.segments.iter().map(|s| s.len_links()).sum()
    }

    /// Total header flits at injection time: every port byte, one ITB mark
    /// per in-transit segment boundary and the final type byte.
    pub fn header_flits_at_injection(&self) -> usize {
        self.header_flits_entering_segment(0)
    }

    /// Header flits still present when the packet starts segment `i`
    /// (after the in-transit host has stripped the ITB mark).
    pub fn header_flits_entering_segment(&self, i: usize) -> usize {
        let ports: usize = self.segments[i..].iter().map(|s| s.ports.len()).sum();
        let marks = self.segments.len() - 1 - i;
        ports + marks + 1 // + type byte
    }

    /// Total wire length (header + payload) when the packet starts
    /// segment `i`.
    pub fn wire_len_entering_segment(&self, i: usize, payload_flits: usize) -> usize {
        self.header_flits_entering_segment(i) + payload_flits
    }

    /// Wire length as received at the end host of segment `i`: the segment's
    /// own port bytes have been consumed by its switches.
    pub fn wire_len_at_segment_end(&self, i: usize, payload_flits: usize) -> usize {
        self.wire_len_entering_segment(i, payload_flits) - self.segments[i].ports.len()
    }

    /// The in-transit hosts visited, in order.
    pub fn itb_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.segments.iter().filter_map(|s| match s.end {
            SegmentEnd::Itb(h) => Some(h),
            SegmentEnd::Deliver => None,
        })
    }

    /// Sanity-check structural invariants (used by tests and debug builds).
    pub fn validate(&self) -> Result<(), String> {
        if self.segments.is_empty() {
            return Err("journey has no segments".into());
        }
        for (i, seg) in self.segments.iter().enumerate() {
            if seg.switches.is_empty() {
                return Err(format!("segment {i} visits no switch"));
            }
            if seg.ports.len() != seg.switches.len() {
                return Err(format!(
                    "segment {i}: {} ports for {} switches",
                    seg.ports.len(),
                    seg.switches.len()
                ));
            }
            let is_last = i == self.segments.len() - 1;
            match (is_last, seg.end) {
                (true, SegmentEnd::Deliver) | (false, SegmentEnd::Itb(_)) => {}
                (true, SegmentEnd::Itb(_)) => {
                    return Err("final segment must deliver".into());
                }
                (false, SegmentEnd::Deliver) => {
                    return Err(format!("non-final segment {i} marked Deliver"));
                }
            }
        }
        Ok(())
    }
}

/// A journey *template*: everything about a route except the destination
/// host's port byte, which is appended when the route is materialised for a
/// concrete destination host. Templates are shared by all host pairs that
/// live on the same ordered switch pair, which keeps the route database
/// small (switch-pair count, not host-pair count).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JourneyTemplate {
    /// All segments; the final segment's `ports` is one byte *short* (the
    /// destination host port is appended at materialisation).
    pub segments: Vec<Segment>,
}

impl JourneyTemplate {
    /// Materialise the template for a concrete host pair.
    ///
    /// `dst_port` is the destination host's port on the final switch.
    pub fn materialise(&self, src: HostId, dst: HostId, dst_port: Port) -> Journey {
        let mut segments = self.segments.clone();
        let last = segments.last_mut().expect("template has segments");
        last.ports.push(dst_port);
        Journey { src, dst, segments }
    }

    /// Number of in-transit buffers in this template.
    pub fn num_itbs(&self) -> usize {
        self.segments.len() - 1
    }

    /// Total switch-to-switch links traversed.
    pub fn total_links(&self) -> usize {
        self.segments.iter().map(|s| s.len_links()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_segment_journey() -> Journey {
        Journey {
            src: HostId(0),
            dst: HostId(9),
            segments: vec![
                Segment {
                    switches: vec![SwitchId(0), SwitchId(1), SwitchId(2)],
                    ports: vec![Port(1), Port(2), Port(9)],
                    end: SegmentEnd::Itb(HostId(4)),
                },
                Segment {
                    switches: vec![SwitchId(2), SwitchId(3)],
                    ports: vec![Port(0), Port(8)],
                    end: SegmentEnd::Deliver,
                },
            ],
        }
    }

    #[test]
    fn header_accounting() {
        let j = two_segment_journey();
        // 5 port bytes + 1 ITB mark + 1 type byte.
        assert_eq!(j.header_flits_at_injection(), 7);
        // After the ITB strips its mark: 2 port bytes + type.
        assert_eq!(j.header_flits_entering_segment(1), 3);
        // Entering the wire with a 512-flit payload:
        assert_eq!(j.wire_len_entering_segment(0, 512), 519);
        // Arriving at the ITB host: segment 0's three port bytes consumed.
        assert_eq!(j.wire_len_at_segment_end(0, 512), 516);
        // Arriving at the destination: header fully consumed except type.
        assert_eq!(j.wire_len_at_segment_end(1, 512), 513);
    }

    #[test]
    fn counts() {
        let j = two_segment_journey();
        assert_eq!(j.num_itbs(), 1);
        assert_eq!(j.total_links(), 3);
        assert_eq!(j.itb_hosts().collect::<Vec<_>>(), vec![HostId(4)]);
        assert!(j.validate().is_ok());
    }

    #[test]
    fn single_segment_journey() {
        let j = Journey {
            src: HostId(0),
            dst: HostId(1),
            segments: vec![Segment {
                switches: vec![SwitchId(0)],
                ports: vec![Port(3)],
                end: SegmentEnd::Deliver,
            }],
        };
        assert_eq!(j.num_itbs(), 0);
        assert_eq!(j.total_links(), 0);
        assert_eq!(j.header_flits_at_injection(), 2); // port + type
        assert!(j.validate().is_ok());
    }

    #[test]
    fn validation_catches_malformed_journeys() {
        let mut j = two_segment_journey();
        j.segments[0].end = SegmentEnd::Deliver;
        assert!(j.validate().is_err());

        let mut j = two_segment_journey();
        j.segments[1].end = SegmentEnd::Itb(HostId(2));
        assert!(j.validate().is_err());

        let mut j = two_segment_journey();
        j.segments[0].ports.pop();
        assert!(j.validate().is_err());

        let j = Journey {
            src: HostId(0),
            dst: HostId(0),
            segments: vec![],
        };
        assert!(j.validate().is_err());
    }

    #[test]
    fn template_materialisation() {
        let t = JourneyTemplate {
            segments: vec![Segment {
                switches: vec![SwitchId(0), SwitchId(1)],
                ports: vec![Port(1)], // one short: dst port appended later
                end: SegmentEnd::Deliver,
            }],
        };
        let j = t.materialise(HostId(0), HostId(3), Port(7));
        assert_eq!(j.segments[0].ports, vec![Port(1), Port(7)]);
        assert!(j.validate().is_ok());
        assert_eq!(t.num_itbs(), 0);
        assert_eq!(t.total_links(), 1);
    }
}
