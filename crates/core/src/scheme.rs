//! Route databases for the three routing schemes evaluated in the paper.

use regnet_routing::{minimal, simple_routes, SimpleRoutesConfig};
use regnet_topology::{DistanceMatrix, HostId, Orientation, SwitchId, Topology};
use serde::{Deserialize, Serialize};

use crate::journey::{Journey, JourneyTemplate, Segment, SegmentEnd};
use crate::split::{split_minimal_path, try_split_minimal_path, ItbHostPicker};

/// The routing schemes compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RoutingScheme {
    /// Original Myrinet routing: one balanced up\*/down\* path per pair
    /// (the `simple_routes` selection). Called **UP/DOWN** in the paper.
    UpDown,
    /// In-transit buffers with the *single path* selection policy: each pair
    /// always uses the same minimal path. **ITB-SP**.
    ItbSp,
    /// In-transit buffers with *round-robin* selection over up to
    /// [`RouteDbConfig::max_alternatives`] minimal paths. **ITB-RR**.
    ItbRr,
    /// In-transit buffers with seeded *random* selection among the
    /// alternatives — an extension in the direction of the paper's future
    /// work on "new route selection algorithms" at the source host.
    /// **ITB-RND**; not part of the paper's evaluation.
    ItbRandom,
}

impl RoutingScheme {
    /// The label used in the paper's plots.
    pub fn label(self) -> &'static str {
        match self {
            RoutingScheme::UpDown => "UP/DOWN",
            RoutingScheme::ItbSp => "ITB-SP",
            RoutingScheme::ItbRr => "ITB-RR",
            RoutingScheme::ItbRandom => "ITB-RND",
        }
    }

    /// Does this scheme use in-transit buffers?
    pub fn uses_itbs(self) -> bool {
        !matches!(self, RoutingScheme::UpDown)
    }

    /// The three schemes of the paper's evaluation, in presentation order.
    pub fn all() -> [RoutingScheme; 3] {
        [
            RoutingScheme::UpDown,
            RoutingScheme::ItbSp,
            RoutingScheme::ItbRr,
        ]
    }

    /// The paper's schemes plus this library's extensions.
    pub fn extended() -> [RoutingScheme; 4] {
        [
            RoutingScheme::UpDown,
            RoutingScheme::ItbSp,
            RoutingScheme::ItbRr,
            RoutingScheme::ItbRandom,
        ]
    }
}

impl std::fmt::Display for RoutingScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration for building a [`RouteDb`].
#[derive(Debug, Clone)]
pub struct RouteDbConfig {
    /// Maximum alternative routes per source-destination pair (paper: 10,
    /// "to avoid using a huge table that may result in a long look-up
    /// delay").
    pub max_alternatives: usize,
    /// Root switch of the up\*/down\* spanning tree. The paper's torus
    /// plots identify the root as "the top leftmost switch", i.e. switch 0.
    pub root: SwitchId,
    /// How in-transit hosts are chosen at a transition switch.
    pub itb_picker: ItbHostPicker,
    /// Seed for the minimal-path sampling.
    pub seed: u64,
    /// Options forwarded to the `simple_routes` emulation.
    pub simple: SimpleRoutesConfig,
}

impl Default for RouteDbConfig {
    fn default() -> Self {
        RouteDbConfig {
            max_alternatives: 10,
            root: SwitchId(0),
            itb_picker: ItbHostPicker::Spread,
            seed: 0xC0FFEE,
            simple: SimpleRoutesConfig::default(),
        }
    }
}

/// Path-selection state owned by one *source* host.
///
/// Selection state is sharded by source so that engines which process
/// hosts on different threads can each mutate their own sources' state
/// without sharing: every selection a host makes reads and writes only
/// its own `SrcSelector`.
#[derive(Debug, Clone)]
pub struct SrcSelector {
    /// ITB-RR: one round-robin counter per destination.
    rr: Vec<u8>,
    /// ITB-RND: this source's seeded stream.
    rng: rand::rngs::SmallRng,
}

impl SrcSelector {
    fn new(src: usize, n_hosts: usize) -> SrcSelector {
        // Stagger the starting alternative per pair. If every pair started
        // at index 0, sparse traffic (few messages per pair) would collapse
        // round-robin into "everyone picks the first alternative", which is
        // lexicographically correlated across pairs and unbalances links.
        let rr = (0..n_hosts)
            .map(|d| (fxhash((src * n_hosts + d) as u64, 0x5157) & 0xFF) as u8)
            .collect();
        SrcSelector {
            rr,
            rng: rand::SeedableRng::seed_from_u64(fxhash(0x5E1EC7, src as u64)),
        }
    }

    fn next(&mut self, dst: HostId, n_alts: usize) -> usize {
        let slot = &mut self.rr[dst.idx()];
        let pick = *slot as usize % n_alts;
        *slot = slot.wrapping_add(1);
        pick
    }
}

/// Per-pair round-robin state for the ITB-RR policy.
///
/// The paper round-robins "from all the alternative minimal paths" per
/// source-destination pair; we keep one counter per ordered *host* pair,
/// grouped per source host (see [`SrcSelector`]).
#[derive(Debug, Clone)]
pub struct PathSelector {
    per_src: Vec<SrcSelector>,
}

impl PathSelector {
    fn new(n_hosts: usize) -> PathSelector {
        PathSelector {
            per_src: (0..n_hosts).map(|s| SrcSelector::new(s, n_hosts)).collect(),
        }
    }

    /// The selection state of one source host.
    pub fn src_mut(&mut self, src: HostId) -> &mut SrcSelector {
        &mut self.per_src[src.idx()]
    }

    /// All per-source selection states, indexed by source host. The
    /// parallel engine uses this to hand each shard raw access to the
    /// selectors of the hosts it owns.
    pub fn per_src_mut(&mut self) -> &mut [SrcSelector] {
        &mut self.per_src
    }
}

/// The routing table of the whole network for one scheme: for every ordered
/// switch pair, the list of alternative [`JourneyTemplate`]s.
///
/// Templates are stored per *switch* pair and materialised per *host* pair
/// on demand (the only host-specific byte is the final port).
#[derive(Debug, Clone)]
pub struct RouteDb {
    scheme: RoutingScheme,
    n_switches: usize,
    n_hosts: usize,
    templates: Vec<Vec<JourneyTemplate>>,
}

impl RouteDb {
    /// Compute the routing tables for `scheme` over `topo`.
    pub fn build(topo: &Topology, scheme: RoutingScheme, cfg: &RouteDbConfig) -> RouteDb {
        let orient = Orientation::compute(topo, cfg.root);
        let n = topo.num_switches();
        let mut templates: Vec<Vec<JourneyTemplate>> = Vec::with_capacity(n * n);

        match scheme {
            RoutingScheme::UpDown => {
                let routes = simple_routes(topo, &orient, &cfg.simple);
                for s in topo.switches() {
                    for d in topo.switches() {
                        let path = routes.get(s, d);
                        // Legal paths split into exactly one segment.
                        let t = split_minimal_path(topo, &orient, path, cfg.itb_picker);
                        debug_assert_eq!(
                            t.num_itbs(),
                            0,
                            "up*/down* route {path} must not need ITBs"
                        );
                        templates.push(vec![t]);
                    }
                }
            }
            RoutingScheme::ItbSp | RoutingScheme::ItbRr | RoutingScheme::ItbRandom => {
                let dm = DistanceMatrix::compute(topo);
                // ITB-SP uses a single fixed path per pair, but we still
                // sample the same alternative set and hash-pick one so the
                // fixed choices are spread across the path space rather
                // than biased to low switch ids.
                let k = cfg.max_alternatives;
                // Legal fallback routes, computed lazily: only needed when
                // *every* minimal path of a pair requires an in-transit
                // buffer at a hostless switch (possible on degraded or
                // exotic topologies, never on the paper's).
                let mut fallback: Option<regnet_routing::PairPaths> = None;
                for s in topo.switches() {
                    for d in topo.switches() {
                        let paths = minimal::k_minimal_paths(topo, &dm, s, d, k, cfg.seed);
                        let mut alts: Vec<JourneyTemplate> = paths
                            .iter()
                            .filter_map(|p| {
                                try_split_minimal_path(topo, &orient, p, cfg.itb_picker)
                            })
                            .collect();
                        if alts.is_empty() {
                            let routes = fallback
                                .get_or_insert_with(|| simple_routes(topo, &orient, &cfg.simple));
                            let legal = routes.get(s, d);
                            let t = split_minimal_path(topo, &orient, legal, cfg.itb_picker);
                            debug_assert_eq!(t.num_itbs(), 0);
                            alts.push(t);
                        }
                        templates.push(alts);
                    }
                }
            }
        }

        RouteDb {
            scheme,
            n_switches: n,
            n_hosts: topo.num_hosts(),
            templates,
        }
    }

    /// Build a database directly from per-switch-pair templates, bypassing
    /// route computation. `templates` is indexed `src.idx() * n_switches +
    /// dst.idx()` and every pair must have at least one alternative.
    ///
    /// This deliberately performs **no legality checking**: tests use it to
    /// inject route sets with cyclic channel dependencies and verify that
    /// the simulator's wait-for-graph analyzer detects the resulting
    /// deadlock. Don't use it for real routing tables — `build` is the
    /// checked path.
    pub fn from_templates(
        scheme: RoutingScheme,
        n_switches: usize,
        n_hosts: usize,
        templates: Vec<Vec<JourneyTemplate>>,
    ) -> RouteDb {
        assert_eq!(
            templates.len(),
            n_switches * n_switches,
            "one template list per ordered switch pair"
        );
        assert!(
            templates.iter().all(|alts| !alts.is_empty()),
            "every pair needs at least one alternative"
        );
        RouteDb {
            scheme,
            n_switches,
            n_hosts,
            templates,
        }
    }

    /// Like [`from_templates`](RouteDb::from_templates), but pairs are
    /// allowed to have *no* alternative at all — the shape a degraded
    /// network produces when some switch pairs are unreachable (the mapper's
    /// runtime reconfiguration builds these). Callers must check
    /// [`has_route`](RouteDb::has_route) before [`select`](RouteDb::select).
    pub fn from_templates_partial(
        scheme: RoutingScheme,
        n_switches: usize,
        n_hosts: usize,
        templates: Vec<Vec<JourneyTemplate>>,
    ) -> RouteDb {
        assert_eq!(
            templates.len(),
            n_switches * n_switches,
            "one template list per ordered switch pair"
        );
        RouteDb {
            scheme,
            n_switches,
            n_hosts,
            templates,
        }
    }

    /// Does the table hold at least one route for this ordered switch pair?
    /// Always true for databases built by [`build`](RouteDb::build); may be
    /// false for [`from_templates_partial`](RouteDb::from_templates_partial)
    /// tables on a partitioned network.
    pub fn has_route(&self, src: SwitchId, dst: SwitchId) -> bool {
        !self.templates[src.idx() * self.n_switches + dst.idx()].is_empty()
    }

    /// The scheme this database implements.
    pub fn scheme(&self) -> RoutingScheme {
        self.scheme
    }

    /// Alternative templates for an ordered switch pair.
    pub fn alternatives(&self, src: SwitchId, dst: SwitchId) -> &[JourneyTemplate] {
        &self.templates[src.idx() * self.n_switches + dst.idx()]
    }

    /// Fresh per-pair selection state (one per simulation run).
    pub fn selector(&self) -> PathSelector {
        PathSelector::new(self.n_hosts)
    }

    /// Materialise the route a packet from `src` to `dst` should take now,
    /// according to the scheme's path-selection policy.
    pub fn select(
        &self,
        topo: &Topology,
        src: HostId,
        dst: HostId,
        selector: &mut PathSelector,
    ) -> Journey {
        self.select_from(topo, src, dst, selector.src_mut(src))
    }

    /// [`select`](RouteDb::select), given only the source host's own
    /// selection state. This is the form the parallel engine calls: each
    /// shard holds the `SrcSelector`s of exactly the hosts it owns, so
    /// re-selection after a fault never touches another shard's state.
    pub fn select_from(
        &self,
        topo: &Topology,
        src: HostId,
        dst: HostId,
        selector: &mut SrcSelector,
    ) -> Journey {
        let (ss, ds) = (topo.host_switch(src), topo.host_switch(dst));
        let alts = self.alternatives(ss, ds);
        let idx = match self.scheme {
            RoutingScheme::UpDown => 0,
            // Fixed per pair, but spread across pairs.
            RoutingScheme::ItbSp => (fxhash(src.0 as u64, dst.0 as u64) as usize) % alts.len(),
            RoutingScheme::ItbRr => selector.next(dst, alts.len()),
            RoutingScheme::ItbRandom => rand::Rng::gen_range(&mut selector.rng, 0..alts.len()),
        };
        alts[idx].materialise(src, dst, topo.host_port(dst))
    }

    /// A journey for intra-switch traffic (source and destination hosts on
    /// the same switch). Exposed for tests; `select` handles this case
    /// transparently because the switch-pair table contains the trivial
    /// template.
    pub fn same_switch_journey(topo: &Topology, src: HostId, dst: HostId) -> Journey {
        let sw = topo.host_switch(src);
        debug_assert_eq!(sw, topo.host_switch(dst));
        Journey {
            src,
            dst,
            segments: vec![Segment {
                switches: vec![sw],
                ports: vec![topo.host_port(dst)],
                end: SegmentEnd::Deliver,
            }],
        }
    }

    /// Iterate every (src switch, dst switch, alternatives) triple.
    pub fn iter_pairs(
        &self,
    ) -> impl Iterator<Item = (SwitchId, SwitchId, &[JourneyTemplate])> + '_ {
        (0..self.n_switches).flat_map(move |s| {
            (0..self.n_switches).map(move |d| {
                (
                    SwitchId(s as u32),
                    SwitchId(d as u32),
                    self.templates[s * self.n_switches + d].as_slice(),
                )
            })
        })
    }
}

#[inline]
fn fxhash(a: u64, b: u64) -> u64 {
    let mut h = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b;
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::gen;

    fn torus() -> Topology {
        gen::torus_2d(4, 4, 2).unwrap()
    }

    #[test]
    fn updown_db_has_single_alternative() {
        let topo = torus();
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        for (_, _, alts) in db.iter_pairs() {
            assert_eq!(alts.len(), 1);
            assert_eq!(alts[0].num_itbs(), 0);
        }
    }

    #[test]
    fn itb_rr_has_multiple_alternatives_and_cycles() {
        let topo = torus();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        // Pair (0,0)->(2,2): switch 0 to switch 10: six lattice paths.
        let alts = db.alternatives(SwitchId(0), SwitchId(10));
        assert!(alts.len() > 1);

        let mut sel = db.selector();
        let (src, dst) = (HostId(0), HostId(21)); // hosts on switches 0 and 10
        let picks: Vec<Journey> = (0..alts.len())
            .map(|_| db.select(&topo, src, dst, &mut sel))
            .collect();
        // Round robin must visit every alternative once before repeating.
        let again = db.select(&topo, src, dst, &mut sel);
        assert_eq!(again, picks[0]);
        let distinct: std::collections::HashSet<_> =
            picks.iter().map(|j| format!("{j:?}")).collect();
        assert_eq!(distinct.len(), picks.len());
    }

    #[test]
    fn itb_sp_is_fixed_per_pair() {
        let topo = torus();
        let db = RouteDb::build(&topo, RoutingScheme::ItbSp, &RouteDbConfig::default());
        let mut sel = db.selector();
        let a = db.select(&topo, HostId(0), HostId(21), &mut sel);
        let b = db.select(&topo, HostId(0), HostId(21), &mut sel);
        assert_eq!(a, b);
        // Different pairs may pick different alternatives (spread).
        let db_alts = db.alternatives(SwitchId(0), SwitchId(10)).len();
        assert!(db_alts > 1);
    }

    #[test]
    fn itb_journeys_are_minimal() {
        let topo = torus();
        let dm = DistanceMatrix::compute(&topo);
        for scheme in [RoutingScheme::ItbSp, RoutingScheme::ItbRr] {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            for (s, d, alts) in db.iter_pairs() {
                for t in alts {
                    assert_eq!(t.total_links(), dm.get(s, d) as usize, "{scheme} {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn updown_journeys_may_be_longer() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let longer = db
            .iter_pairs()
            .filter(|(s, d, alts)| alts[0].total_links() > dm.get(*s, *d) as usize)
            .count();
        assert!(
            longer > 0,
            "up*/down* should have non-minimal routes on a torus"
        );
    }

    #[test]
    fn same_switch_traffic() {
        let topo = torus();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let mut sel = db.selector();
        // Hosts 0 and 1 both live on switch 0.
        let j = db.select(&topo, HostId(0), HostId(1), &mut sel);
        j.validate().unwrap();
        assert_eq!(j.total_links(), 0);
        assert_eq!(j.num_itbs(), 0);
        assert_eq!(j.segments[0].ports, vec![topo.host_port(HostId(1))]);
        let j2 = RouteDb::same_switch_journey(&topo, HostId(0), HostId(1));
        assert_eq!(j.segments, j2.segments);
    }

    #[test]
    fn materialised_journeys_validate() {
        let topo = torus();
        for scheme in RoutingScheme::all() {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            let mut sel = db.selector();
            for src in topo.hosts().take(8) {
                for dst in topo.hosts() {
                    if src != dst {
                        let j = db.select(&topo, src, dst, &mut sel);
                        j.validate().unwrap_or_else(|e| panic!("{scheme}: {e}"));
                        assert_eq!(j.src, src);
                        assert_eq!(j.dst, dst);
                    }
                }
            }
        }
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(RoutingScheme::UpDown.label(), "UP/DOWN");
        assert_eq!(RoutingScheme::ItbSp.to_string(), "ITB-SP");
        assert!(RoutingScheme::ItbRr.uses_itbs());
        assert!(!RoutingScheme::UpDown.uses_itbs());
        assert_eq!(RoutingScheme::all().len(), 3);
    }

    #[test]
    fn itb_random_selects_valid_journeys_deterministically() {
        let topo = torus();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRandom, &RouteDbConfig::default());
        let dm = DistanceMatrix::compute(&topo);
        let run = || {
            let mut sel = db.selector();
            (0..20)
                .map(|i| {
                    let j = db.select(&topo, HostId(i % 8), HostId(21), &mut sel);
                    j.validate().unwrap();
                    assert_eq!(
                        j.total_links(),
                        dm.get(topo.host_switch(HostId(i % 8)), SwitchId(10)) as usize
                    );
                    j
                })
                .collect::<Vec<_>>()
        };
        // Seeded: two fresh selectors draw the same sequence.
        assert_eq!(run(), run());
        // And it actually varies across draws for a multi-alternative pair.
        let mut sel = db.selector();
        let picks: std::collections::HashSet<String> = (0..20)
            .map(|_| format!("{:?}", db.select(&topo, HostId(0), HostId(21), &mut sel)))
            .collect();
        assert!(picks.len() > 1, "random policy never varied");
    }

    #[test]
    fn hostless_transition_switch_falls_back_to_legal_path() {
        // Ring of 6 rooted at 0: levels [0,1,2,3,2,1]. The only minimal
        // path 2->3->4 needs an in-transit buffer at switch 3 — which has
        // no hosts here, so the pair must fall back to the legal detour
        // 2->1->0->5->4 (4 links, 0 ITBs).
        let mut b = regnet_topology::TopologyBuilder::new("ring6-gap", 4);
        b.add_switches(6);
        for i in 0..6u32 {
            b.connect(SwitchId(i), SwitchId((i + 1) % 6)).unwrap();
        }
        for i in [0u32, 1, 2, 4, 5] {
            b.attach_host(SwitchId(i)).unwrap();
        }
        let topo = b.build().unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let alts = db.alternatives(SwitchId(2), SwitchId(4));
        assert_eq!(alts.len(), 1, "only the fallback should remain");
        assert_eq!(alts[0].num_itbs(), 0);
        assert_eq!(alts[0].total_links(), 4, "legal detour around the gap");
        // The reverse direction 4->3->2 has the same problem, same cure.
        let rev = db.alternatives(SwitchId(4), SwitchId(2));
        assert_eq!(rev[0].num_itbs(), 0);
        assert_eq!(rev[0].total_links(), 4);
        // Materialised journeys still validate.
        let mut sel = db.selector();
        let (src, dst) = (topo.hosts_of(SwitchId(2))[0], topo.hosts_of(SwitchId(4))[0]);
        let j = db.select(&topo, src, dst, &mut sel);
        j.validate().unwrap();
        assert_eq!(j.total_links(), 4);
    }

    #[test]
    fn extended_includes_random() {
        assert_eq!(RoutingScheme::extended().len(), 4);
        assert_eq!(RoutingScheme::ItbRandom.label(), "ITB-RND");
        assert!(RoutingScheme::ItbRandom.uses_itbs());
    }
}
