//! The in-transit buffer (ITB) mechanism — the primary contribution of
//! *"Improving the Performance of Regular Networks with Source Routing"*
//! (Flich, López, Malumbres, Duato — ICPP 2000).
//!
//! up\*/down\* routing is deadlock-free because it forbids "down"→"up" link
//! transitions, but that restriction outlaws many minimal paths and drags
//! most traffic past the root switch. The ITB mechanism removes the
//! restriction: route every packet along a *minimal* path, and wherever that
//! path would need a forbidden transition, address the packet to a host
//! attached to the switch at the transition point. That host ejects the
//! packet completely from the network (cutting the cyclic channel
//! dependency — this is what keeps the scheme deadlock-free) and re-injects
//! it as soon as possible. Each resulting sub-path is a valid up\*/down\*
//! path.
//!
//! This crate provides:
//!
//! * [`Journey`] / [`JourneyTemplate`] — multi-segment source routes with
//!   in-transit hosts and their wire-format accounting,
//! * [`split_minimal_path`] — the placement algorithm that turns any minimal
//!   path into a legal journey,
//! * [`RouteDb`] — per-pair route tables for the three schemes evaluated in
//!   the paper ([`RoutingScheme::UpDown`], [`RoutingScheme::ItbSp`],
//!   [`RoutingScheme::ItbRr`]),
//! * [`analysis`] — route-level statistics (fraction of minimal paths,
//!   average distance, average ITBs per route) matching section 4.7 of the
//!   paper.
//!
//! # Example
//!
//! ```
//! use regnet_topology::{gen, DistanceMatrix, HostId};
//! use regnet_core::{RouteDb, RoutingScheme, RouteDbConfig};
//!
//! let topo = gen::torus_2d(4, 4, 2).unwrap();
//! let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
//! let mut selector = db.selector();
//! let journey = db.select(&topo, HostId(0), HostId(21), &mut selector);
//! // Every ITB journey is minimal in switch hops:
//! let dm = DistanceMatrix::compute(&topo);
//! let src_sw = topo.host_switch(HostId(0));
//! let dst_sw = topo.host_switch(HostId(21));
//! assert_eq!(journey.total_links(), dm.get(src_sw, dst_sw) as usize);
//! ```

pub mod analysis;
mod journey;
mod scheme;
mod split;

pub use journey::{Journey, JourneyTemplate, Segment, SegmentEnd};
pub use scheme::{PathSelector, RouteDb, RouteDbConfig, RoutingScheme, SrcSelector};
pub use split::{split_minimal_path, try_split_minimal_path, ItbHostPicker};
