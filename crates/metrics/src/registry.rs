//! A unified metrics registry: named counters, gauges and summaries with
//! deterministic ordering, exported as Prometheus text exposition or JSONL.
//!
//! The registry is a *snapshot* container, not a live concurrent store:
//! producers (the simulator, the campaign runner, the bench harness) build
//! one from their own deterministic state at a well-defined point in the
//! cycle domain, then export it. Families keep insertion order and points
//! keep the order they were added in, so two runs that record the same
//! values produce byte-identical exposition — which is what lets the
//! Prometheus output be golden-tested.

use crate::stats::Histogram;

/// The Prometheus type of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count (`_total` naming convention applies).
    Counter,
    /// Instantaneous value, may go up or down.
    Gauge,
    /// Pre-aggregated distribution: count, sum and a few quantiles.
    Summary,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// The value of one metric point.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Summary {
        count: u64,
        sum: f64,
        /// `(quantile, value)` pairs, e.g. `(0.5, 1200.0)`.
        quantiles: Vec<(f64, f64)>,
    },
}

/// One sample of a family: a label set plus a value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// `(key, value)` pairs, rendered in the order given.
    pub labels: Vec<(String, String)>,
    pub value: MetricValue,
}

/// All points sharing a metric name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    pub name: String,
    pub help: String,
    pub kind: MetricKind,
    pub points: Vec<MetricPoint>,
}

/// Insertion-ordered collection of metric families.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    families: Vec<MetricFamily>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Record a labelless counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            &[],
            MetricValue::Counter(value),
        );
    }

    /// Record a counter sample with labels.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.push(
            name,
            help,
            MetricKind::Counter,
            labels,
            MetricValue::Counter(value),
        );
    }

    /// Record a labelless gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.push(
            name,
            help,
            MetricKind::Gauge,
            &[],
            MetricValue::Gauge(value),
        );
    }

    /// Record a gauge sample with labels.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(
            name,
            help,
            MetricKind::Gauge,
            labels,
            MetricValue::Gauge(value),
        );
    }

    /// Record a pre-aggregated summary (count, sum, quantiles).
    pub fn summary(
        &mut self,
        name: &str,
        help: &str,
        count: u64,
        sum: f64,
        quantiles: &[(f64, f64)],
    ) {
        self.push(
            name,
            help,
            MetricKind::Summary,
            &[],
            MetricValue::Summary {
                count,
                sum,
                quantiles: quantiles.to_vec(),
            },
        );
    }

    /// Record a summary straight from a log-bucketed [`Histogram`]
    /// (p50/p90/p99/max; the histogram does not track an exact sum, so
    /// `sum` is approximated as `mean-of-quantiles × count` — pass an
    /// explicit summary instead when an exact sum is available).
    pub fn summary_from_histogram(&mut self, name: &str, help: &str, h: &Histogram) {
        let quantiles = [
            (0.5, h.quantile(0.5) as f64),
            (0.9, h.quantile(0.9) as f64),
            (0.99, h.quantile(0.99) as f64),
            (1.0, h.quantile(1.0) as f64),
        ];
        let approx_mean = quantiles.iter().map(|&(_, v)| v).sum::<f64>() / quantiles.len() as f64;
        self.summary(
            name,
            help,
            h.count(),
            approx_mean * h.count() as f64,
            &quantiles,
        );
    }

    /// Look a family up by name.
    pub fn get(&self, name: &str) -> Option<&MetricFamily> {
        self.families.iter().find(|f| f.name == name)
    }

    pub fn families(&self) -> &[MetricFamily] {
        &self.families
    }

    pub fn len(&self) -> usize {
        self.families.len()
    }

    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn push(
        &mut self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        value: MetricValue,
    ) {
        let point = MetricPoint {
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            value,
        };
        if let Some(f) = self.families.iter_mut().find(|f| f.name == name) {
            assert_eq!(
                f.kind, kind,
                "metric {name:?} registered twice with different kinds"
            );
            f.points.push(point);
            return;
        }
        self.families.push(MetricFamily {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            points: vec![point],
        });
    }

    /// Render as Prometheus text exposition (version 0.0.4). Deterministic:
    /// families and points appear in insertion order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&escape_help(&f.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(f.kind.as_str());
            out.push('\n');
            for p in &f.points {
                match &p.value {
                    MetricValue::Counter(v) => {
                        out.push_str(&f.name);
                        render_labels(&mut out, &p.labels, None);
                        out.push(' ');
                        out.push_str(&v.to_string());
                        out.push('\n');
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(&f.name);
                        render_labels(&mut out, &p.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(*v));
                        out.push('\n');
                    }
                    MetricValue::Summary {
                        count,
                        sum,
                        quantiles,
                    } => {
                        for &(q, v) in quantiles {
                            out.push_str(&f.name);
                            render_labels(&mut out, &p.labels, Some(q));
                            out.push(' ');
                            out.push_str(&fmt_f64(v));
                            out.push('\n');
                        }
                        out.push_str(&f.name);
                        out.push_str("_sum");
                        render_labels(&mut out, &p.labels, None);
                        out.push(' ');
                        out.push_str(&fmt_f64(*sum));
                        out.push('\n');
                        out.push_str(&f.name);
                        out.push_str("_count");
                        render_labels(&mut out, &p.labels, None);
                        out.push(' ');
                        out.push_str(&count.to_string());
                        out.push('\n');
                    }
                }
            }
        }
        out
    }

    /// Render as JSONL: one JSON object per point, insertion order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            for p in &f.points {
                out.push_str("{\"name\":");
                push_json_str(&mut out, &f.name);
                out.push_str(",\"kind\":\"");
                out.push_str(f.kind.as_str());
                out.push('"');
                if !p.labels.is_empty() {
                    out.push_str(",\"labels\":{");
                    for (i, (k, v)) in p.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        push_json_str(&mut out, k);
                        out.push(':');
                        push_json_str(&mut out, v);
                    }
                    out.push('}');
                }
                match &p.value {
                    MetricValue::Counter(v) => {
                        out.push_str(",\"value\":");
                        out.push_str(&v.to_string());
                    }
                    MetricValue::Gauge(v) => {
                        out.push_str(",\"value\":");
                        out.push_str(&fmt_f64(*v));
                    }
                    MetricValue::Summary {
                        count,
                        sum,
                        quantiles,
                    } => {
                        out.push_str(",\"count\":");
                        out.push_str(&count.to_string());
                        out.push_str(",\"sum\":");
                        out.push_str(&fmt_f64(*sum));
                        out.push_str(",\"quantiles\":{");
                        for (i, &(q, v)) in quantiles.iter().enumerate() {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push('"');
                            out.push_str(&fmt_f64(q));
                            out.push_str("\":");
                            out.push_str(&fmt_f64(v));
                        }
                        out.push('}');
                    }
                }
                out.push_str("}\n");
            }
        }
        out
    }
}

/// Format an `f64` deterministically: integers without a trailing `.0`
/// (stable golden bytes), everything else via Rust's shortest-roundtrip
/// formatting. Non-finite values use the Prometheus spellings.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "+Inf" } else { "-Inf" }.to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('"', "\\\"")
}

fn render_labels(out: &mut String, labels: &[(String, String)], quantile: Option<f64>) {
    if labels.is_empty() && quantile.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label(v));
        out.push('"');
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        out.push_str("quantile=\"");
        out.push_str(&fmt_f64(q));
        out.push('"');
    }
    out.push('}');
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    #[test]
    fn counters_and_gauges_render_in_insertion_order() {
        let mut r = MetricsRegistry::new();
        r.counter("regnet_flits_total", "Flits forwarded", 42);
        r.gauge("regnet_live_packets", "Packets in flight", 7.0);
        r.counter_with(
            "regnet_drops_total",
            "Dropped packets",
            &[("scheme", "itb-sp")],
            3,
        );
        let text = r.to_prometheus();
        let expected = "\
# HELP regnet_flits_total Flits forwarded
# TYPE regnet_flits_total counter
regnet_flits_total 42
# HELP regnet_live_packets Packets in flight
# TYPE regnet_live_packets gauge
regnet_live_packets 7
# HELP regnet_drops_total Dropped packets
# TYPE regnet_drops_total counter
regnet_drops_total{scheme=\"itb-sp\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn repeated_names_append_points_under_one_family() {
        let mut r = MetricsRegistry::new();
        r.counter_with("x_total", "X", &[("k", "a")], 1);
        r.counter_with("x_total", "X", &[("k", "b")], 2);
        assert_eq!(r.len(), 1);
        let text = r.to_prometheus();
        assert_eq!(text.matches("# TYPE x_total").count(), 1);
        assert!(text.contains("x_total{k=\"a\"} 1\n"));
        assert!(text.contains("x_total{k=\"b\"} 2\n"));
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_conflicts_panic() {
        let mut r = MetricsRegistry::new();
        r.counter("x", "X", 1);
        r.gauge("x", "X", 1.0);
    }

    #[test]
    fn summary_renders_quantiles_sum_count() {
        let mut r = MetricsRegistry::new();
        r.summary(
            "lat_ns",
            "Latency",
            10,
            1234.5,
            &[(0.5, 100.0), (0.99, 900.0)],
        );
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_ns summary\n"));
        assert!(text.contains("lat_ns{quantile=\"0.5\"} 100\n"));
        assert!(text.contains("lat_ns{quantile=\"0.99\"} 900\n"));
        assert!(text.contains("lat_ns_sum 1234.5\n"));
        assert!(text.contains("lat_ns_count 10\n"));
    }

    #[test]
    fn summary_from_histogram_carries_the_quantiles() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let mut r = MetricsRegistry::new();
        r.summary_from_histogram("life", "Lifetimes", &h);
        let text = r.to_prometheus();
        assert!(text.contains("life_count 1000\n"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("quantile=\"1\""));
    }

    #[test]
    fn jsonl_lines_parse_with_the_strict_reader() {
        let mut r = MetricsRegistry::new();
        r.counter("a_total", "A", 5);
        r.gauge_with("b", "B \"quoted\"", &[("topo", "torus\n8x8")], 0.25);
        r.summary("c", "C", 2, 3.0, &[(0.5, 1.5)]);
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = JsonValue::parse(line).expect("each JSONL line is valid JSON");
            assert!(v.get("name").and_then(|n| n.as_str()).is_some());
        }
        let b = JsonValue::parse(lines[1]).unwrap();
        assert_eq!(
            b.get("labels")
                .and_then(|l| l.get("topo"))
                .and_then(|t| t.as_str()),
            Some("torus\n8x8")
        );
        assert_eq!(b.get("value").and_then(|v| v.as_f64()), Some(0.25));
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(fmt_f64(7.0), "7");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "NaN");
        assert_eq!(fmt_f64(f64::INFINITY), "+Inf");
        assert_eq!(fmt_f64(f64::NEG_INFINITY), "-Inf");
    }

    #[test]
    fn escaping_help_and_labels() {
        let mut r = MetricsRegistry::new();
        r.gauge_with("g", "line1\nline2 \\ end", &[("p", "a\"b\\c\nd")], 1.0);
        let text = r.to_prometheus();
        assert!(text.contains("# HELP g line1\\nline2 \\\\ end\n"));
        assert!(text.contains("g{p=\"a\\\"b\\\\c\\nd\"} 1\n"));
    }
}
