//! Small process-introspection helpers shared by the bench and campaign
//! harnesses. Everything here is wall-clock/OS-domain data: it must never
//! feed into `RunStats` or any field compared by a determinism check.

/// Peak resident-set size of this process in KiB, from `VmHWM` in
/// `/proc/self/status`; `None` off Linux or if the field is absent.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #[test]
    fn peak_rss_reads_proc_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(super::peak_rss_kb().unwrap() > 0);
    }
}
