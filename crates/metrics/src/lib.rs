//! Measurement and reporting for `regnet` simulations: streaming statistics,
//! latency histograms, latency-vs-throughput curves with saturation
//! detection, and link-utilization summaries.

pub mod chrome;
mod curve;
pub mod export;
pub mod json;
pub mod registry;
mod stats;
pub mod sys;
mod util;

pub use chrome::{Arg as ChromeArg, ChromeTrace};
pub use curve::{Curve, CurvePoint, NamedSeries, TimeSeries};
pub use export::{curve_to_dat, write_figure, write_time_series};
pub use json::JsonValue;
pub use registry::{MetricFamily, MetricKind, MetricPoint, MetricValue, MetricsRegistry};
pub use stats::{Histogram, RunningStats};
pub use sys::peak_rss_kb;
pub use util::UtilizationSummary;
