//! Measurement and reporting for `regnet` simulations: streaming statistics,
//! latency histograms, latency-vs-throughput curves with saturation
//! detection, and link-utilization summaries.

mod curve;
pub mod export;
mod stats;
mod util;

pub use curve::{Curve, CurvePoint, NamedSeries, TimeSeries};
pub use stats::{Histogram, RunningStats};
pub use util::UtilizationSummary;
