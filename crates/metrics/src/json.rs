//! A minimal JSON reader.
//!
//! The workspace's vendored `serde_json` stand-in only *writes* JSON;
//! nothing in the reproduction needed to read any until the bench
//! pipeline grew a `--check <baseline>` mode (compare a fresh
//! `BENCH_netsim.json` against the committed one) and the trace tests
//! needed to validate exported Chrome `trace_event` files. This module is
//! that reader: a strict RFC 8259 recursive-descent parser into a
//! [`JsonValue`] tree, plus the handful of accessors those two consumers
//! use. It is not a serde implementation and does not try to be fast.

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers as f64 (adequate for bench figures and timestamps).
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    /// Key/value pairs in document order (duplicate keys are kept; `get`
    /// returns the first).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; the two
                            // halves come back as replacement characters
                            // (no producer in this workspace emits them).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self.bytes.get(start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-12.5e2").unwrap(),
            JsonValue::Number(-1250.0)
        );
        assert_eq!(
            JsonValue::parse("\"a\\nb\"").unwrap(),
            JsonValue::String("a\nb".into())
        );
    }

    #[test]
    fn nested_document() {
        let v = JsonValue::parse(
            r#"{"cells": [{"topo": "torus", "cycles_per_sec": 1.5e6, "traced": false}], "rss": 42}"#,
        )
        .unwrap();
        let cells = v.get("cells").unwrap().as_array().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("topo").unwrap().as_str(), Some("torus"));
        assert_eq!(
            cells[0].get("cycles_per_sec").unwrap().as_f64(),
            Some(1.5e6)
        );
        assert_eq!(cells[0].get("traced").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("rss").unwrap().as_f64(), Some(42.0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = JsonValue::parse(r#""S0→S1 café 日本""#).unwrap();
        assert_eq!(v.as_str(), Some("S0→S1 café 日本"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn roundtrips_vendored_writer() {
        // The vendored serde_json writer and this reader must agree.
        #[derive(serde::Serialize)]
        struct S {
            name: String,
            xs: Vec<u64>,
            frac: f64,
            on: bool,
        }
        let s = S {
            name: "a \"quoted\" name".into(),
            xs: vec![1, 2, 3],
            frac: 0.25,
            on: true,
        };
        let text = serde_json::to_string_pretty(&s).unwrap();
        let v = JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("a \"quoted\" name"));
        assert_eq!(v.get("xs").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("on").unwrap().as_bool(), Some(true));
    }
}
