//! Plot-ready exports: whitespace-separated `.dat` series and a gnuplot
//! script reproducing the paper's presentation (average message latency on
//! the y axis, accepted traffic on the x axis, one series per routing
//! scheme).

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use crate::curve::{Curve, TimeSeries};

/// Render one curve as a whitespace-separated data table
/// (`accepted latency_ns p99_ns offered itbs`).
pub fn curve_to_dat(curve: &Curve) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", curve.label);
    let _ = writeln!(
        out,
        "# accepted  avg_latency_ns  p99_latency_ns  offered  itbs_per_msg"
    );
    for p in &curve.points {
        let _ = writeln!(
            out,
            "{:.6} {:.1} {:.1} {:.6} {:.4}",
            p.accepted, p.avg_latency_ns, p.p99_latency_ns, p.offered, p.avg_itbs_per_msg
        );
    }
    out
}

/// A gnuplot script plotting `files` (already written `.dat` paths) in the
/// paper's style.
pub fn gnuplot_script(title: &str, output_png: &str, files: &[(String, String)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "set terminal pngcairo size 900,600");
    let _ = writeln!(out, "set output '{output_png}'");
    let _ = writeln!(out, "set title '{title}'");
    let _ = writeln!(out, "set xlabel 'Accepted traffic (flits/ns/switch)'");
    let _ = writeln!(out, "set ylabel 'Average message latency (ns)'");
    let _ = writeln!(out, "set key top left");
    let _ = writeln!(out, "set grid");
    let mut first = true;
    let _ = write!(out, "plot ");
    for (path, label) in files {
        if !first {
            let _ = write!(out, ", \\\n     ");
        }
        let _ = write!(out, "'{path}' using 1:2 with linespoints title '{label}'");
        first = false;
    }
    let _ = writeln!(out);
    out
}

/// Write a set of curves as `.dat` files plus a `plot.gp` script into
/// `dir`. Returns the script path.
pub fn write_figure(
    dir: &Path,
    figure_name: &str,
    title: &str,
    curves: &[Curve],
) -> io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let mut files = Vec::new();
    for (i, c) in curves.iter().enumerate() {
        let fname = format!("{figure_name}_{i}.dat");
        std::fs::write(dir.join(&fname), curve_to_dat(c))?;
        files.push((fname, c.label.clone()));
    }
    let script = gnuplot_script(title, &format!("{figure_name}.png"), &files);
    let script_path = dir.join(format!("{figure_name}.gp"));
    std::fs::write(&script_path, script)?;
    Ok(script_path)
}

/// Render a [`TimeSeries`] as a whitespace-separated data table: first
/// column is the sample's starting cycle, then one column per series.
/// Ragged series are padded with `nan` (gnuplot skips those points).
pub fn time_series_to_dat(ts: &TimeSeries) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", ts.label);
    let _ = write!(out, "# cycle");
    for s in &ts.series {
        let _ = write!(out, "  {}", s.name.replace(char::is_whitespace, "_"));
    }
    let _ = writeln!(out);
    for i in 0..ts.samples() {
        let _ = write!(out, "{}", i as u64 * ts.interval_cycles);
        for s in &ts.series {
            match s.values.get(i) {
                Some(v) => {
                    let _ = write!(out, " {v:.6}");
                }
                None => {
                    let _ = write!(out, " nan");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// A gnuplot script plotting every column of a time-series `.dat` file
/// against the cycle column.
pub fn time_series_gnuplot_script(ts: &TimeSeries, dat_file: &str, output_png: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "set terminal pngcairo size 1100,600");
    let _ = writeln!(out, "set output '{output_png}'");
    let _ = writeln!(out, "set title '{}'", ts.label);
    let _ = writeln!(out, "set xlabel 'Cycle'");
    let _ = writeln!(out, "set ylabel 'Utilization'");
    let _ = writeln!(out, "set key outside right");
    let _ = writeln!(out, "set grid");
    let _ = write!(out, "plot ");
    for (i, s) in ts.series.iter().enumerate() {
        if i > 0 {
            let _ = write!(out, ", \\\n     ");
        }
        let _ = write!(
            out,
            "'{dat_file}' using 1:{} with lines title '{}'",
            i + 2,
            s.name
        );
    }
    let _ = writeln!(out);
    out
}

/// Write a [`TimeSeries`] as `<name>.json` (machine-readable),
/// `<name>.dat` (gnuplot data) and `<name>.gp` (plot script) in `dir`.
/// Returns the JSON path.
pub fn write_time_series(
    dir: &Path,
    name: &str,
    ts: &TimeSeries,
) -> io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(ts).map_err(|e| io::Error::other(e.to_string()))?;
    std::fs::write(&json_path, json)?;
    let dat_name = format!("{name}.dat");
    std::fs::write(dir.join(&dat_name), time_series_to_dat(ts))?;
    let script = time_series_gnuplot_script(ts, &dat_name, &format!("{name}.png"));
    std::fs::write(dir.join(format!("{name}.gp")), script)?;
    Ok(json_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurvePoint;

    fn curve() -> Curve {
        let mut c = Curve::new("ITB-RR");
        c.push(CurvePoint {
            offered: 0.01,
            accepted: 0.0099,
            avg_latency_ns: 5000.0,
            p99_latency_ns: 9000.0,
            avg_total_latency_ns: 5500.0,
            avg_itbs_per_msg: 0.5,
            delivered: 1234,
        });
        c
    }

    #[test]
    fn dat_format() {
        let d = curve_to_dat(&curve());
        assert!(d.starts_with("# ITB-RR\n"));
        let data_line = d.lines().nth(2).unwrap();
        assert_eq!(
            data_line.split_whitespace().collect::<Vec<_>>(),
            vec!["0.009900", "5000.0", "9000.0", "0.010000", "0.5000"]
        );
    }

    #[test]
    fn script_plots_all_series() {
        let s = gnuplot_script(
            "Figure 7a",
            "fig7a.png",
            &[
                ("a.dat".into(), "UP/DOWN".into()),
                ("b.dat".into(), "ITB-RR".into()),
            ],
        );
        assert!(s.contains("set output 'fig7a.png'"));
        assert!(s.contains("'a.dat' using 1:2"));
        assert!(s.contains("title 'ITB-RR'"));
        assert_eq!(s.matches("linespoints").count(), 2);
    }

    fn series() -> TimeSeries {
        let mut ts = TimeSeries::new("util over time", 1000);
        ts.push("S0->S1", vec![0.5, 0.25, 0.75]);
        ts.push("S1->S0", vec![0.1, 0.2]);
        ts
    }

    #[test]
    fn time_series_dat_pads_ragged_series() {
        let d = time_series_to_dat(&series());
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines[0], "# util over time");
        assert_eq!(lines[1], "# cycle  S0->S1  S1->S0");
        assert_eq!(lines[2], "0 0.500000 0.100000");
        assert_eq!(lines[3], "1000 0.250000 0.200000");
        assert_eq!(lines[4], "2000 0.750000 nan");
    }

    #[test]
    fn time_series_script_plots_each_column() {
        let ts = series();
        let s = time_series_gnuplot_script(&ts, "x.dat", "x.png");
        assert!(s.contains("'x.dat' using 1:2 with lines title 'S0->S1'"));
        assert!(s.contains("'x.dat' using 1:3 with lines title 'S1->S0'"));
    }

    #[test]
    fn write_time_series_creates_files() {
        let dir = std::env::temp_dir().join(format!("regnet-ts-{}", std::process::id()));
        let json = write_time_series(&dir, "ts_test", &series()).unwrap();
        assert!(json.exists());
        assert!(dir.join("ts_test.dat").exists());
        assert!(dir.join("ts_test.gp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_figure_creates_files() {
        let dir = std::env::temp_dir().join(format!("regnet-export-{}", std::process::id()));
        let script = write_figure(&dir, "fig_test", "T", &[curve(), curve()]).unwrap();
        assert!(script.exists());
        assert!(dir.join("fig_test_0.dat").exists());
        assert!(dir.join("fig_test_1.dat").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
