//! Latency-vs-accepted-traffic curves, the paper's main presentation format.

use serde::{Deserialize, Serialize};

/// One simulated point of a latency/throughput curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Offered load, flits/ns/switch.
    pub offered: f64,
    /// Accepted traffic, flits/ns/switch (paper footnote 5).
    pub accepted: f64,
    /// Average message latency in nanoseconds (injection at the source host
    /// to delivery at the destination host — paper footnote 4).
    pub avg_latency_ns: f64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_latency_ns: f64,
    /// Average latency including the source queue (generation to delivery).
    pub avg_total_latency_ns: f64,
    /// Average in-transit buffers used per delivered message.
    pub avg_itbs_per_msg: f64,
    /// Messages delivered during the measurement window.
    pub delivered: u64,
}

/// A full latency/throughput curve for one (topology, scheme, pattern)
/// combination.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Curve {
    pub label: String,
    pub points: Vec<CurvePoint>,
}

impl Curve {
    pub fn new(label: impl Into<String>) -> Curve {
        Curve {
            label: label.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, p: CurvePoint) {
        self.points.push(p);
    }

    /// Build a curve from points collected in arbitrary order (e.g. as
    /// campaign cells land from a worker pool), sorted by offered load so
    /// the result is independent of completion order.
    pub fn from_points(label: impl Into<String>, points: Vec<CurvePoint>) -> Curve {
        let mut c = Curve {
            label: label.into(),
            points,
        };
        c.sort_by_offered();
        c
    }

    /// Sort the points by offered load (stable, total order — NaNs sort
    /// last, though no simulator path produces them).
    pub fn sort_by_offered(&mut self) {
        self.points.sort_by(|a, b| a.offered.total_cmp(&b.offered));
    }

    /// Network throughput as the paper reports it: the highest accepted
    /// traffic observed across the sweep (accepted traffic plateaus at the
    /// saturation point).
    pub fn throughput(&self) -> f64 {
        self.points.iter().map(|p| p.accepted).fold(0.0, f64::max)
    }

    /// The first offered load at which the network no longer accepts the
    /// offered traffic (accepted < `ratio` × offered). Returns `None` while
    /// the network keeps up everywhere in the sweep.
    pub fn saturation_offered(&self, ratio: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.accepted < p.offered * ratio)
            .map(|p| p.offered)
    }

    /// Zero-load latency estimate: the average latency of the lowest
    /// offered-load point.
    pub fn zero_load_latency_ns(&self) -> Option<f64> {
        self.points
            .iter()
            .min_by(|a, b| a.offered.total_cmp(&b.offered))
            .map(|p| p.avg_latency_ns)
    }

    /// Render as a fixed-width table like the paper's plots' underlying data.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.label));
        out.push_str(
            "offered(fl/ns/sw)  accepted(fl/ns/sw)  avg_lat(ns)    p99_lat(ns)    itbs/msg\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:<18.5} {:<19.5} {:<14.1} {:<14.1} {:.3}\n",
                p.offered, p.accepted, p.avg_latency_ns, p.p99_latency_ns, p.avg_itbs_per_msg
            ));
        }
        out
    }
}

/// One named series of a [`TimeSeries`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedSeries {
    pub name: String,
    pub values: Vec<f64>,
}

/// A set of equally-sampled time series sharing one clock: sample `i` of
/// every series covers cycles `[i*interval_cycles, (i+1)*interval_cycles)`.
/// Produced from simulator telemetry (e.g. per-link utilization over time)
/// and exported by [`export::write_time_series`](crate::export::write_time_series).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    pub label: String,
    /// Sampling interval, cycles.
    pub interval_cycles: u64,
    pub series: Vec<NamedSeries>,
}

impl TimeSeries {
    pub fn new(label: impl Into<String>, interval_cycles: u64) -> TimeSeries {
        TimeSeries {
            label: label.into(),
            interval_cycles,
            series: Vec::new(),
        }
    }

    pub fn push(&mut self, name: impl Into<String>, values: Vec<f64>) {
        self.series.push(NamedSeries {
            name: name.into(),
            values,
        });
    }

    /// Length of the longest series (number of samples).
    pub fn samples(&self) -> usize {
        self.series
            .iter()
            .map(|s| s.values.len())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, accepted: f64, lat: f64) -> CurvePoint {
        CurvePoint {
            offered,
            accepted,
            avg_latency_ns: lat,
            p99_latency_ns: lat * 2.0,
            avg_total_latency_ns: lat * 1.1,
            avg_itbs_per_msg: 0.4,
            delivered: 1000,
        }
    }

    fn sample_curve() -> Curve {
        let mut c = Curve::new("ITB-RR torus uniform");
        c.push(point(0.005, 0.005, 4000.0));
        c.push(point(0.010, 0.010, 4500.0));
        c.push(point(0.020, 0.0199, 6000.0));
        c.push(point(0.030, 0.0290, 12000.0));
        c.push(point(0.040, 0.0310, 60000.0));
        c
    }

    #[test]
    fn throughput_is_max_accepted() {
        let c = sample_curve();
        assert_eq!(c.throughput(), 0.0310);
    }

    #[test]
    fn saturation_detection() {
        let c = sample_curve();
        // 0.040 is the first point where accepted (0.0310) falls below
        // 95% of offered (0.038).
        assert_eq!(c.saturation_offered(0.95), Some(0.040));
        assert_eq!(c.saturation_offered(0.5), None);
        // A stricter ratio flags the 0.030 point too (0.0290 < 0.030*0.97).
        assert_eq!(c.saturation_offered(0.97), Some(0.030));
    }

    #[test]
    fn zero_load_latency() {
        let c = sample_curve();
        assert_eq!(c.zero_load_latency_ns(), Some(4000.0));
        assert_eq!(Curve::new("empty").zero_load_latency_ns(), None);
    }

    #[test]
    fn table_rendering() {
        let c = sample_curve();
        let t = c.to_table();
        assert!(t.contains("ITB-RR torus uniform"));
        assert!(t.lines().count() >= 7);
        assert!(t.contains("0.00500"));
    }

    #[test]
    fn from_points_sorts_by_offered() {
        let pts = vec![
            point(0.030, 0.0290, 12000.0),
            point(0.005, 0.005, 4000.0),
            point(0.020, 0.0199, 6000.0),
        ];
        let c = Curve::from_points("shuffled", pts);
        let loads: Vec<f64> = c.points.iter().map(|p| p.offered).collect();
        assert_eq!(loads, vec![0.005, 0.020, 0.030]);
        assert_eq!(c.zero_load_latency_ns(), Some(4000.0));
    }

    #[test]
    fn empty_curve() {
        let c = Curve::new("x");
        assert_eq!(c.throughput(), 0.0);
        assert_eq!(c.saturation_offered(0.9), None);
    }
}
