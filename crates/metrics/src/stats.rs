//! Streaming statistics and log-bucketed histograms.

use serde::{Deserialize, Serialize};

/// Welford-style streaming mean/variance plus min/max.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    pub fn new() -> RunningStats {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            f64::NAN
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram with logarithmically spaced buckets, good for latency
/// distributions spanning several orders of magnitude. Sub-bucket linear
/// resolution keeps the quantile error under ~3%.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    /// 32 sub-buckets per power of two.
    counts: Vec<u64>,
    total: u64,
}

const SUB: usize = 32;
const SUB_BITS: u32 = 5;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; 64 * SUB],
            total: 0,
        }
    }

    fn bucket(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) - SUB as u64) as usize;
        ((msb - SUB_BITS + 1) as usize) * SUB + sub
    }

    fn bucket_low(idx: usize) -> u64 {
        let exp = idx / SUB;
        let sub = idx % SUB;
        if exp == 0 {
            sub as u64
        } else {
            ((SUB + sub) as u64) << (exp - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket(value).min(self.counts.len() - 1);
        self.counts[b] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile (`q` in `[0, 1]`); returns the lower bound of the
    /// bucket holding the q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_low(i);
            }
        }
        Self::bucket_low(self.counts.len() - 1)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats() {
        let s = RunningStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = RunningStats::new();
        a.push(1.0);
        let b = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = RunningStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB as u64 {
            h.record(v);
        }
        assert_eq!(h.count(), SUB as u64);
        assert_eq!(h.quantile(0.0), 0);
        // Exact buckets below SUB.
        assert_eq!(h.quantile(1.0), SUB as u64 - 1);
    }

    #[test]
    fn histogram_quantile_accuracy() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = q * 100_000.0;
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q}: est {est} vs {exact}"
            );
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000 {
            if v % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        let med = a.quantile(0.5) as f64;
        assert!((med - 500.0).abs() < 40.0, "{med}");
    }

    #[test]
    fn histogram_empty_quantiles_are_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        // Merging an empty histogram is a no-op.
        let mut a = Histogram::new();
        a.record(7);
        a.merge(&h);
        assert_eq!(a.count(), 1);
        assert_eq!(a.quantile(1.0), 7);
    }

    #[test]
    fn histogram_huge_values_saturate() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > 0);
    }
}
