//! Chrome `trace_event` JSON writer.
//!
//! Builds files loadable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): the object-format variant
//! (`{"traceEvents": [...]}`) of the Trace Event Format. The builder is
//! deliberately dumb — callers append typed events (instants, complete
//! slices, async spans, flow arrows, metadata) and every event carries the
//! mandatory `ph`, `ts`, `pid` and `tid` fields. Timestamps are in
//! microseconds, per the format; `regnet-netsim` converts simulator cycles
//! with `cycle * CYCLE_NS / 1000`.
//!
//! Output is deterministic: events are emitted in insertion order and
//! timestamps are fixed-precision, so golden-file tests can compare the
//! whole document byte for byte.

use std::fmt::Write as _;

/// One typed argument attached to an event (rendered under `"args"`).
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    Str(String),
    Int(u64),
    Float(f64),
}

impl Arg {
    fn write(&self, out: &mut String) {
        match self {
            Arg::Str(s) => serde::write_json_string(s, out),
            Arg::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Arg::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Event {
    name: String,
    cat: &'static str,
    /// Trace-event phase: `i` instant, `X` complete, `b`/`e` async
    /// begin/end, `s`/`t`/`f` flow start/step/end, `M` metadata.
    ph: char,
    ts_us: f64,
    pid: u32,
    tid: u32,
    dur_us: Option<f64>,
    /// `id` for async/flow correlation.
    id: Option<u64>,
    args: Vec<(&'static str, Arg)>,
}

/// Builder for one trace file.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Event>,
}

impl ChromeTrace {
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    /// Number of events appended so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Name a process track (Perfetto group header).
    pub fn process_name(&mut self, pid: u32, name: &str) {
        self.events.push(Event {
            name: "process_name".into(),
            cat: "__metadata",
            ph: 'M',
            ts_us: 0.0,
            pid,
            tid: 0,
            dur_us: None,
            id: None,
            args: vec![("name", Arg::Str(name.into()))],
        });
    }

    /// Name a thread track within a process.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(Event {
            name: "thread_name".into(),
            cat: "__metadata",
            ph: 'M',
            ts_us: 0.0,
            pid,
            tid,
            dur_us: None,
            id: None,
            args: vec![("name", Arg::Str(name.into()))],
        });
    }

    /// A zero-duration marker on one track.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &'static str,
        ts_us: f64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: 'i',
            ts_us,
            pid,
            tid,
            dur_us: None,
            id: None,
            args,
        });
    }

    /// A slice with an explicit duration (`ph: "X"`).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        name: &str,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
        pid: u32,
        tid: u32,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: 'X',
            ts_us,
            pid,
            tid,
            dur_us: Some(dur_us),
            id: None,
            args,
        });
    }

    /// Open an async span (`ph: "b"`), correlated by `(cat, id)`.
    pub fn async_begin(
        &mut self,
        name: &str,
        cat: &'static str,
        id: u64,
        ts_us: f64,
        pid: u32,
        args: Vec<(&'static str, Arg)>,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: 'b',
            ts_us,
            pid,
            tid: 0,
            dur_us: None,
            id: Some(id),
            args,
        });
    }

    /// Close an async span opened with the same `(cat, id)`.
    pub fn async_end(&mut self, name: &str, cat: &'static str, id: u64, ts_us: f64, pid: u32) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ph: 'e',
            ts_us,
            pid,
            tid: 0,
            dur_us: None,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Start a flow arrow (`ph: "s"`) at a point on a track.
    pub fn flow_start(
        &mut self,
        name: &str,
        cat: &'static str,
        id: u64,
        ts_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.flow('s', name, cat, id, ts_us, pid, tid);
    }

    /// An intermediate flow point (`ph: "t"`) — e.g. one ITB hop.
    pub fn flow_step(
        &mut self,
        name: &str,
        cat: &'static str,
        id: u64,
        ts_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.flow('t', name, cat, id, ts_us, pid, tid);
    }

    /// Terminate a flow arrow (`ph: "f"`).
    pub fn flow_end(
        &mut self,
        name: &str,
        cat: &'static str,
        id: u64,
        ts_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.flow('f', name, cat, id, ts_us, pid, tid);
    }

    #[allow(clippy::too_many_arguments)]
    fn flow(
        &mut self,
        ph: char,
        name: &str,
        cat: &'static str,
        id: u64,
        ts_us: f64,
        pid: u32,
        tid: u32,
    ) {
        self.events.push(Event {
            name: name.into(),
            cat,
            ph,
            ts_us,
            pid,
            tid,
            dur_us: None,
            id: Some(id),
            args: Vec::new(),
        });
    }

    /// Render the trace as object-format `trace_event` JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[\n");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  {\"name\":");
            serde::write_json_string(&ev.name, &mut out);
            let _ = write!(out, ",\"cat\":\"{}\"", ev.cat);
            let _ = write!(out, ",\"ph\":\"{}\"", ev.ph);
            // Fixed precision keeps the document byte-stable; 3 decimals of
            // a microsecond = nanosecond resolution, finer than one cycle.
            let _ = write!(out, ",\"ts\":{:.3}", ev.ts_us);
            if let Some(dur) = ev.dur_us {
                let _ = write!(out, ",\"dur\":{dur:.3}");
            }
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
            if let Some(id) = ev.id {
                let _ = write!(out, ",\"id\":\"{id:x}\"");
            }
            // Flow arrows bind to the *next* slice on the track by default;
            // `bp:"e"` binds to the enclosing one, which is what the
            // packet-journey tracks want.
            if matches!(ev.ph, 's' | 't' | 'f') {
                out.push_str(",\"bp\":\"e\"");
            }
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, &mut out);
                    out.push(':');
                    v.write(&mut out);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;

    fn sample() -> ChromeTrace {
        let mut t = ChromeTrace::new();
        t.process_name(1, "switches");
        t.thread_name(1, 3, "S3");
        t.instant(
            "route",
            "switch",
            12.5,
            1,
            3,
            vec![("out_port", Arg::Int(2)), ("pid", Arg::Int(7))],
        );
        t.complete("residence", "switch", 12.5, 4.0, 1, 3, vec![]);
        t.async_begin("pkt 7", "journey", 7, 10.0, 3, vec![("src", Arg::Int(0))]);
        t.flow_start("journey", "flow", 7, 10.0, 1, 3);
        t.flow_step("itb", "flow", 7, 14.0, 2, 1);
        t.flow_end("journey", "flow", 7, 20.0, 2, 0);
        t.async_end("pkt 7", "journey", 7, 20.0, 3);
        t
    }

    #[test]
    fn emits_valid_trace_event_json() {
        let text = sample().to_json();
        let doc = JsonValue::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 9);
        for ev in events {
            // The mandatory trace_event fields.
            assert!(ev.get("ph").and_then(|v| v.as_str()).is_some());
            assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
            assert!(ev.get("pid").and_then(|v| v.as_f64()).is_some());
            assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
        }
        // Flow phases present for the ITB-hop arrows.
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        for ph in ["s", "t", "f", "b", "e", "i", "X", "M"] {
            assert!(phases.contains(&ph), "missing phase {ph}: {phases:?}");
        }
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn args_and_ids_roundtrip() {
        let text = sample().to_json();
        let doc = JsonValue::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let route = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("route"))
            .unwrap();
        let args = route.get("args").unwrap();
        assert_eq!(args.get("out_port").unwrap().as_f64(), Some(2.0));
        let flow = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("t"))
            .unwrap();
        assert_eq!(flow.get("id").unwrap().as_str(), Some("7"));
        let x = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(4.0));
    }
}
