//! Link-utilization summaries (the paper's Figures 8, 9 and 11).

use serde::{Deserialize, Serialize};

/// Utilization of every directed channel over a measurement window, plus the
/// aggregate statistics the paper quotes ("65% of links have a utilization
/// less than 10%", "utilization ranges from 14% to 29%", …).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationSummary {
    /// Busy fraction per directed channel, in [0, 1].
    pub per_channel: Vec<f64>,
}

impl UtilizationSummary {
    /// Build from per-channel busy-cycle counters over `window` cycles.
    /// A zero-length window (run ended before measurement started) yields
    /// all-zero utilizations rather than NaN, so downstream summaries stay
    /// finite and `==`-comparable.
    pub fn from_busy_cycles(busy: &[u64], window: u64) -> UtilizationSummary {
        if window == 0 {
            return UtilizationSummary {
                per_channel: vec![0.0; busy.len()],
            };
        }
        UtilizationSummary {
            per_channel: busy.iter().map(|&b| b as f64 / window as f64).collect(),
        }
    }

    pub fn max(&self) -> f64 {
        self.per_channel.iter().copied().fold(0.0, f64::max)
    }

    pub fn min(&self) -> f64 {
        if self.per_channel.is_empty() {
            return 0.0;
        }
        self.per_channel.iter().copied().fold(1.0, f64::min)
    }

    pub fn mean(&self) -> f64 {
        if self.per_channel.is_empty() {
            return 0.0;
        }
        self.per_channel.iter().sum::<f64>() / self.per_channel.len() as f64
    }

    /// Fraction of channels whose utilization is below `threshold`.
    pub fn fraction_below(&self, threshold: f64) -> f64 {
        if self.per_channel.is_empty() {
            return 0.0;
        }
        self.per_channel.iter().filter(|&&u| u < threshold).count() as f64
            / self.per_channel.len() as f64
    }

    /// Coefficient of variation (std-dev / mean): the paper's "balanced
    /// traffic" claim corresponds to a small value.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .per_channel
            .iter()
            .map(|&u| (u - mean) * (u - mean))
            .sum::<f64>()
            / self.per_channel.len() as f64;
        var.sqrt() / mean
    }

    /// A compact textual histogram (deciles of utilization).
    pub fn to_histogram_table(&self) -> String {
        let mut buckets = [0usize; 10];
        for &u in &self.per_channel {
            let b = ((u * 10.0) as usize).min(9);
            buckets[b] += 1;
        }
        let mut out = String::from("util%   channels\n");
        for (i, &c) in buckets.iter().enumerate() {
            out.push_str(&format!("{:>2}-{:>3}  {}\n", i * 10, (i + 1) * 10, c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts() {
        let u = UtilizationSummary::from_busy_cycles(&[50, 100, 0, 25], 100);
        assert_eq!(u.per_channel, vec![0.5, 1.0, 0.0, 0.25]);
        assert_eq!(u.max(), 1.0);
        assert_eq!(u.min(), 0.0);
        assert!((u.mean() - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn fraction_below() {
        let u = UtilizationSummary::from_busy_cycles(&[5, 9, 10, 50, 90], 100);
        assert!((u.fraction_below(0.10) - 0.4).abs() < 1e-12);
        assert_eq!(u.fraction_below(1.1), 1.0);
    }

    #[test]
    fn imbalance_zero_for_uniform() {
        let u = UtilizationSummary::from_busy_cycles(&[30, 30, 30], 100);
        assert_eq!(u.imbalance(), 0.0);
        let v = UtilizationSummary::from_busy_cycles(&[0, 60], 100);
        assert!(v.imbalance() > 0.9);
    }

    #[test]
    fn histogram_table() {
        let u = UtilizationSummary::from_busy_cycles(&[5, 15, 95, 100], 100);
        let t = u.to_histogram_table();
        assert!(t.contains("90-100  2"));
        assert!(t.lines().count() == 11);
    }

    #[test]
    fn empty() {
        let u = UtilizationSummary::from_busy_cycles(&[], 10);
        assert_eq!(u.mean(), 0.0);
        assert_eq!(u.min(), 0.0);
        assert_eq!(u.max(), 0.0);
        assert_eq!(u.fraction_below(0.5), 0.0);
        assert_eq!(u.imbalance(), 0.0);
    }

    #[test]
    fn zero_window_is_all_zeros() {
        let u = UtilizationSummary::from_busy_cycles(&[7, 0, 3], 0);
        assert_eq!(u.per_channel, vec![0.0, 0.0, 0.0]);
        assert_eq!(u.mean(), 0.0);
        assert_eq!(u.min(), 0.0);
        assert_eq!(u.max(), 0.0);
        assert_eq!(u.imbalance(), 0.0);
        // Everything stays finite — no NaN leaks into serialized reports.
        assert!(u.per_channel.iter().all(|x| x.is_finite()));
    }
}
