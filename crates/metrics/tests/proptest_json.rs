//! Property test: the minimal JSON reader must accept everything the
//! vendored serde writer can emit, and read back exactly the value that
//! was written — arbitrary nesting, escape-heavy strings, and numeric
//! edge cases, in both compact and pretty form.

use proptest::prelude::*;
use proptest::test_runner::TestRng;

use regnet_metrics::JsonValue;

/// A random JSON document, serialized through the vendored writer.
enum Tree {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Tree>),
    Map(Vec<(String, Tree)>),
}

impl serde::Serialize for Tree {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Tree::Null => out.push_str("null"),
            Tree::Bool(b) => b.serialize_json(out),
            Tree::Num(x) => x.serialize_json(out),
            Tree::Str(s) => s.serialize_json(out),
            Tree::Arr(items) => items.serialize_json(out),
            Tree::Map(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_string(k, out);
                    out.push(':');
                    v.serialize_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// The value the parser must produce for `t`. The one lossy writer rule:
/// JSON has no NaN/Infinity, so non-finite numbers are written as `null`.
fn expected(t: &Tree) -> JsonValue {
    match t {
        Tree::Null => JsonValue::Null,
        Tree::Bool(b) => JsonValue::Bool(*b),
        Tree::Num(x) if x.is_finite() => JsonValue::Number(*x),
        Tree::Num(_) => JsonValue::Null,
        Tree::Str(s) => JsonValue::String(s.clone()),
        Tree::Arr(items) => JsonValue::Array(items.iter().map(expected).collect()),
        Tree::Map(members) => JsonValue::Object(
            members
                .iter()
                .map(|(k, v)| (k.clone(), expected(v)))
                .collect(),
        ),
    }
}

/// Escape-heavy strings: quotes, backslashes, the named escapes, raw
/// controls (written as `\u00xx`), JSON syntax characters (to stress the
/// pretty-printer's string awareness), and 2/3/4-byte UTF-8.
fn gen_string(rng: &mut TestRng) -> String {
    const PALETTE: &[char] = &[
        'a', 'Z', '9', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0008}', '\u{000c}', '\u{0001}',
        '\u{001f}', '\u{7f}', '{', '}', '[', ']', ',', ':', 'é', '→', '日', '𝄞',
    ];
    let len = rng.below(10) as usize;
    (0..len)
        .map(|_| PALETTE[rng.below(PALETTE.len() as u64) as usize])
        .collect()
}

/// Numbers across the f64 range: hand-picked edges, large integers,
/// small fractions, and raw bit patterns (subnormals, NaN payloads, both
/// infinities). The writer's `Display` form is the shortest exact
/// representation, so every finite value must survive the round trip.
fn gen_number(rng: &mut TestRng) -> f64 {
    const EDGES: &[f64] = &[
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        -12.5e2,
        1.5e6,
        1e-9,
        1e308,
        -1e308,
        5e-324,
        f64::MAX,
        f64::MIN_POSITIVE,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
    ];
    match rng.below(4) {
        0 => EDGES[rng.below(EDGES.len() as u64) as usize],
        1 => rng.next_u64() as i64 as f64,
        2 => rng.unit_f64() * 2.0 - 1.0,
        _ => f64::from_bits(rng.next_u64()),
    }
}

/// A depth-bounded random document. The vendored proptest has no
/// recursive strategies, so the tree is built from a seeded [`TestRng`]
/// drawn through `any::<u64>()`.
fn gen_tree(rng: &mut TestRng, depth: u64) -> Tree {
    match rng.below(if depth == 0 { 4 } else { 6 }) {
        0 => Tree::Null,
        1 => Tree::Bool(rng.next_u64() & 1 == 1),
        2 => Tree::Num(gen_number(rng)),
        3 => Tree::Str(gen_string(rng)),
        4 => Tree::Arr(
            (0..rng.below(5))
                .map(|_| gen_tree(rng, depth - 1))
                .collect(),
        ),
        _ => Tree::Map(
            (0..rng.below(5))
                .map(|_| (gen_string(rng), gen_tree(rng, depth - 1)))
                .collect(),
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn writer_reader_roundtrip(seed in any::<u64>(), depth in 1u64..5) {
        let mut rng = TestRng::seeded(seed);
        let tree = gen_tree(&mut rng, depth);
        let want = expected(&tree);

        let compact = serde_json::to_string(&tree).unwrap();
        prop_assert_eq!(
            JsonValue::parse(&compact),
            Ok(want.clone()),
            "compact form: {}",
            compact
        );

        let pretty = serde_json::to_string_pretty(&tree).unwrap();
        prop_assert_eq!(
            JsonValue::parse(&pretty),
            Ok(want),
            "pretty form: {}",
            pretty
        );
    }
}
