//! Conversions between the paper's load metric — flits/ns/switch — and the
//! simulator's per-host message interarrival time in cycles.
//!
//! The paper measures both offered and accepted traffic in
//! **flits/ns/switch**: payload flits crossing the network per nanosecond,
//! normalised by the switch count. One flit is one byte; one link cycle is
//! 6.25 ns (160 MB/s).

use serde::{Deserialize, Serialize};

/// Duration of one flit time on a Myrinet link, in nanoseconds.
pub const CYCLE_NS: f64 = 6.25;

/// An offered load expressed in the paper's unit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OfferedLoad {
    /// Payload flits per nanosecond per switch.
    pub flits_per_ns_per_switch: f64,
}

impl OfferedLoad {
    pub fn new(flits_per_ns_per_switch: f64) -> OfferedLoad {
        assert!(
            flits_per_ns_per_switch > 0.0,
            "offered load must be positive"
        );
        OfferedLoad {
            flits_per_ns_per_switch,
        }
    }

    /// Mean cycles between message generations at one host.
    pub fn interarrival_cycles(
        &self,
        n_switches: usize,
        n_hosts: usize,
        payload_flits: usize,
    ) -> f64 {
        interarrival_cycles(
            self.flits_per_ns_per_switch,
            n_switches,
            n_hosts,
            payload_flits,
        )
    }
}

/// Mean cycles between message generations at one host for a target offered
/// load (flits/ns/switch). Every host generates at the same constant rate
/// (paper, section 4.2).
pub fn interarrival_cycles(
    load: f64,
    n_switches: usize,
    n_hosts: usize,
    payload_flits: usize,
) -> f64 {
    assert!(load > 0.0 && n_switches > 0 && n_hosts > 0 && payload_flits > 0);
    // load * S = network flits/ns; per host msgs/ns = load*S/(H*P);
    // interarrival ns = H*P/(load*S); cycles = ns / CYCLE_NS.
    (n_hosts * payload_flits) as f64 / (load * n_switches as f64) / CYCLE_NS
}

/// Accepted traffic in flits/ns/switch from `delivered_payload_flits`
/// observed during `window_cycles`.
pub fn accepted_flits_per_ns_per_switch(
    delivered_payload_flits: u64,
    window_cycles: u64,
    n_switches: usize,
) -> f64 {
    assert!(window_cycles > 0 && n_switches > 0);
    delivered_payload_flits as f64 / (window_cycles as f64 * CYCLE_NS) / n_switches as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        // Offer 0.015 flits/ns/switch on the paper's torus (64 switches,
        // 512 hosts, 512-flit messages).
        let ia = interarrival_cycles(0.015, 64, 512, 512);
        // Per-host rate back to load:
        let msgs_per_cycle_per_host = 1.0 / ia;
        let flits_per_ns = msgs_per_cycle_per_host * 512.0 * 512.0 / CYCLE_NS;
        let load = flits_per_ns / 64.0;
        assert!((load - 0.015).abs() < 1e-12);
    }

    #[test]
    fn paper_magnitudes() {
        // At UP/DOWN saturation (0.015) each of 512 hosts sends one 512-flit
        // message roughly every 273k ns => ~43.7k cycles... check magnitude:
        let ia = interarrival_cycles(0.015, 64, 512, 512);
        // H*P/(L*S) = 512*512/(0.015*64) = 273066 ns = 43690 cycles.
        assert!((ia - 43690.0).abs() / 43690.0 < 1e-3, "{ia}");
    }

    #[test]
    fn accepted_inverse() {
        // 1000 messages of 512 flits delivered in 100_000 cycles on 64
        // switches.
        let acc = accepted_flits_per_ns_per_switch(512_000, 100_000, 64);
        assert!((acc - 512_000.0 / (100_000.0 * 6.25 * 64.0)).abs() < 1e-15);
    }

    #[test]
    fn offered_load_struct() {
        let l = OfferedLoad::new(0.03);
        let a = l.interarrival_cycles(64, 512, 512);
        let b = interarrival_cycles(0.03, 64, 512, 512);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_load() {
        OfferedLoad::new(0.0);
    }
}
