//! Message destination distributions.

use rand::Rng;
use serde::{Deserialize, Serialize};

use regnet_topology::{DistanceMatrix, HostId, Topology};

/// Declarative description of a traffic pattern (section 4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// Every other host is equally likely ("the most widely used pattern").
    Uniform,
    /// Destination is the bit-reversed source id. Requires a power-of-two
    /// host count; hosts whose reversed id equals themselves stay silent
    /// (a self-send never enters the network).
    BitReversal,
    /// With probability `fraction`, the destination is `host`; otherwise
    /// uniform. The paper draws 10 random hotspot locations per topology.
    Hotspot { fraction: f64, host: HostId },
    /// Destination is uniform among hosts at most `max_switch_dist` switch
    /// links away (the paper studies 3 and 4).
    Local { max_switch_dist: u16 },
    /// Classical matrix-transpose permutation on the host id bits
    /// (extension, not in the paper's evaluation).
    Transpose,
    /// Destination is the bit-complement of the source id (extension).
    Complement,
}

impl PatternSpec {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PatternSpec::Uniform => "uniform".into(),
            PatternSpec::BitReversal => "bit-reversal".into(),
            PatternSpec::Hotspot { fraction, host } => {
                format!("hotspot-{:.0}%-at-{host}", fraction * 100.0)
            }
            PatternSpec::Local { max_switch_dist } => format!("local-{max_switch_dist}"),
            PatternSpec::Transpose => "transpose".into(),
            PatternSpec::Complement => "complement".into(),
        }
    }
}

/// A pattern resolved against a concrete topology: precomputes whatever
/// lookup tables the distribution needs and then draws destinations in O(1)
/// (O(candidates) for local).
#[derive(Debug, Clone)]
pub struct Pattern {
    spec: PatternSpec,
    n_hosts: u32,
    /// For `BitReversal`/`Transpose`/`Complement`: dest per source
    /// (u32::MAX = silent host).
    fixed: Option<Vec<u32>>,
    /// For `Local`: candidate hosts per source switch (may include the
    /// source host; `dest` redraws).
    local: Option<Vec<Vec<u32>>>,
}

impl Pattern {
    /// Resolve `spec` over `topo`. Fails when the pattern's preconditions do
    /// not hold (e.g. bit-reversal on a non-power-of-two host count).
    pub fn resolve(spec: PatternSpec, topo: &Topology) -> Result<Pattern, String> {
        let n = topo.num_hosts() as u32;
        let mut fixed = None;
        let mut local = None;
        match spec {
            PatternSpec::Uniform => {}
            PatternSpec::BitReversal => {
                if !n.is_power_of_two() {
                    return Err(format!(
                        "bit-reversal needs a power-of-two host count, got {n}"
                    ));
                }
                let bits = n.trailing_zeros();
                fixed = Some(
                    (0..n)
                        .map(|src| {
                            let rev = src.reverse_bits() >> (32 - bits);
                            if rev == src {
                                u32::MAX
                            } else {
                                rev
                            }
                        })
                        .collect(),
                );
            }
            PatternSpec::Transpose => {
                if !n.is_power_of_two() || !n.trailing_zeros().is_multiple_of(2) {
                    return Err(format!(
                        "transpose needs an even power-of-two host count, got {n}"
                    ));
                }
                let half = n.trailing_zeros() / 2;
                let mask = (1u32 << half) - 1;
                fixed = Some(
                    (0..n)
                        .map(|src| {
                            let t = ((src & mask) << half) | (src >> half);
                            if t == src {
                                u32::MAX
                            } else {
                                t
                            }
                        })
                        .collect(),
                );
            }
            PatternSpec::Complement => {
                if !n.is_power_of_two() {
                    return Err(format!(
                        "complement needs a power-of-two host count, got {n}"
                    ));
                }
                let mask = n - 1;
                fixed = Some((0..n).map(|src| (!src) & mask).collect());
            }
            PatternSpec::Hotspot { fraction, host } => {
                if !(0.0..=1.0).contains(&fraction) {
                    return Err(format!("hotspot fraction {fraction} out of [0,1]"));
                }
                if host.idx() >= n as usize {
                    return Err(format!("hotspot host {host} does not exist"));
                }
            }
            PatternSpec::Local { max_switch_dist } => {
                let dm = DistanceMatrix::compute(topo);
                let mut per_switch = Vec::with_capacity(topo.num_switches());
                for s in topo.switches() {
                    let mut cands = Vec::new();
                    for t in dm.within(s, max_switch_dist) {
                        cands.extend(topo.hosts_of(t).iter().map(|h| h.0));
                    }
                    cands.sort_unstable();
                    per_switch.push(cands);
                }
                local = Some(per_switch);
            }
        }
        Ok(Pattern {
            spec,
            n_hosts: n,
            fixed,
            local,
        })
    }

    /// The spec this pattern was resolved from.
    pub fn spec(&self) -> PatternSpec {
        self.spec
    }

    /// Draw the destination for a message from `src`.
    ///
    /// Returns `None` when the host does not generate traffic under this
    /// pattern (bit-reversal/transpose hosts that map to themselves).
    pub fn dest(&self, src: HostId, topo: &Topology, rng: &mut impl Rng) -> Option<HostId> {
        match self.spec {
            PatternSpec::Uniform => Some(self.uniform_other(src, rng)),
            PatternSpec::BitReversal | PatternSpec::Transpose | PatternSpec::Complement => {
                let d = self.fixed.as_ref().expect("resolved")[src.idx()];
                if d == u32::MAX {
                    None
                } else {
                    Some(HostId(d))
                }
            }
            PatternSpec::Hotspot { fraction, host } => {
                if src != host && rng.gen::<f64>() < fraction {
                    Some(host)
                } else {
                    Some(self.uniform_other(src, rng))
                }
            }
            PatternSpec::Local { .. } => {
                let sw = topo.host_switch(src);
                let cands = &self.local.as_ref().expect("resolved")[sw.idx()];
                debug_assert!(cands.len() > 1);
                loop {
                    let d = cands[rng.gen_range(0..cands.len())];
                    if d != src.0 {
                        return Some(HostId(d));
                    }
                }
            }
        }
    }

    fn uniform_other(&self, src: HostId, rng: &mut impl Rng) -> HostId {
        // Uniform over all hosts except the source.
        let d = rng.gen_range(0..self.n_hosts - 1);
        HostId(if d >= src.0 { d + 1 } else { d })
    }

    /// Do all hosts generate under this pattern? (False for permutations
    /// with fixed points.)
    pub fn host_generates(&self, src: HostId) -> bool {
        match &self.fixed {
            Some(f) => f[src.idx()] != u32::MAX,
            None => true,
        }
    }

    /// Hosts silent under this pattern.
    pub fn silent_hosts(&self) -> usize {
        match &self.fixed {
            Some(f) => f.iter().filter(|&&d| d == u32::MAX).count(),
            None => 0,
        }
    }
}

/// Draw `count` distinct random hotspot hosts, as the paper does ("the
/// selected hotspot location is chosen randomly; 10 different simulations
/// are performed using 10 different hotspot locations").
pub fn random_hotspots(topo: &Topology, count: usize, rng: &mut impl Rng) -> Vec<HostId> {
    use rand::seq::SliceRandom;
    let mut hosts: Vec<HostId> = topo.hosts().collect();
    hosts.shuffle(rng);
    hosts.truncate(count);
    hosts
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use regnet_topology::gen;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_never_self_and_covers_all() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let p = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        let mut rng = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let d = p.dest(HostId(5), &topo, &mut rng).unwrap();
            assert_ne!(d, HostId(5));
            seen.insert(d);
        }
        assert_eq!(seen.len(), topo.num_hosts() - 1);
    }

    #[test]
    fn bit_reversal_is_a_permutation_with_silent_palindromes() {
        let topo = gen::torus_2d(8, 8, 8).unwrap(); // 512 hosts
        let p = Pattern::resolve(PatternSpec::BitReversal, &topo).unwrap();
        let mut rng = rng();
        // 9-bit palindromes: 2^5 = 32 silent hosts.
        assert_eq!(p.silent_hosts(), 32);
        let mut dests = std::collections::HashSet::new();
        for src in topo.hosts() {
            match p.dest(src, &topo, &mut rng) {
                Some(d) => {
                    assert_ne!(d, src);
                    assert!(dests.insert(d), "duplicate destination {d}");
                    // Involution: reversing twice returns to the source.
                    assert_eq!(p.dest(d, &topo, &mut rng), Some(src));
                }
                None => assert!(!p.host_generates(src)),
            }
        }
    }

    #[test]
    fn bit_reversal_rejects_non_power_of_two() {
        let topo = gen::cplant().unwrap(); // 400 hosts
        assert!(Pattern::resolve(PatternSpec::BitReversal, &topo).is_err());
    }

    #[test]
    fn hotspot_frequency() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let hs = HostId(9);
        let p = Pattern::resolve(
            PatternSpec::Hotspot {
                fraction: 0.10,
                host: hs,
            },
            &topo,
        )
        .unwrap();
        let mut rng = rng();
        let n = 40_000;
        let mut hits = 0;
        for _ in 0..n {
            if p.dest(HostId(0), &topo, &mut rng).unwrap() == hs {
                hits += 1;
            }
        }
        // ~10% to the hotspot plus ~1/31 of the remaining uniform share.
        let frac = hits as f64 / n as f64;
        let expected = 0.10 + 0.90 / 31.0;
        assert!(
            (frac - expected).abs() < 0.01,
            "hotspot frequency {frac}, expected ~{expected}"
        );
    }

    #[test]
    fn hotspot_host_does_not_target_itself() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let hs = HostId(9);
        let p = Pattern::resolve(
            PatternSpec::Hotspot {
                fraction: 0.5,
                host: hs,
            },
            &topo,
        )
        .unwrap();
        let mut rng = rng();
        for _ in 0..1000 {
            assert_ne!(p.dest(hs, &topo, &mut rng).unwrap(), hs);
        }
    }

    #[test]
    fn hotspot_validation() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        assert!(Pattern::resolve(
            PatternSpec::Hotspot {
                fraction: 1.5,
                host: HostId(0)
            },
            &topo
        )
        .is_err());
        assert!(Pattern::resolve(
            PatternSpec::Hotspot {
                fraction: 0.1,
                host: HostId(999)
            },
            &topo
        )
        .is_err());
    }

    #[test]
    fn local_respects_radius() {
        let topo = gen::torus_2d(8, 8, 2).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let p = Pattern::resolve(PatternSpec::Local { max_switch_dist: 3 }, &topo).unwrap();
        let mut rng = rng();
        for _ in 0..2000 {
            let src = HostId(rng.gen_range(0..topo.num_hosts() as u32));
            let d = p.dest(src, &topo, &mut rng).unwrap();
            assert_ne!(d, src);
            let dist = dm.get(topo.host_switch(src), topo.host_switch(d));
            assert!(dist <= 3, "dest {dist} switches away");
        }
    }

    #[test]
    fn complement_has_no_fixed_points() {
        let topo = gen::torus_2d(4, 4, 8).unwrap(); // 128 hosts
        let p = Pattern::resolve(PatternSpec::Complement, &topo).unwrap();
        assert_eq!(p.silent_hosts(), 0);
        let mut rng = rng();
        assert_eq!(p.dest(HostId(0), &topo, &mut rng), Some(HostId(127)));
    }

    #[test]
    fn transpose_permutation() {
        let topo = gen::torus_2d(4, 4, 1).unwrap(); // 16 hosts = 4 bits
        let p = Pattern::resolve(PatternSpec::Transpose, &topo).unwrap();
        let mut rng = rng();
        // host 1 = 0b0001 -> 0b0100 = 4
        assert_eq!(p.dest(HostId(1), &topo, &mut rng), Some(HostId(4)));
        // host 5 = 0b0101 -> itself: silent.
        assert_eq!(p.dest(HostId(5), &topo, &mut rng), None);
    }

    #[test]
    fn random_hotspots_distinct_and_seeded() {
        let topo = gen::torus_2d(8, 8, 8).unwrap();
        let mut r1 = SmallRng::seed_from_u64(99);
        let a = random_hotspots(&topo, 10, &mut r1);
        let mut r2 = SmallRng::seed_from_u64(99);
        let b = random_hotspots(&topo, 10, &mut r2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn labels() {
        assert_eq!(PatternSpec::Uniform.label(), "uniform");
        assert_eq!(
            PatternSpec::Hotspot {
                fraction: 0.05,
                host: HostId(3)
            }
            .label(),
            "hotspot-5%-at-h3"
        );
        assert_eq!(PatternSpec::Local { max_switch_dist: 3 }.label(), "local-3");
    }
}
