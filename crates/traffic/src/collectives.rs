//! Closed-loop collective communication workloads: fixed message sets
//! whose *completion time* (makespan) is the metric, as opposed to the
//! open-loop rate-driven patterns of [`crate::PatternSpec`]. These model
//! the communication phases of the parallel numerical algorithms the paper
//! cites as motivation for the bit-reversal pattern.

use rand::Rng;

use regnet_topology::{DistanceMatrix, HostId, Topology};

/// One collective phase: `(source, destination)` message pairs, all
/// logically issued at the same time.
pub type MessageSet = Vec<(HostId, HostId)>;

/// Every host sends one message to every other host (all-to-all personal
/// exchange). n·(n−1) messages — use small networks.
pub fn all_to_all(topo: &Topology) -> MessageSet {
    let mut out = Vec::with_capacity(topo.num_hosts() * (topo.num_hosts() - 1));
    for s in topo.hosts() {
        for d in topo.hosts() {
            if s != d {
                out.push((s, d));
            }
        }
    }
    out
}

/// The bit-reversal permutation as a single closed phase (fixed points
/// skipped). Requires a power-of-two host count.
pub fn bit_reversal_phase(topo: &Topology) -> Result<MessageSet, String> {
    let n = topo.num_hosts() as u32;
    if !n.is_power_of_two() {
        return Err(format!("bit reversal needs 2^k hosts, got {n}"));
    }
    let bits = n.trailing_zeros();
    Ok((0..n)
        .filter_map(|s| {
            let d = s.reverse_bits() >> (32 - bits);
            (d != s).then_some((HostId(s), HostId(d)))
        })
        .collect())
}

/// Cyclic shift: host `i` sends to host `(i + k) mod n`.
pub fn shift(topo: &Topology, k: usize) -> MessageSet {
    let n = topo.num_hosts();
    assert!(
        !k.is_multiple_of(n),
        "shift by a multiple of n is a self-send"
    );
    (0..n)
        .map(|i| (HostId(i as u32), HostId(((i + k) % n) as u32)))
        .collect()
}

/// Nearest-neighbour exchange: every host messages one random host on each
/// switch at distance exactly 1 (stencil-like halo exchange).
pub fn neighbor_exchange(topo: &Topology, rng: &mut impl Rng) -> MessageSet {
    let dm = DistanceMatrix::compute(topo);
    let mut out = Vec::new();
    for src in topo.hosts() {
        let my_switch = topo.host_switch(src);
        for t in topo.switches() {
            if dm.get(my_switch, t) == 1 {
                let hosts = topo.hosts_of(t);
                if !hosts.is_empty() {
                    out.push((src, hosts[rng.gen_range(0..hosts.len())]));
                }
            }
        }
    }
    out
}

/// One-to-all broadcast (as n−1 unicasts, the way source-routed Myrinet
/// does it in software).
pub fn broadcast(topo: &Topology, root: HostId) -> MessageSet {
    topo.hosts()
        .filter(|&d| d != root)
        .map(|d| (root, d))
        .collect()
}

/// All-to-one gather.
pub fn gather(topo: &Topology, root: HostId) -> MessageSet {
    topo.hosts()
        .filter(|&s| s != root)
        .map(|s| (s, root))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use regnet_topology::gen;

    fn topo() -> Topology {
        gen::torus_2d(4, 4, 2).unwrap()
    }

    #[test]
    fn all_to_all_counts() {
        let t = topo();
        let m = all_to_all(&t);
        assert_eq!(m.len(), 32 * 31);
        assert!(m.iter().all(|&(s, d)| s != d));
    }

    #[test]
    fn bit_reversal_phase_is_permutation() {
        let t = topo(); // 32 hosts, 5 bits -> palindromes silent
        let m = bit_reversal_phase(&t).unwrap();
        // 5-bit palindromes: 2^3 = 8 fixed points.
        assert_eq!(m.len(), 32 - 8);
        let mut dsts: Vec<u32> = m.iter().map(|&(_, d)| d.0).collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), m.len());
        assert!(bit_reversal_phase(&gen::cplant().unwrap()).is_err());
    }

    #[test]
    fn shift_wraps() {
        let t = topo();
        let m = shift(&t, 5);
        assert_eq!(m.len(), 32);
        assert_eq!(m[30], (HostId(30), HostId(3)));
    }

    #[test]
    #[should_panic(expected = "self-send")]
    fn shift_rejects_identity() {
        shift(&topo(), 32);
    }

    #[test]
    fn neighbor_exchange_targets_distance_one() {
        let t = topo();
        let dm = DistanceMatrix::compute(&t);
        let mut rng = SmallRng::seed_from_u64(3);
        let m = neighbor_exchange(&t, &mut rng);
        // 4 neighbours per switch in a torus.
        assert_eq!(m.len(), 32 * 4);
        for (s, d) in m {
            assert_eq!(dm.get(t.host_switch(s), t.host_switch(d)), 1);
        }
    }

    #[test]
    fn broadcast_and_gather() {
        let t = topo();
        let b = broadcast(&t, HostId(7));
        assert_eq!(b.len(), 31);
        assert!(b.iter().all(|&(s, d)| s == HostId(7) && d != HostId(7)));
        let g = gather(&t, HostId(7));
        assert_eq!(g.len(), 31);
        assert!(g.iter().all(|&(s, d)| d == HostId(7) && s != HostId(7)));
    }
}
