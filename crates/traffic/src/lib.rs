//! Synthetic traffic patterns and offered-load bookkeeping.
//!
//! Implements the four destination distributions of the paper's evaluation
//! (uniform, bit-reversal, hotspot, local) plus two classical extras
//! (transpose, complement), and the unit conversions between the paper's
//! load metric (flits/ns/switch) and the simulator's per-host message
//! interarrival times.

pub mod collectives;
mod load;
mod pattern;

pub use load::{accepted_flits_per_ns_per_switch, interarrival_cycles, OfferedLoad};
pub use pattern::{random_hotspots, Pattern, PatternSpec};
