//! Microbenchmarks of the simulation engine and routing machinery —
//! cycles/second of the simulator itself, route-table construction, and
//! the hot routing primitives.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::{SimConfig, Simulator, TraceOptions};
use regnet_routing::{minimal, LegalDistances};
use regnet_topology::{gen, DistanceMatrix, Orientation, SwitchId};
use regnet_traffic::{Pattern, PatternSpec};

fn sim_cycles(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_cycles");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    const CYCLES: u64 = 10_000;
    group.throughput(Throughput::Elements(CYCLES));
    // `loaded_traced` is `loaded` with every observer on: the gap between
    // the two is the telemetry overhead (disabled runs pay one branch per
    // hook and must stay within noise of `loaded`).
    for (name, offered, traced) in [
        ("idle", 1e-6, false),
        ("loaded", 0.012, false),
        ("loaded_traced", 0.012, true),
    ] {
        let topo = gen::torus_2d(4, 4, 4).unwrap();
        let db = RouteDb::build(&topo, RoutingScheme::ItbRr, &RouteDbConfig::default());
        let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new(
                        &topo,
                        &db,
                        &pattern,
                        SimConfig {
                            payload_flits: 64,
                            ..SimConfig::default()
                        },
                        offered,
                        3,
                    );
                    if traced {
                        sim.enable_trace(TraceOptions::full(1_000));
                    }
                    sim.run(2_000); // fill
                    sim
                },
                |mut sim| {
                    sim.run(CYCLES);
                    black_box(sim.cycle())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn route_db_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("route_db_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    let small = gen::torus_2d(4, 4, 4).unwrap();
    let paper = gen::torus_2d(8, 8, 8).unwrap();
    for scheme in [RoutingScheme::UpDown, RoutingScheme::ItbRr] {
        group.bench_function(format!("torus4x4_{}", scheme.label()), |b| {
            b.iter(|| {
                black_box(RouteDb::build(
                    black_box(&small),
                    scheme,
                    &RouteDbConfig::default(),
                ))
            })
        });
    }
    group.bench_function("torus8x8_ITB-RR", |b| {
        b.iter(|| {
            black_box(RouteDb::build(
                black_box(&paper),
                RoutingScheme::ItbRr,
                &RouteDbConfig::default(),
            ))
        })
    });
    group.finish();
}

fn routing_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_primitives");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    let dm = DistanceMatrix::compute(&topo);
    group.bench_function("legal_distances_one_dest", |b| {
        b.iter(|| {
            black_box(LegalDistances::to_dest(
                &topo,
                &orient,
                black_box(SwitchId(36)),
            ))
        })
    });
    group.bench_function("k_minimal_paths_10", |b| {
        b.iter(|| {
            black_box(minimal::k_minimal_paths(
                &topo,
                &dm,
                black_box(SwitchId(0)),
                black_box(SwitchId(36)),
                10,
                7,
            ))
        })
    });
    group.bench_function("distance_matrix", |b| {
        b.iter(|| black_box(DistanceMatrix::compute(black_box(&topo))))
    });
    group.finish();
}

fn pattern_draws(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut group = c.benchmark_group("pattern_draws");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(1000));
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    for spec in [
        PatternSpec::Uniform,
        PatternSpec::BitReversal,
        PatternSpec::Local { max_switch_dist: 3 },
    ] {
        let p = Pattern::resolve(spec, &topo).unwrap();
        group.bench_function(spec.label(), |b| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..1000u32 {
                    if let Some(d) = p.dest(regnet_topology::HostId(i % 512), &topo, &mut rng) {
                        acc = acc.wrapping_add(d.0);
                    }
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    sim_cycles,
    route_db_build,
    routing_primitives,
    pattern_draws
);
criterion_main!(benches);
