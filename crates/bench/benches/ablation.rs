//! Ablation benches for the design choices called out in DESIGN.md §8:
//! re-injection priority, cut-through vs store-and-forward re-injection,
//! the alternative-route cap, the in-transit pool size, and the spanning
//! tree root placement. Each configuration's reproduced metric (accepted
//! traffic / latency) is printed once; Criterion times the runs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use regnet_core::{ItbHostPicker, RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::{Experiment, RunOptions};
use regnet_netsim::SimConfig;
use regnet_topology::{gen, SwitchId};
use regnet_traffic::PatternSpec;

fn opts() -> RunOptions {
    RunOptions {
        warmup_cycles: 3_000,
        measure_cycles: 12_000,
        seed: 2,
        ..RunOptions::default()
    }
}

fn base_cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn run_cell(c: &mut Criterion, group: &str, name: &str, cfg: SimConfig, db_cfg: RouteDbConfig) {
    let exp = Experiment::new(
        gen::torus_2d(4, 4, 4).unwrap(),
        RoutingScheme::ItbRr,
        db_cfg,
        PatternSpec::Uniform,
        cfg,
    )
    .expect("experiment");
    let offered = 0.012;
    let p = exp.run_point(offered, &opts());
    eprintln!(
        "[{group}/{name}] accepted {:.4} latency {:.0} ns itbs {:.2}",
        p.accepted, p.avg_latency_ns, p.avg_itbs_per_msg
    );
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function(name, |b| {
        b.iter(|| black_box(exp.run_point(black_box(offered), &opts())))
    });
    g.finish();
}

/// Ablation 1 — do re-injected packets preempt local traffic at the NIC?
fn itb_priority(c: &mut Criterion) {
    for (name, prio) in [("priority", true), ("fifo", false)] {
        run_cell(
            c,
            "ablation_itb_priority",
            name,
            SimConfig {
                itb_priority: prio,
                ..base_cfg()
            },
            RouteDbConfig::default(),
        );
    }
}

/// Ablation 2 — cut-through re-injection vs store-and-forward.
fn cut_through(c: &mut Criterion) {
    for (name, ct) in [("cut_through", true), ("store_and_forward", false)] {
        run_cell(
            c,
            "ablation_reinjection",
            name,
            SimConfig {
                itb_cut_through: ct,
                ..base_cfg()
            },
            RouteDbConfig::default(),
        );
    }
}

/// Ablation 3 — the 10-alternative route cap of the paper, swept.
fn route_cap(c: &mut Criterion) {
    for cap in [1usize, 2, 4, 10, 32] {
        run_cell(
            c,
            "ablation_route_cap",
            &format!("cap_{cap}"),
            base_cfg(),
            RouteDbConfig {
                max_alternatives: cap,
                ..RouteDbConfig::default()
            },
        );
    }
}

/// Ablation 4 — in-transit pool size (90 KB in the paper) and the host
/// memory overflow path.
fn pool_size(c: &mut Criterion) {
    for (name, flits) in [
        ("pool_2kb", 2 * 1024),
        ("pool_90kb", 90 * 1024),
        ("pool_1mb", 1024 * 1024),
    ] {
        run_cell(
            c,
            "ablation_itb_pool",
            name,
            SimConfig {
                itb_pool_flits: flits,
                ..base_cfg()
            },
            RouteDbConfig::default(),
        );
    }
}

/// Ablation 5 — spanning-tree root placement (corner vs centre).
fn root_choice(c: &mut Criterion) {
    for (name, root) in [("corner_s0", SwitchId(0)), ("centre_s5", SwitchId(5))] {
        run_cell(
            c,
            "ablation_root",
            name,
            base_cfg(),
            RouteDbConfig {
                root,
                ..RouteDbConfig::default()
            },
        );
    }
}

/// Ablation 6 — the in-transit host picker (first host vs spread).
fn itb_picker(c: &mut Criterion) {
    for (name, picker) in [
        ("first", ItbHostPicker::First),
        ("spread", ItbHostPicker::Spread),
    ] {
        run_cell(
            c,
            "ablation_itb_picker",
            name,
            base_cfg(),
            RouteDbConfig {
                itb_picker: picker,
                ..RouteDbConfig::default()
            },
        );
    }
}

/// Ablation 7 — path-selection policy, including the ITB-RND extension
/// (seeded random choice among the alternatives; the direction of the
/// paper's "future work" on source-level selection algorithms).
fn selection_policy(c: &mut Criterion) {
    for scheme in RoutingScheme::extended() {
        if scheme == RoutingScheme::UpDown {
            continue;
        }
        let exp = Experiment::new(
            gen::torus_2d(4, 4, 4).unwrap(),
            scheme,
            RouteDbConfig::default(),
            PatternSpec::Uniform,
            base_cfg(),
        )
        .expect("experiment");
        let offered = 0.012;
        let p = exp.run_point(offered, &opts());
        eprintln!(
            "[ablation_policy/{}] accepted {:.4} latency {:.0} ns itbs {:.2}",
            scheme.label(),
            p.accepted,
            p.avg_latency_ns,
            p.avg_itbs_per_msg
        );
        let mut g = c.benchmark_group("ablation_policy");
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_secs(2));
        g.bench_function(scheme.label(), |b| {
            b.iter(|| black_box(exp.run_point(black_box(offered), &opts())))
        });
        g.finish();
    }
}

criterion_group!(
    benches,
    itb_priority,
    cut_through,
    route_cap,
    pool_size,
    root_choice,
    itb_picker,
    selection_policy
);
criterion_main!(benches);
