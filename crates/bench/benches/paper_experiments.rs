//! Criterion benches, one per table/figure of the paper.
//!
//! Each bench runs a scaled-down version of the corresponding experiment
//! cell (4x4 torus / 64 hosts / 64-byte messages, short windows) so that
//! `cargo bench` finishes in minutes while still exercising exactly the
//! code paths the full harness uses. The full-scale regeneration lives in
//! the `regnet-bench` binaries (`fig07_uniform`, `table1_hotspot_torus`, …).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use regnet_bench::Topo;
use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::{Experiment, RunOptions};
use regnet_netsim::SimConfig;
use regnet_topology::HostId;
use regnet_traffic::PatternSpec;

fn small_cfg() -> SimConfig {
    SimConfig {
        payload_flits: 64,
        ..SimConfig::default()
    }
}

fn quick_opts() -> RunOptions {
    RunOptions {
        warmup_cycles: 3_000,
        measure_cycles: 12_000,
        seed: 1,
        ..RunOptions::default()
    }
}

fn bench_cell(c: &mut Criterion, id: &str, topo: Topo, pattern: PatternSpec, offered: f64) {
    let mut group = c.benchmark_group(id);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for scheme in RoutingScheme::all() {
        let exp = Experiment::new(
            topo.build_small(),
            scheme,
            RouteDbConfig::default(),
            pattern,
            small_cfg(),
        )
        .expect("experiment");
        // Report the reproduced metric once, outside the timing loop.
        let p = exp.run_point(offered, &quick_opts());
        eprintln!(
            "[{id} / {}] accepted {:.4} fl/ns/sw, latency {:.0} ns, itbs {:.2}",
            scheme.label(),
            p.accepted,
            p.avg_latency_ns,
            p.avg_itbs_per_msg
        );
        group.bench_function(scheme.label(), |b| {
            b.iter(|| black_box(exp.run_point(black_box(offered), &quick_opts())))
        });
    }
    group.finish();
}

fn fig07(c: &mut Criterion) {
    bench_cell(
        c,
        "fig07a_torus_uniform",
        Topo::Torus,
        PatternSpec::Uniform,
        0.010,
    );
    bench_cell(
        c,
        "fig07b_express_uniform",
        Topo::Express,
        PatternSpec::Uniform,
        0.020,
    );
    bench_cell(
        c,
        "fig07c_cplant_uniform",
        Topo::Cplant,
        PatternSpec::Uniform,
        0.010,
    );
}

fn fig10(c: &mut Criterion) {
    bench_cell(
        c,
        "fig10a_torus_bitrev",
        Topo::Torus,
        PatternSpec::BitReversal,
        0.010,
    );
    bench_cell(
        c,
        "fig10b_express_bitrev",
        Topo::Express,
        PatternSpec::BitReversal,
        0.020,
    );
}

fn fig12(c: &mut Criterion) {
    let local = PatternSpec::Local { max_switch_dist: 3 };
    bench_cell(c, "fig12a_torus_local", Topo::Torus, local, 0.030);
    bench_cell(c, "fig12b_express_local", Topo::Express, local, 0.040);
    bench_cell(c, "fig12c_cplant_local", Topo::Cplant, local, 0.030);
}

fn tables(c: &mut Criterion) {
    // Tables 1-3: hotspot traffic on each topology. The bench measures a
    // single loaded point; the binaries run the full throughput search.
    bench_cell(
        c,
        "table1_torus_hotspot",
        Topo::Torus,
        PatternSpec::Hotspot {
            fraction: 0.05,
            host: HostId(13),
        },
        0.008,
    );
    bench_cell(
        c,
        "table2_express_hotspot",
        Topo::Express,
        PatternSpec::Hotspot {
            fraction: 0.03,
            host: HostId(13),
        },
        0.015,
    );
    bench_cell(
        c,
        "table3_cplant_hotspot",
        Topo::Cplant,
        PatternSpec::Hotspot {
            fraction: 0.05,
            host: HostId(13),
        },
        0.008,
    );
}

fn linkutil(c: &mut Criterion) {
    // Figures 8, 9, 11: link-utilization snapshots.
    let mut group = c.benchmark_group("fig08_09_11_linkutil");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (id, topo, pattern, offered) in [
        ("fig08_torus", Topo::Torus, PatternSpec::Uniform, 0.010),
        ("fig09_express", Topo::Express, PatternSpec::Uniform, 0.020),
        (
            "fig11_torus_hotspot",
            Topo::Torus,
            PatternSpec::Hotspot {
                fraction: 0.10,
                host: HostId(21),
            },
            0.008,
        ),
    ] {
        let exp = Experiment::new(
            topo.build_small(),
            RoutingScheme::ItbRr,
            RouteDbConfig::default(),
            pattern,
            small_cfg(),
        )
        .expect("experiment");
        let (util, _) = exp.link_utilization(offered, &quick_opts());
        eprintln!(
            "[{id}] link util mean {:.1}% max {:.1}% imbalance {:.2}",
            util.mean() * 100.0,
            util.max() * 100.0,
            util.imbalance()
        );
        group.bench_function(id, |b| {
            b.iter(|| black_box(exp.link_utilization(black_box(offered), &quick_opts())))
        });
    }
    group.finish();
}

criterion_group!(benches, fig07, fig10, fig12, tables, linkutil);
criterion_main!(benches);
