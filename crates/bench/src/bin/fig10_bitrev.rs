//! Regenerates **Figure 10**: latency vs accepted traffic under the
//! bit-reversal permutation on the 2-D torus (a) and the torus with
//! express channels (b). CPLANT is excluded (400 hosts is not a power of
//! two), exactly as in the paper.
//!
//! Usage: `fig10_bitrev [--topo torus|express|all] [--full]`

use regnet_bench::experiments::fig10;
use regnet_bench::{save_curves, Mode, Topo};

fn main() {
    let mode = Mode::from_args();
    let args: Vec<String> = std::env::args().collect();
    let sel = args
        .iter()
        .position(|a| a == "--topo")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let topos: Vec<Topo> = match sel {
        "all" => vec![Topo::Torus, Topo::Express],
        "torus" => vec![Topo::Torus],
        "express" => vec![Topo::Express],
        other => panic!("--topo {other} not valid for bit-reversal (torus|express|all)"),
    };
    for topo in topos {
        let fig = fig10(topo, mode);
        print!("{}", fig.render());
        let tag = if topo == Topo::Torus {
            "torus"
        } else {
            "express"
        };
        save_curves(&format!("fig10_{tag}"), &fig.curves);
    }
}
