//! Regenerates **Figure 9**: link utilization in the 2-D torus with
//! express channels at UP/DOWN's saturation point (0.066 flits/ns/switch),
//! for UP/DOWN and ITB-RR, separating express channels from ordinary torus
//! links (the paper: express ≈25%, local links ≈10% under ITB-RR).
//!
//! Usage: `fig09_linkutil_express [--full]`

use regnet_bench::experiments::{fig09, switch_grid_map};
use regnet_bench::{save_time_series, Mode};
use regnet_topology::{NodeId, SwitchId};

fn main() {
    let report = fig09(Mode::from_args());
    print!("{}", report.render());
    // Split utilization by channel class: express channels connect switches
    // two hops apart in a torus dimension.
    for (i, snap) in report.snapshots.iter().enumerate() {
        let (mut ex, mut nex) = (Vec::new(), Vec::new());
        for (d, &u) in snap.descs.iter().zip(&snap.summary.per_channel) {
            if let (NodeId::Switch(SwitchId(a)), NodeId::Switch(SwitchId(b))) = (d.from, d.to) {
                let (ra, ca) = ((a / 8) as i32, (a % 8) as i32);
                let (rb, cb) = ((b / 8) as i32, (b % 8) as i32);
                let dr = (ra - rb).rem_euclid(8).min((rb - ra).rem_euclid(8));
                let dc = (ca - cb).rem_euclid(8).min((cb - ca).rem_euclid(8));
                if dr + dc == 2 {
                    ex.push(u);
                } else {
                    nex.push(u);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!(
            "\n{}: express channels mean {:.1}%  ordinary links mean {:.1}%",
            snap.label,
            mean(&ex) * 100.0,
            mean(&nex) * 100.0
        );
        println!("{}", switch_grid_map(snap, 8, 64));
        if let Some(ts) = &snap.util_series {
            save_time_series(&format!("fig09_util_{i}"), ts);
        }
    }
}
