//! Regenerates **Figure 7**: average latency vs accepted traffic under
//! uniform traffic on the 2-D torus (a), torus with express channels (b)
//! and CPLANT (c).
//!
//! Usage: `fig07_uniform [--topo torus|express|cplant|all] [--full]`

use regnet_bench::experiments::fig07;
use regnet_bench::{save_curves, Mode, Topo};

fn main() {
    let mode = Mode::from_args();
    let args: Vec<String> = std::env::args().collect();
    let sel = args
        .iter()
        .position(|a| a == "--topo")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let topos: Vec<Topo> = match sel {
        "all" => vec![Topo::Torus, Topo::Express, Topo::Cplant],
        s => vec![Topo::parse(s).expect("unknown --topo (torus|express|cplant|all)")],
    };
    for topo in topos {
        let fig = fig07(topo, mode);
        print!("{}", fig.render());
        save_curves(&format!("fig07_{sel}_{}", name_of(topo)), &fig.curves);
    }
}

fn name_of(t: Topo) -> &'static str {
    match t {
        Topo::Torus => "torus",
        Topo::Express => "express",
        Topo::Cplant => "cplant",
    }
}
