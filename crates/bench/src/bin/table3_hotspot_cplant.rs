//! Regenerates **Table 3**: saturation throughput in CPLANT under 5%
//! hotspot traffic.
//!
//! Usage: `table3_hotspot_cplant [--full]`

use regnet_bench::experiments::table3;
use regnet_bench::Mode;

fn main() {
    let t = table3(Mode::from_args());
    print!("{}", t.render());
    let avg = t.averages();
    println!(
        "\nthroughput factors vs UP/DOWN: ITB-SP x{:.2}  ITB-RR x{:.2}   (paper: x1.24 / x1.32)",
        avg[1] / avg[0],
        avg[2] / avg[0]
    );
}
