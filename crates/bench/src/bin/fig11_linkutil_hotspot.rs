//! Regenerates **Figure 11**: link utilization in the 2-D torus with 10%
//! hotspot traffic at UP/DOWN's saturation point, for UP/DOWN and ITB-RR.
//! Under UP/DOWN the congestion sits at the root switch; under ITB-RR only
//! the links near the hotspot switch heat up.
//!
//! Usage: `fig11_linkutil_hotspot [--full]`

use regnet_bench::experiments::{fig11, switch_grid_map};
use regnet_bench::{save_time_series, Mode};

fn main() {
    let report = fig11(Mode::from_args());
    print!("{}", report.render());
    for (i, snap) in report.snapshots.iter().enumerate() {
        println!("\n{}", switch_grid_map(snap, 8, 64));
        if let Some(ts) = &snap.util_series {
            save_time_series(&format!("fig11_util_{i}"), ts);
        }
    }
    println!("(root switch is s0, top-left of the grid)");
}
