//! Regenerates **Table 2**: saturation throughput in the torus with
//! express channels under hotspot traffic (3% and 5%).
//!
//! Usage: `table2_hotspot_express [--full]`

use regnet_bench::experiments::table2;
use regnet_bench::Mode;

fn main() {
    let t = table2(Mode::from_args());
    print!("{}", t.render());
    let avg = t.averages();
    let n = avg.len() / 2;
    println!("\nthroughput factors vs UP/DOWN:");
    for (block, label) in [(0, "3% hotspot"), (n, "5% hotspot")] {
        println!(
            "  {label}: ITB-SP x{:.2}  ITB-RR x{:.2}   (paper: x1.13 / x1.12 at 3%, x1.08 / x1.07 at 5%)",
            avg[block + 1] / avg[block],
            avg[block + 2] / avg[block]
        );
    }
}
