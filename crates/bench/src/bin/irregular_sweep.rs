//! Extension sweep: the ITB mechanism on *irregular* networks (the setting
//! of the authors' companion papers [5, 6], which this paper generalises
//! from). Random connected irregular networks of growing size; the up*/down*
//! restriction bites harder as the network grows, so the ITB gain should
//! widen — the trend the paper cites as motivation.
//!
//! Usage: `irregular_sweep [--full]`

use regnet_bench::{table_search, Mode};
use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::{Experiment, RunOptions};
use regnet_netsim::SimConfig;
use regnet_topology::gen;
use regnet_traffic::PatternSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = RunOptions {
        warmup_cycles: mode.run_options(0).warmup_cycles / 2,
        measure_cycles: mode.run_options(0).measure_cycles / 2,
        seed: 41,
        ..RunOptions::default()
    };
    println!("irregular networks, uniform traffic, 512-byte messages, 4 hosts/switch\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "switches", "UP/DOWN", "ITB-SP", "ITB-RR", "RR gain", "minimal% UD"
    );
    for n_switches in [8usize, 16, 24, 32] {
        let topo = gen::irregular_random(n_switches, 4, 4, 2026).expect("topology");
        // Route-level restriction: how many UP/DOWN routes are minimal?
        let db = RouteDb::build(&topo, RoutingScheme::UpDown, &RouteDbConfig::default());
        let stats = regnet_core::analysis::RouteStats::compute(&topo, &db);
        let mut row = Vec::new();
        for scheme in RoutingScheme::all() {
            let exp = Experiment::new(
                topo.clone(),
                scheme,
                RouteDbConfig::default(),
                PatternSpec::Uniform,
                SimConfig::default(),
            )
            .expect("experiment");
            row.push(exp.find_throughput(&table_search(0.004), &opts));
        }
        println!(
            "{:>8} {:>10.4} {:>10.4} {:>10.4} {:>11.2}x {:>11.1}%",
            n_switches,
            row[0],
            row[1],
            row[2],
            row[2] / row[0],
            stats.minimal_fraction * 100.0
        );
    }
    println!("\ncompanion-paper trend: the ITB gain grows with network size as");
    println!("up*/down* forbids an increasing share of minimal paths.");
}
