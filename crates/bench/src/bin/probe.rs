//! Quick calibration probe: one point per scheme on the paper torus, timed.
//! Not part of the paper reproduction; used to sanity-check performance and
//! saturation behaviour while developing.

use regnet_bench::{experiment, Topo};
use regnet_core::RoutingScheme;
use regnet_netsim::experiment::RunOptions;
use regnet_traffic::PatternSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let offered: f64 = args
        .iter()
        .position(|a| a == "--load")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.015);
    let opts = RunOptions {
        warmup_cycles: 60_000,
        measure_cycles: 150_000,
        seed: 1,
    };
    for scheme in [
        RoutingScheme::UpDown,
        RoutingScheme::ItbSp,
        RoutingScheme::ItbRr,
    ] {
        let t0 = std::time::Instant::now();
        let exp = experiment(Topo::Torus.build(), scheme, PatternSpec::Uniform);
        let build = t0.elapsed();
        let t1 = std::time::Instant::now();
        let p = exp.run_point(offered, &opts);
        let run = t1.elapsed();
        println!(
            "{:8} offered {:.4} accepted {:.4} lat {:8.0} ns itbs {:.3} delivered {:6} [build {:?} run {:?}]",
            scheme.label(),
            p.offered,
            p.accepted,
            p.avg_latency_ns,
            p.avg_itbs_per_msg,
            p.delivered,
            build,
            run
        );
    }
}
