//! Quick calibration probe: one point per scheme on the paper torus, timed.
//! Not part of the paper reproduction; used to sanity-check performance and
//! saturation behaviour while developing. Runs with the lifetime/digest
//! trace observers and the unified counters on, finishes each point with a
//! wait-for-graph stall classification, and — with `--events <path>` —
//! dumps each scheme's event journal as Chrome trace JSON
//! (`<stem>.<scheme>.json`, Perfetto-loadable). `--metrics <path>` dumps
//! each scheme's run as Prometheus text exposition, `--flame <path>` runs
//! with the self-profiler on and writes collapsed stacks
//! (`flamegraph.pl`/inferno-compatible), both with the same per-scheme
//! file suffixing as `--events`.

use regnet_bench::{parse_fail_links, parse_flag_value, save_chrome_trace};
use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::RunObservation;
use regnet_netsim::{EventOptions, FaultOptions, SimConfig, Simulator, TraceOptions};
use regnet_topology::gen;
use regnet_traffic::{Pattern, PatternSpec};

/// `path` with the scheme tag spliced in before the extension.
fn scheme_path(path: &str, scheme: RoutingScheme) -> String {
    let tag = scheme.label().to_lowercase().replace('/', "-");
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{tag}.{ext}"),
        None => format!("{path}.{tag}.json"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let offered: f64 = parse_flag_value(&args, "--load")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.015);
    let events_path = parse_flag_value(&args, "--events");
    let metrics_path = parse_flag_value(&args, "--metrics");
    let flame_path = parse_flag_value(&args, "--flame");
    let fault_plan = parse_fail_links(&args);
    let (warmup_cycles, measure_cycles) = (60_000u64, 150_000u64);
    let topo = gen::torus_2d(8, 8, 8).expect("torus");
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).expect("pattern");
    for scheme in [
        RoutingScheme::UpDown,
        RoutingScheme::ItbSp,
        RoutingScheme::ItbRr,
    ] {
        let t0 = std::time::Instant::now();
        let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
        let mut sim = Simulator::new(&topo, &db, &pattern, SimConfig::default(), offered, 1);
        sim.enable_trace(TraceOptions {
            packet_lifetimes: true,
            digest: true,
            ..TraceOptions::default()
        });
        sim.enable_counters();
        if events_path.is_some() {
            sim.enable_events(EventOptions::default());
        }
        if flame_path.is_some() {
            sim.enable_profiler();
        }
        if let Some(plan) = &fault_plan {
            sim.enable_faults(FaultOptions::with_plan(plan.clone()));
        }
        let build = t0.elapsed();
        let t1 = std::time::Instant::now();
        sim.run(warmup_cycles);
        sim.begin_measurement();
        sim.run(measure_cycles);
        let stats = sim.end_measurement(measure_cycles);
        let run = t1.elapsed();
        println!(
            "{:8} offered {:.4} accepted {:.4} lat {:8.0} ns itbs {:.3} delivered {:6} [build {:?} run {:?}]",
            scheme.label(),
            offered,
            stats.accepted_flits_per_ns_per_switch(topo.num_switches()),
            stats.avg_latency_ns,
            stats.avg_itbs_per_msg,
            stats.delivered,
            build,
            run
        );
        if let Some(report) = sim.trace_report() {
            if let Some(l) = &report.lifetime {
                println!(
                    "         lifetime p50 {} p99 {} max {} cycles over {} packets",
                    l.p50_cycles, l.p99_cycles, l.max_cycles, l.count
                );
            }
            if let Some(d) = report.digest {
                println!(
                    "         trace digest {d:016x} ({} delivery events)",
                    report.digest_events
                );
            }
        }
        if fault_plan.is_some() {
            let rel = sim.reliability();
            println!(
                "         faults: {} link fail(s), {} truncated, {} retransmitted, \
                 {} dropped, {} reconfig(s)",
                rel.link_failures,
                rel.worms_truncated,
                rel.retransmissions,
                rel.dropped_packets,
                rel.reconfigurations
            );
        }
        let stall = sim.analyze_stall();
        println!(
            "         stall check: {}",
            stall.summary.lines().next().unwrap_or("")
        );
        if let Some(snap) = &stats.counters {
            for line in snap.to_table().lines() {
                println!("         {line}");
            }
        }
        if let (Some(path), Some(journal)) = (&events_path, sim.journal()) {
            save_chrome_trace(&scheme_path(path, scheme), journal);
        }
        if let Some(path) = &metrics_path {
            let obs = RunObservation {
                stats: stats.clone(),
                reliability: sim.reliability(),
                trace: sim.trace_report(),
                profile: sim.profile_report(),
                spans: sim.span_report(),
                journal: None,
                effective_scheduler: sim.effective_scheduler(),
            };
            let out = scheme_path(path, scheme);
            match std::fs::write(&out, obs.metrics_registry().to_prometheus()) {
                Ok(()) => println!("         metrics exposition -> {out}"),
                Err(e) => eprintln!("probe: cannot write {out}: {e}"),
            }
        }
        if let (Some(path), Some(spans)) = (&flame_path, sim.span_report()) {
            let out = scheme_path(path, scheme);
            match std::fs::write(&out, spans.to_collapsed()) {
                Ok(()) => println!("         collapsed stacks -> {out}"),
                Err(e) => eprintln!("probe: cannot write {out}: {e}"),
            }
            for line in spans.to_table().lines() {
                println!("         {line}");
            }
        }
    }
}
