//! Verifies the paper's message-size claim (section 4.2): "for message
//! length, 32, 512, and 1024-byte messages have been considered ...
//! the obtained results are qualitatively similar". Sweeps all three sizes
//! on the 2-D torus under uniform traffic and reports each scheme's
//! saturation throughput — the UP/DOWN vs ITB ordering and rough factor
//! must hold at every size.
//!
//! Usage: `msgsize_sweep [--full]`

use regnet_bench::{table_search, Mode, Topo};
use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::{Experiment, RunOptions};
use regnet_netsim::SimConfig;
use regnet_traffic::PatternSpec;

fn main() {
    let mode = Mode::from_args();
    let opts = RunOptions {
        warmup_cycles: mode.run_options(0).warmup_cycles / 2,
        measure_cycles: mode.run_options(0).measure_cycles / 2,
        seed: 31,
        ..RunOptions::default()
    };
    println!("saturation throughput (flits/ns/switch), 2-D torus, uniform traffic\n");
    println!("msg bytes   UP/DOWN    ITB-SP    ITB-RR    ITB-RR/UD");
    for payload in [32usize, 512, 1024] {
        let mut row = Vec::new();
        for scheme in RoutingScheme::all() {
            let exp = Experiment::new(
                Topo::Torus.build(),
                scheme,
                RouteDbConfig::default(),
                PatternSpec::Uniform,
                SimConfig {
                    payload_flits: payload,
                    ..SimConfig::default()
                },
            )
            .expect("experiment");
            row.push(exp.find_throughput(&table_search(0.004), &opts));
        }
        println!(
            "{payload:>9}   {:.4}    {:.4}    {:.4}    x{:.2}",
            row[0],
            row[1],
            row[2],
            row[2] / row[0]
        );
    }
    println!("\npaper: results qualitatively similar across sizes; ITB ~2x UP/DOWN.");
}
