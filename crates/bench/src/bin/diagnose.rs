//! Development diagnostic: run the paper torus under ITB-SP at low load,
//! dump where live packets are parked and classify any suspected stall via
//! the wait-for-graph analyzer (deadlock cycle vs starvation vs active).
//! `--fail-link <id>@<cycle>` (repeatable) injects link failures to inspect
//! the post-fault state; `--events <path>` dumps the event journal as
//! Chrome trace JSON (Perfetto-loadable) for timeline inspection;
//! `--metrics <path>` dumps the run as Prometheus text exposition (the
//! whole 200k-cycle run becomes the measurement window).

use regnet_bench::{parse_fail_links, parse_flag_value, save_chrome_trace};
use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::experiment::RunObservation;
use regnet_netsim::{EventOptions, FaultOptions, SimConfig, Simulator};
use regnet_topology::gen;
use regnet_traffic::{Pattern, PatternSpec};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let events_path = parse_flag_value(&args, "--events");
    let metrics_path = parse_flag_value(&args, "--metrics");
    let topo = gen::torus_2d(8, 8, 8).unwrap();
    let db = RouteDb::build(&topo, RoutingScheme::ItbSp, &RouteDbConfig::default());
    let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).unwrap();
    let mut sim = Simulator::new(&topo, &db, &pattern, SimConfig::default(), 0.001, 1);
    sim.enable_counters();
    if events_path.is_some() {
        sim.enable_events(EventOptions::default());
    }
    let faulted = if let Some(plan) = parse_fail_links(&args) {
        sim.enable_faults(FaultOptions::with_plan(plan));
        true
    } else {
        false
    };
    if metrics_path.is_some() {
        // Counters are freshly zeroed, so starting the window up front
        // leaves the diagnostic output unchanged.
        sim.begin_measurement();
    }
    sim.run(200_000);
    println!("{}", sim.dump_state());
    if faulted {
        println!("{:#?}", sim.reliability());
    }
    println!("{}", sim.analyze_stall().summary);
    if let Some(snap) = sim.counter_snapshot() {
        println!("{}", snap.to_table());
    }
    if let (Some(path), Some(journal)) = (&events_path, sim.journal()) {
        save_chrome_trace(path, journal);
    }
    if let Some(path) = &metrics_path {
        let obs = RunObservation {
            stats: sim.end_measurement(200_000),
            reliability: sim.reliability(),
            trace: sim.trace_report(),
            profile: sim.profile_report(),
            spans: sim.span_report(),
            journal: None,
            effective_scheduler: sim.effective_scheduler(),
        };
        match std::fs::write(path, obs.metrics_registry().to_prometheus()) {
            Ok(()) => println!("metrics exposition -> {path}"),
            Err(e) => eprintln!("diagnose: cannot write {path}: {e}"),
        }
    }
}
