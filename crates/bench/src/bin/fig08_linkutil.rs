//! Regenerates **Figure 8**: link utilization in the 2-D torus under
//! uniform traffic — UP/DOWN at its saturation point (0.015
//! flits/ns/switch), ITB-RR at the same load, and ITB-RR at 0.03. Renders
//! the paper's greyscale maps as an 8×8 per-switch utilization grid.
//!
//! Usage: `fig08_linkutil [--full]`

use regnet_bench::experiments::{fig08, switch_grid_map};
use regnet_bench::{save_time_series, Mode};

fn main() {
    let report = fig08(Mode::from_args());
    print!("{}", report.render());
    for (i, snap) in report.snapshots.iter().enumerate() {
        println!("\n{}", switch_grid_map(snap, 8, 64));
        if let Some(ts) = &snap.util_series {
            save_time_series(&format!("fig08_util_{i}"), ts);
        }
    }
}
