//! Regenerates **Table 1**: saturation throughput in the 2-D torus under
//! hotspot traffic (5% and 10% of traffic to one random host), for several
//! hotspot locations, under UP/DOWN, ITB-SP and ITB-RR.
//!
//! Usage: `table1_hotspot_torus [--full]`  (quick: 3 locations, full: 10)

use regnet_bench::experiments::table1;
use regnet_bench::Mode;

fn main() {
    let t = table1(Mode::from_args());
    print!("{}", t.render());
    let avg = t.averages();
    let n = avg.len() / 2;
    println!("\nthroughput factors vs UP/DOWN:");
    for (block, label) in [(0, "5% hotspot"), (n, "10% hotspot")] {
        println!(
            "  {label}: ITB-SP x{:.2}  ITB-RR x{:.2}   (paper: x2.13 / x2.19 at 5%, x1.40 / x1.48 at 10%)",
            avg[block + 1] / avg[block],
            avg[block + 2] / avg[block]
        );
    }
}
