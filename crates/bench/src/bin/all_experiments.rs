//! Runs every experiment of the paper (Figures 7-12, Tables 1-3, route
//! statistics) and writes a combined report to
//! `target/experiments/report.txt` plus per-experiment JSON.
//!
//! Usage: `all_experiments [--full]`  — quick mode takes tens of minutes on
//! one core; full mode is several hours.

use std::io::Write;

use regnet_bench::experiments::*;
use regnet_bench::{save_curves, Mode, Topo};

fn main() {
    let mode = Mode::from_args();
    let mut report = String::new();
    let mut add = |s: String| {
        print!("{s}");
        report.push_str(&s);
    };

    add(route_stats().render());

    for (topo, tag) in [
        (Topo::Torus, "torus"),
        (Topo::Express, "express"),
        (Topo::Cplant, "cplant"),
    ] {
        let fig = fig07(topo, mode);
        add(fig.render());
        save_curves(&format!("fig07_{tag}"), &fig.curves);
    }
    for (topo, tag) in [(Topo::Torus, "torus"), (Topo::Express, "express")] {
        let fig = fig10(topo, mode);
        add(fig.render());
        save_curves(&format!("fig10_{tag}"), &fig.curves);
    }
    for (topo, tag) in [
        (Topo::Torus, "torus"),
        (Topo::Express, "express"),
        (Topo::Cplant, "cplant"),
    ] {
        let fig = fig12(topo, mode);
        add(fig.render());
        save_curves(&format!("fig12_{tag}"), &fig.curves);
    }

    let f8 = fig08(mode);
    add(f8.render());
    for snap in &f8.snapshots {
        add(format!("\n{}\n", switch_grid_map(snap, 8, 64)));
    }
    let f9 = fig09(mode);
    add(f9.render());
    let f11 = fig11(mode);
    add(f11.render());
    for snap in &f11.snapshots {
        add(format!("\n{}\n", switch_grid_map(snap, 8, 64)));
    }

    add(table1(mode).render());
    add(table2(mode).render());
    add(table3(mode).render());

    std::fs::create_dir_all("target/experiments").ok();
    let mut f = std::fs::File::create("target/experiments/report.txt").expect("report file");
    f.write_all(report.as_bytes()).expect("write report");
    println!("\n[report saved to target/experiments/report.txt]");
}
