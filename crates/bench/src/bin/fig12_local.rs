//! Regenerates **Figure 12**: latency vs accepted traffic under local
//! traffic (destinations at most 3 switches away) on all three topologies.
//! `--radius4` additionally runs the paper's 4-switch-radius variant.
//!
//! Usage: `fig12_local [--topo torus|express|cplant|all] [--radius4] [--full]`

use regnet_bench::experiments::{fig12, fig12_radius4};
use regnet_bench::{save_curves, Mode, Topo};

fn main() {
    let mode = Mode::from_args();
    let args: Vec<String> = std::env::args().collect();
    let sel = args
        .iter()
        .position(|a| a == "--topo")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let topos: Vec<Topo> = match sel {
        "all" => vec![Topo::Torus, Topo::Express, Topo::Cplant],
        s => vec![Topo::parse(s).expect("unknown --topo")],
    };
    let radius4 = args.iter().any(|a| a == "--radius4");
    for topo in topos {
        let fig = fig12(topo, mode);
        print!("{}", fig.render());
        let tag = match topo {
            Topo::Torus => "torus",
            Topo::Express => "express",
            Topo::Cplant => "cplant",
        };
        save_curves(&format!("fig12_{tag}"), &fig.curves);
        if radius4 {
            let fig = fig12_radius4(topo, mode);
            print!("{}", fig.render());
            save_curves(&format!("fig12r4_{tag}"), &fig.curves);
        }
    }
}
