//! Campaign orchestrator CLI: fan a declarative grid of simulation cells
//! across a worker pool with checkpoint/resume and streamed curve exports.
//!
//! ```text
//! campaign <file.json> [--out DIR] [--threads N] [--stop-after N]
//!                      [--fresh] [--dry-run] [--quiet]
//! campaign --smoke     [same options; built-in tiny campaign]
//! campaign <file.json> --what-if "topo=torus,scheme=ITB-RR,pattern=uniform[,start=0.004,...]"
//! campaign --watch <out>/status.json          live terminal dashboard
//! campaign --check-status <out>/status.json   validate and exit
//! ```
//!
//! While running, the campaign republishes `<out>/status.json` after
//! every worker event (atomic tmp+rename): totals, per-worker state, ETA
//! and the last errors. Point `--watch` at it from another terminal.
//!
//! Every finished cell is checkpointed under `<out>/cells/<hash>.json`;
//! re-running the same campaign file skips everything already landed, so
//! an interrupted campaign (Ctrl-C, `--stop-after`, power loss) resumes
//! where it left off. After each landed cell the derived artifacts —
//! latency-vs-load curves per group, the saturation summary, goodput
//! time series — are re-exported, so partial results are always on disk.

use std::process::ExitCode;

use regnet_bench::parse_flag_value;
use regnet_campaign::{
    export_campaign, parse_pattern, parse_scheme, render_status, run_plan, validate_status_json,
    what_if, CampaignSpec, CellDefaults, CellSpec, FaultSpec, Progress, ResultStore, RunPlan,
    RunnerEvent, RunnerOptions, StatusBoard, TopoSpec, WhatIfQuery,
};

/// The built-in `--smoke` campaign: 2 topologies × 2 schemes × 2 loads on
/// tiny networks with short windows, small enough for CI to run twice
/// (interrupted + resumed) in seconds.
const SMOKE_CAMPAIGN: &str = r#"{
    "schema": "regnet-campaign-v1",
    "name": "smoke",
    "defaults": {
        "warmup_cycles": 2000,
        "measure_cycles": 10000,
        "payload_flits": 64,
        "seed": 7,
        "goodput_interval": 2500
    },
    "sweeps": [
        {
            "group": "smoke torus",
            "topos": ["torus:4x4:2"],
            "schemes": ["UP/DOWN", "ITB-RR"],
            "patterns": ["uniform"],
            "loads": [0.004, 0.008]
        },
        {
            "group": "smoke express",
            "topos": ["express:4x4:2"],
            "schemes": ["UP/DOWN", "ITB-RR"],
            "patterns": ["uniform"],
            "loads": [0.01, 0.02]
        }
    ]
}"#;

fn usage() -> &'static str {
    "usage: campaign <file.json> [options]\n\
     \n\
     options:\n\
       --out DIR        results directory (default target/campaigns/<name>)\n\
       --threads N      worker threads (default REGNET_THREADS or all cores)\n\
       --stop-after N   run at most N pending cells, then exit (resumable)\n\
       --fresh          discard existing checkpoints before running\n\
       --dry-run        print the expanded cell plan and exit\n\
       --quiet          suppress per-cell progress lines\n\
       --smoke          run the built-in tiny CI campaign (no file needed)\n\
       --watch PATH     render a running campaign's status.json as a live\n\
                        dashboard (exits when the campaign does)\n\
       --check-status PATH  validate a status.json and exit non-zero if\n\
                        it is missing, torn or inconsistent\n\
       --what-if SPEC   bisect for the saturation load of one scenario:\n\
                        SPEC is comma-separated key=value with keys\n\
                        topo, scheme, pattern (required) and seed, warmup,\n\
                        measure, payload, fault, start, growth, tol, probes"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaign: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if let Some(path) = parse_flag_value(args, "--check-status") {
        return check_status(&path);
    }
    if let Some(path) = parse_flag_value(args, "--watch") {
        return watch_status(&path);
    }
    let quiet = args.iter().any(|a| a == "--quiet");
    let smoke = args.iter().any(|a| a == "--smoke");

    let (name_hint, text) = if smoke {
        ("smoke".to_string(), SMOKE_CAMPAIGN.to_string())
    } else {
        let file = args
            .iter()
            .find(|a| !a.starts_with("--") && !is_flag_value(args, a))
            .ok_or_else(|| format!("no campaign file given\n{}", usage()))?;
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        (file.clone(), text)
    };

    let spec = CampaignSpec::from_json_str(&text).map_err(|e| format!("{name_hint}: {e}"))?;
    let plan = spec.expand()?;

    let out = parse_flag_value(args, "--out")
        .unwrap_or_else(|| format!("target/campaigns/{}", spec.name));
    let threads = match parse_flag_value(args, "--threads") {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("--threads {v:?} is not a positive integer"))?,
        None => regnet_bench::threads(),
    };

    if let Some(query) = parse_flag_value(args, "--what-if") {
        return run_what_if(&query, &out, quiet);
    }

    if args.iter().any(|a| a == "--dry-run") {
        println!("campaign {:?}: {} cells", plan.name, plan.len());
        for cell in &plan.cells {
            println!("{}  {}", cell.hash, cell.key);
        }
        return Ok(());
    }

    let stop_after = match parse_flag_value(args, "--stop-after") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| format!("--stop-after {v:?} is not an integer"))?,
        ),
        None => None,
    };

    let store = ResultStore::open(&out)?;
    if args.iter().any(|a| a == "--fresh") {
        store.clear()?;
        if !quiet {
            Progress::announce("campaign", &format!("cleared checkpoints under {out}"));
        }
    }

    run_campaign(&plan, &store, threads, stop_after, quiet)
}

/// Run (or resume) `plan` against `store`, streaming curve exports after
/// every landed cell.
fn run_campaign(
    plan: &RunPlan,
    store: &ResultStore,
    threads: usize,
    stop_after: Option<usize>,
    quiet: bool,
) -> Result<(), String> {
    let mut results = store.load_all()?;
    // Keep only results that belong to this plan (the store may hold
    // cells from what-if probes or an older campaign revision).
    let planned: std::collections::BTreeSet<&str> =
        plan.cells.iter().map(|c| c.hash.as_str()).collect();
    results.retain(|h, _| planned.contains(h.as_str()));
    let resumed = results.len();
    if !quiet {
        Progress::announce(
            "campaign",
            &format!(
                "{:?}: {} cells, {} already checkpointed, {} threads, results under {}",
                plan.name,
                plan.len(),
                resumed,
                threads,
                store.root().display()
            ),
        );
    }

    let pending = plan.len() - resumed;
    let mut progress = if quiet {
        Progress::start_quiet("campaign", pending)
    } else {
        Progress::start("campaign", pending)
    };
    let opts = RunnerOptions {
        threads,
        stop_after,
    };
    let out_dir = store.root().to_path_buf();
    let mut board = StatusBoard::new(
        out_dir.join("status.json"),
        "campaign",
        pending,
        threads.clamp(1, pending.max(1)),
    );
    let mut export_err: Option<String> = None;
    let outcome = run_plan(plan, store, &opts, |ev| match ev {
        RunnerEvent::Started { worker, cell } => board.started(worker, &cell.key),
        RunnerEvent::Done(done) => {
            board.done(done.worker, &done.cell.key);
            results.insert(done.result.hash.clone(), done.result.clone());
            progress.step(&format!(
                "{} accepted {:.5} avg {:.0}ns",
                done.cell.hash, done.result.accepted, done.result.avg_latency_ns
            ));
            if export_err.is_none() {
                if let Err(e) = export_campaign(plan, &results, &out_dir) {
                    export_err = Some(e);
                }
            }
        }
        RunnerEvent::Failed {
            worker,
            cell,
            error,
        } => board.failed(worker, &cell.key, error),
    });
    match &outcome {
        Err(_) => board.finish("failed"),
        Ok(o) if o.complete() => board.finish("done"),
        Ok(_) => board.finish("stopped"),
    }
    let outcome = outcome?;
    if let Some(e) = export_err {
        return Err(e);
    }

    // A fully resumed campaign runs zero cells but should still leave
    // fresh aggregate artifacts behind.
    if outcome.ran == 0 && !results.is_empty() {
        export_campaign(plan, &results, &out_dir)?;
    }

    if outcome.complete() {
        progress.finish(&format!(
            "campaign complete ({} ran, {} resumed); curves under {}",
            outcome.ran,
            outcome.skipped,
            out_dir.join("curves").display()
        ));
    } else {
        progress.finish(&format!(
            "stopped early: {} cells still pending; re-run to resume",
            outcome.remaining
        ));
    }
    Ok(())
}

/// `--check-status`: parse + validate a status file (the CI gate).
fn check_status(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snap = validate_status_json(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid ({} {}, {}/{} done, {} failed, {} pending)",
        snap.tool, snap.state, snap.done, snap.total, snap.failed, snap.pending
    );
    Ok(())
}

/// `--watch`: poll a status file and redraw it as a dashboard until the
/// run it describes leaves the `"running"` state.
fn watch_status(path: &str) -> Result<(), String> {
    let mut waiting_printed = false;
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                // A torn read is impossible (writers rename); a parse
                // error here is a real protocol violation.
                let snap = validate_status_json(&text).map_err(|e| format!("{path}: {e}"))?;
                // Clear screen + home, then one full redraw.
                print!("\x1b[2J\x1b[H{}", render_status(&snap));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                if snap.state != "running" {
                    return Ok(());
                }
            }
            Err(_) if !waiting_printed => {
                eprintln!("waiting for {path} ...");
                waiting_printed = true;
            }
            Err(_) => {}
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

/// `--what-if`: bisect for the saturation load of a single scenario,
/// caching every probe through the same result store.
fn run_what_if(spec_str: &str, out: &str, quiet: bool) -> Result<(), String> {
    let query = parse_what_if(spec_str)?;
    let store = ResultStore::open(out)?;
    if !quiet {
        Progress::announce(
            "what-if",
            &format!(
                "bisecting saturation of {} (probes cached under {})",
                query.cell.canonical_key(),
                store.root().display()
            ),
        );
    }
    let result = what_if(&query, &store, |load, saturated, cached| {
        if !quiet {
            Progress::announce(
                "what-if",
                &format!(
                    "probe load {load:.6}: {}{}",
                    if saturated { "saturated" } else { "ok" },
                    if cached { " (cached)" } else { "" }
                ),
            );
        }
    })?;
    println!(
        "saturation load in [{:.6}, {:.6}], estimate {:.6} (throughput {:.5} flits/ns/switch)",
        result.lo,
        result.hi,
        result.saturation_load(),
        result.throughput
    );
    println!(
        "probes: {} simulated, {} from cache{}",
        result.ran,
        result.cached,
        if result.converged {
            ""
        } else {
            " — probe budget exhausted before convergence"
        }
    );
    Ok(())
}

/// Parse the `--what-if` scenario string (`topo=...,scheme=...,...`).
fn parse_what_if(s: &str) -> Result<WhatIfQuery, String> {
    let defaults = CellDefaults::default();
    let mut topo: Option<TopoSpec> = None;
    let mut scheme = None;
    let mut pattern = None;
    let mut cell = CellSpec {
        topo: TopoSpec::Torus,
        scheme: regnet_core::RoutingScheme::UpDown,
        pattern: regnet_traffic::PatternSpec::Uniform,
        load: 0.0,
        seed: defaults.seed,
        warmup_cycles: defaults.warmup_cycles,
        measure_cycles: defaults.measure_cycles,
        payload_flits: defaults.payload_flits,
        scheduler: defaults.scheduler,
        goodput_interval: None,
        reconfig_latency_cycles: None,
        faults: None,
    };
    let mut start = None;
    let mut growth = None;
    let mut tol = None;
    let mut probes = None;
    for part in s.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("what-if field {part:?} is not key=value"))?;
        let (k, v) = (k.trim(), v.trim());
        match k {
            "topo" => topo = Some(TopoSpec::parse(v)?),
            "scheme" => scheme = Some(parse_scheme(v)?),
            "pattern" => pattern = Some(parse_pattern(v)?),
            "seed" => cell.seed = parse_num(k, v)?,
            "warmup" => cell.warmup_cycles = parse_num(k, v)?,
            "measure" => cell.measure_cycles = parse_num(k, v)?,
            "payload" => cell.payload_flits = parse_num(k, v)?,
            "fault" => cell.faults = Some(FaultSpec::parse("what-if", v)?),
            "start" => start = Some(parse_float(k, v)?),
            "growth" => growth = Some(parse_float(k, v)?),
            "tol" => tol = Some(parse_float(k, v)?),
            "probes" => probes = Some(parse_num(k, v)?),
            other => return Err(format!("unknown what-if field {other:?}")),
        }
    }
    cell.topo = topo.ok_or("what-if needs topo=...")?;
    cell.scheme = scheme.ok_or("what-if needs scheme=...")?;
    cell.pattern = pattern.ok_or("what-if needs pattern=...")?;
    let mut query = WhatIfQuery::new(cell);
    if let Some(v) = start {
        query.start = v;
    }
    if let Some(v) = growth {
        query.growth = v;
    }
    if let Some(v) = tol {
        query.rel_tol = v;
    }
    if let Some(v) = probes {
        query.max_probes = v;
    }
    Ok(query)
}

fn parse_num<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, String> {
    v.parse::<T>()
        .map_err(|_| format!("what-if {key}={v:?} is not a valid number"))
}

fn parse_float(key: &str, v: &str) -> Result<f64, String> {
    v.parse::<f64>()
        .map_err(|_| format!("what-if {key}={v:?} is not a number"))
}

/// Is `arg` the value slot of a `--flag VALUE` pair (not a free operand)?
fn is_flag_value(args: &[String], arg: &String) -> bool {
    const VALUE_FLAGS: [&str; 6] = [
        "--out",
        "--threads",
        "--stop-after",
        "--what-if",
        "--watch",
        "--check-status",
    ];
    args.iter()
        .position(|a| std::ptr::eq(a, arg))
        .and_then(|i| i.checked_sub(1))
        .and_then(|i| args.get(i))
        .is_some_and(|prev| VALUE_FLAGS.contains(&prev.as_str()))
}
