//! Dependability experiment: how gracefully each routing scheme degrades
//! under live link failures with NIC retransmission and online
//! reconfiguration enabled.
//!
//! Two outputs, both under `target/experiments/`:
//!
//! * `fault_throughput_vs_failed_links` — accepted traffic at a fixed
//!   offered load as a function of the number of failed links (the curve's
//!   "offered" column is k, the failure count), one curve per scheme.
//! * `fault_goodput_dip` — delivered-payload goodput over time through a
//!   fail/repair cycle on one link, one series per scheme: the dip, the
//!   reconfiguration stall and the recovery.
//!
//! Modes: default = quick (reduced windows), `--full` = longer windows,
//! `--smoke` = tiny topology and windows for CI (seconds).
//! `--topo torus|express|cplant` picks the paper topology (default torus);
//! output file names carry the topology. `--scheduler <label>` selects the
//! cycle-loop engine (`scan`, `active-set`, `event`, `parallel[:N]`;
//! default active-set) — faulted runs are bit-identical across engines,
//! so this only changes wall-clock time.

use regnet_bench::{parse_flag_value, save_curves, save_time_series, threads, Topo};
use regnet_campaign::{Progress, StatusBoard};
use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_metrics::{Curve, CurvePoint, TimeSeries};
use regnet_netsim::experiment::{par_map, Experiment, RunOptions};
use regnet_netsim::{FaultOptions, FaultPlan, Scheduler, SimConfig, TraceOptions, CYCLE_NS};
use regnet_topology::{gen, LinkId, Topology};
use regnet_traffic::PatternSpec;

struct Params {
    topo: fn() -> Topology,
    /// Suffix for output file names.
    topo_name: String,
    offered: f64,
    warmup: u64,
    measure: u64,
    /// Failure counts for the throughput-vs-failed-links sweep.
    ks: Vec<usize>,
    /// Goodput sampling interval, cycles.
    interval: u64,
    cfg: SimConfig,
    /// Cycle-loop engine for every run in the sweep.
    scheduler: Scheduler,
}

fn params() -> Params {
    let args: Vec<String> = std::env::args().collect();
    let sel = args
        .iter()
        .position(|a| a == "--topo")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("torus")
        .to_string();
    let topo: fn() -> Topology = match sel.as_str() {
        "torus" => || Topo::Torus.build(),
        "express" => || Topo::Express.build(),
        "cplant" => || Topo::Cplant.build(),
        other => panic!("unknown --topo {other:?} (torus|express|cplant)"),
    };
    let scheduler = match parse_flag_value(&args, "--scheduler") {
        Some(s) => Scheduler::parse(&s).unwrap_or_else(|| {
            panic!("unknown --scheduler {s:?} (scan|active-set|event|parallel[:N])")
        }),
        None => Scheduler::ActiveSet,
    };
    if args.iter().any(|a| a == "--smoke") {
        Params {
            topo: || gen::torus_2d(4, 4, 2).expect("torus"),
            topo_name: "smoke".to_string(),
            offered: 0.01,
            warmup: 4_000,
            measure: 12_000,
            ks: vec![0, 1, 2],
            interval: 1_000,
            // The smoke windows are far shorter than the default 100 µs
            // mapper latency; scale it down so reconfiguration completes.
            cfg: SimConfig {
                reconfig_latency_cycles: 2_000,
                ..SimConfig::default()
            },
            scheduler,
        }
    } else if args.iter().any(|a| a == "--full") {
        Params {
            topo,
            topo_name: sel.clone(),
            offered: 0.01,
            warmup: 100_000,
            measure: 300_000,
            ks: vec![0, 1, 2, 4, 8, 16],
            interval: 5_000,
            cfg: SimConfig::default(),
            scheduler,
        }
    } else {
        Params {
            topo,
            topo_name: sel,
            offered: 0.01,
            warmup: 40_000,
            measure: 100_000,
            ks: vec![0, 1, 2, 4, 8],
            interval: 2_500,
            cfg: SimConfig::default(),
            scheduler,
        }
    }
}

/// `k` switch links spread evenly across the topology (deterministic).
fn spaced_switch_links(topo: &Topology, k: usize) -> Vec<LinkId> {
    let links: Vec<LinkId> = topo
        .links()
        .iter()
        .filter(|l| l.is_switch_link())
        .map(|l| l.id)
        .collect();
    assert!(k <= links.len(), "cannot fail {k} of {} links", links.len());
    (0..k).map(|i| links[i * links.len() / k.max(1)]).collect()
}

fn experiment(p: &Params, scheme: RoutingScheme) -> Experiment {
    Experiment::new(
        (p.topo)(),
        scheme,
        RouteDbConfig::default(),
        PatternSpec::Uniform,
        p.cfg.clone(),
    )
    .expect("experiment construction")
}

/// Accepted traffic vs number of failed links. Links fail at cycle 0, so
/// the measurement window sees the reconfigured steady state.
fn throughput_vs_failed_links(p: &Params, board: &mut StatusBoard) {
    let mut curves = Vec::new();
    let schemes = [
        RoutingScheme::UpDown,
        RoutingScheme::ItbSp,
        RoutingScheme::ItbRr,
    ];
    let mut progress = Progress::start("fault-sweep", schemes.len());
    for scheme in schemes {
        let item = format!("throughput/{}", scheme.label());
        board.started(0, &item);
        let exp = experiment(p, scheme);
        let results = par_map(p.ks.len(), threads(), |i| {
            let k = p.ks[i];
            let mut plan = FaultPlan::new();
            for l in spaced_switch_links(exp.topology(), k) {
                plan.fail_link(0, l);
            }
            let opts = RunOptions {
                warmup_cycles: p.warmup,
                measure_cycles: p.measure,
                seed: 1,
                faults: Some(FaultOptions::with_plan(plan)),
                scheduler: p.scheduler,
                ..RunOptions::default()
            };
            exp.run_reliability(p.offered, &opts)
        });
        let mut curve = Curve::new(format!("{} vs failed links", scheme.label()));
        for (&k, (stats, rel, _)) in p.ks.iter().zip(&results) {
            let accepted = stats.accepted_flits_per_ns_per_switch(exp.topology().num_switches());
            println!(
                "{:8} k={:2} accepted {:.4} lat {:8.0} ns delivered {:6} dropped {:4} \
                 reconfigs {} lost-pairs {}",
                scheme.label(),
                k,
                accepted,
                stats.avg_latency_ns,
                stats.delivered,
                rel.dropped_packets,
                rel.reconfigurations,
                rel.unreachable_pairs,
            );
            curve.push(CurvePoint {
                offered: k as f64, // the x axis of this figure is k
                accepted,
                avg_latency_ns: stats.avg_latency_ns,
                p99_latency_ns: stats.p99_latency_ns,
                avg_total_latency_ns: stats.avg_total_latency_ns,
                avg_itbs_per_msg: stats.avg_itbs_per_msg,
                delivered: stats.delivered,
            });
        }
        curves.push(curve);
        board.done(0, &item);
        progress.step(&format!(
            "{} across {} failure counts",
            scheme.label(),
            p.ks.len()
        ));
    }
    progress.finish("");
    save_curves(
        &format!("fault_throughput_vs_failed_links_{}", p.topo_name),
        &curves,
    );
}

/// Goodput over time through one fail/repair cycle on a single link.
fn goodput_dip(p: &Params, board: &mut StatusBoard) {
    let total = p.warmup + p.measure;
    let fail_at = p.warmup + p.measure / 4;
    let repair_at = p.warmup + (3 * p.measure) / 4;
    let mut ts = TimeSeries::new(
        format!("goodput through a link fail/repair ({fail_at}/{repair_at})"),
        p.interval,
    );
    let schemes = [
        RoutingScheme::UpDown,
        RoutingScheme::ItbSp,
        RoutingScheme::ItbRr,
    ];
    let mut progress = Progress::start("goodput-dip", schemes.len());
    for scheme in schemes {
        let item = format!("goodput/{}", scheme.label());
        board.started(0, &item);
        let exp = experiment(p, scheme);
        let link = spaced_switch_links(exp.topology(), 1)[0];
        let mut plan = FaultPlan::single_link(link, fail_at);
        plan.repair_link(repair_at, link);
        let opts = RunOptions {
            warmup_cycles: p.warmup,
            measure_cycles: p.measure,
            seed: 1,
            trace: TraceOptions {
                goodput_interval: Some(p.interval),
                ..TraceOptions::default()
            },
            faults: Some(FaultOptions::with_plan(plan)),
            scheduler: p.scheduler,
            ..RunOptions::default()
        };
        let (_, rel, report) = exp.run_reliability(p.offered, &opts);
        let g = report
            .and_then(|r| r.goodput)
            .expect("goodput observer was enabled");
        // Payload flits per bucket -> flits/ns, comparable across intervals.
        let per_ns: Vec<f64> = g
            .samples
            .iter()
            .map(|&s| s as f64 / (g.interval as f64 * CYCLE_NS))
            .collect();
        println!(
            "{:8} {} samples over {} cycles; truncated {} retransmitted {} dropped {}",
            scheme.label(),
            per_ns.len(),
            total,
            rel.worms_truncated,
            rel.retransmissions,
            rel.dropped_packets,
        );
        ts.push(scheme.label(), per_ns);
        board.done(0, &item);
        progress.step(scheme.label());
    }
    progress.finish("");
    save_time_series(&format!("fault_goodput_dip_{}", p.topo_name), &ts);
}

fn main() {
    let p = params();
    Progress::announce(
        "fault-sweep",
        &format!(
            "offered {:.4}, warmup {}, measure {}, ks {:?}, scheduler {}",
            p.offered,
            p.warmup,
            p.measure,
            p.ks,
            p.scheduler.label()
        ),
    );
    // Live status file beside the curve outputs (3 schemes × 2 figures).
    let _ = std::fs::create_dir_all("target/experiments");
    let status_path = format!("target/experiments/fault_sweep_status_{}.json", p.topo_name);
    let mut board = StatusBoard::new(&status_path, "fault_sweep", 6, 1);
    throughput_vs_failed_links(&p, &mut board);
    goodput_dip(&p, &mut board);
    board.finish("done");
    Progress::announce("fault-sweep", &format!("status under {status_path}"));
}
