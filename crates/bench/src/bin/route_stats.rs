//! Route-level statistics quoted in section 4.7.1 of the paper, computed
//! without simulation: fraction of minimal routes (paper: 80% torus / 94%
//! express / 100% CPLANT for UP/DOWN), average distance (4.57 vs 4.06 on
//! the torus), average in-transit buffers per route.

use regnet_bench::experiments::route_stats;

fn main() {
    print!("{}", route_stats().render());
    println!("\npaper reference points:");
    println!("  torus UP/DOWN: 80% minimal, avg distance 4.57; minimal avg 4.06");
    println!("  express UP/DOWN: 94% minimal; CPLANT UP/DOWN: 100% minimal");
    println!("  ITB torus: 0.43 (SP) / 0.54 (RR) in-transit buffers per message");
}
