//! Engine bench pipeline with perf-regression guard.
//!
//! Runs a fixed matrix — the paper's three topologies × three routing
//! schemes, each with observers off (`plain`) and on (`traced`: counters +
//! event journal + per-phase profiler) — plus a scheduler-comparison
//! column (scan vs active-set vs — at the near-idle load, where time
//! skipping pays — the event-driven driver, ITB-RR, at a near-idle and a
//! saturated load) and two thread-scaling columns (the shard-parallel
//! engine at 1/2/4 threads, saturated torus ITB-RR — once fault-free and
//! once with a live link fail/repair plan armed, since the parallel
//! engine runs fault plans natively) and writes a [`BenchReport`]
//! as JSON. The event-driven low-load cells are gated: the run fails if
//! the event driver does not at least match the active set's cycles/sec
//! there (the expected ratio is far above 1x — at load 0.0005 the mean
//! inter-message gap is on the order of thousands of idle cycles, all
//! jumped in O(1)).
//! `BENCH_netsim.json` at the repository root is the committed baseline;
//! CI reruns the matrix and `--check`s against it.
//!
//! ```text
//! bench_report [--smoke | --full] [--out <path>] [--check <baseline>]
//!              [--threshold <frac>]
//! ```
//!
//! * `--smoke` (default): scaled-down topologies, short windows — about a
//!   minute.
//! * `--full`: the paper-size topologies — minutes.
//! * `--out <path>`: where to write the report (default `BENCH_netsim.json`).
//! * `--check <baseline>`: after measuring, compare against a previous
//!   report; exit 1 if any matrix cell got more than `--threshold`
//!   (default 0.15) slower after machine-speed calibration.
//!
//! Noise strategy: timing on a shared runner is noisy and the noise is
//! one-sided (contention only slows things down), so every cell is timed
//! over several measurement windows spread across interleaved *rounds* of
//! the whole matrix — a sustained contention stretch then degrades one
//! round of every cell instead of every window of one cell — and the
//! fastest window wins. Machine speed is calibrated with a pure CPU
//! kernel that shares no code with the simulator: a genuine engine
//! regression moves every cell but not the calibration scalar, while a
//! slower machine moves both and cancels out of the normalized ratio.

use std::process::ExitCode;
use std::time::Instant;

use regnet_bench::report::{
    check_against, peak_rss_kb, BenchCell, BenchReport, BENCH_SCHEMA, DEFAULT_THRESHOLD,
};
use regnet_bench::{parse_flag_value, Topo};
use regnet_campaign::{Progress, StatusBoard};
use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_netsim::{EventOptions, FaultOptions, FaultPlan, Scheduler, SimConfig, Simulator};
use regnet_topology::Topology;
use regnet_traffic::{Pattern, PatternSpec};

const SCHEMES: [RoutingScheme; 3] = [
    RoutingScheme::UpDown,
    RoutingScheme::ItbSp,
    RoutingScheme::ItbRr,
];
const TOPOS: [(Topo, &str); 3] = [
    (Topo::Torus, "torus"),
    (Topo::Express, "express"),
    (Topo::Cplant, "cplant"),
];
const LOAD: f64 = 0.01;
/// The scheduler-comparison loads: near-idle (where active-set scheduling
/// pays off — few components have work per cycle) and saturation (where
/// everything is busy and the active set must not cost anything).
const LOW_LOAD: f64 = 0.0005;
const SAT_LOAD: f64 = 0.05;
const SEED: u64 = 1;

struct MatrixParams {
    mode: &'static str,
    warmup: u64,
    measure: u64,
    /// Interleaved rounds over the whole matrix; per cell the fastest
    /// round's window is reported.
    rounds: u32,
}

/// Everything rebuilt once per (topology, scheme): route-db construction
/// dominates setup cost, so it stays out of the round loop.
struct CellSetup {
    topo_key: &'static str,
    scheme: RoutingScheme,
    topo: Topology,
    db: RouteDb,
    pattern: Pattern,
}

/// One timed measurement window on a fresh simulator. With `faulted`, a
/// switch link fails a quarter into the window and is repaired at three
/// quarters, so the cell times the fault machinery (per-cycle fault
/// phase, deferred-loss replay, retransmissions) in steady operation.
/// Returns `(wall_ns, counter_events, phases)`.
fn time_window(
    s: &CellSetup,
    traced: bool,
    p: &MatrixParams,
    scheduler: Scheduler,
    load: f64,
    faulted: bool,
) -> (u64, u64, Vec<regnet_netsim::PhaseProfile>) {
    let mut sim = Simulator::new(&s.topo, &s.db, &s.pattern, SimConfig::default(), load, SEED);
    sim.set_scheduler(scheduler);
    if traced {
        sim.enable_counters();
        sim.enable_events(EventOptions::default());
        sim.enable_profiler();
    }
    if faulted {
        let link = s
            .topo
            .links()
            .iter()
            .find(|l| l.is_switch_link())
            .expect("switch link")
            .id;
        let mut plan = FaultPlan::single_link(link, p.warmup + p.measure / 4);
        plan.repair_link(p.warmup + (3 * p.measure) / 4, link);
        sim.enable_faults(FaultOptions::with_plan(plan));
    }
    sim.run(p.warmup);
    sim.begin_measurement();
    let t0 = Instant::now();
    sim.run(p.measure);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let stats = sim.end_measurement(p.measure);
    let events = stats
        .counters
        .as_ref()
        .map(|c| c.total_events())
        .unwrap_or(0);
    let phases = sim.profile_report().map(|r| r.phases).unwrap_or_default();
    (wall_ns, events, phases)
}

/// Pure-CPU calibration kernel: a xorshift-fed pointer-chase over a small
/// working set, deliberately independent of the simulator so that engine
/// regressions do NOT move this scalar. Returns steps/second.
fn calibration_window() -> f64 {
    const STEPS: u64 = 4_000_000;
    let mut table = [0u64; 4096];
    let mut x: u64 = 0x9e3779b97f4a7c15;
    for slot in table.iter_mut() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *slot = x;
    }
    let t0 = Instant::now();
    let mut acc: u64 = 0;
    let mut idx: usize = 0;
    for _ in 0..STEPS {
        let v = table[idx];
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(v);
        idx = (v ^ acc) as usize & (table.len() - 1);
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    STEPS as f64 / dt
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let p = if full {
        MatrixParams {
            mode: "full",
            warmup: 60_000,
            measure: 150_000,
            rounds: 1,
        }
    } else {
        MatrixParams {
            mode: "smoke",
            warmup: 5_000,
            measure: 20_000,
            rounds: 3,
        }
    };
    let out_path = parse_flag_value(&args, "--out").unwrap_or_else(|| "BENCH_netsim.json".into());
    let baseline_path = parse_flag_value(&args, "--check");
    let threshold: f64 = parse_flag_value(&args, "--threshold")
        .map(|s| s.parse().expect("--threshold must be a number"))
        .unwrap_or(DEFAULT_THRESHOLD);

    Progress::announce("bench", "building topologies and route databases");
    let mut setups = Vec::new();
    for (topo_kind, topo_key) in TOPOS {
        let topo = if full {
            topo_kind.build()
        } else {
            topo_kind.build_small()
        };
        for scheme in SCHEMES {
            let db = RouteDb::build(&topo, scheme, &RouteDbConfig::default());
            let pattern = Pattern::resolve(PatternSpec::Uniform, &topo).expect("pattern");
            setups.push(CellSetup {
                topo_key,
                scheme,
                topo: topo.clone(),
                db,
                pattern,
            });
        }
    }

    // Scheduler-comparison jobs: ITB-RR (the paper's headline scheme) on
    // every topology, scan vs active-set at the lowest-load point and at
    // saturation, plus the event-driven driver at the lowest-load point
    // (its design regime; at saturation it degenerates to the active set
    // with one never-taken branch). (setup index, load, scheduler,
    // fault-armed), scan first per group.
    let mut cmp_jobs: Vec<(usize, f64, Scheduler, bool)> = setups
        .iter()
        .enumerate()
        .filter(|(_, s)| s.scheme == RoutingScheme::ItbRr)
        .flat_map(|(i, _)| {
            [LOW_LOAD, SAT_LOAD].into_iter().flat_map(move |load| {
                let scheds: &[Scheduler] = if load == LOW_LOAD {
                    &[
                        Scheduler::Scan,
                        Scheduler::ActiveSet,
                        Scheduler::EventDriven,
                    ]
                } else {
                    &[Scheduler::Scan, Scheduler::ActiveSet]
                };
                scheds.iter().map(move |&sched| (i, load, sched, false))
            })
        })
        .collect();
    // Thread-scaling jobs: the shard-parallel engine on the saturated
    // torus (every shard busy every cycle — its design regime).
    let torus_itb_rr = setups
        .iter()
        .position(|s| s.topo_key == "torus" && s.scheme == RoutingScheme::ItbRr)
        .expect("torus/itb-rr is in the matrix");
    // Scheduler-comparison groups come first, then the fault-free
    // thread-scaling column, then the fault-armed one (the boundaries
    // feed the summary printing below; fault-free cells must precede
    // their faulted twins so pre-v5 baselines match the right rows).
    let n_schedcmp = cmp_jobs.len();
    for threads in [1usize, 2, 4] {
        cmp_jobs.push((
            torus_itb_rr,
            SAT_LOAD,
            Scheduler::Parallel { threads },
            false,
        ));
    }
    let n_threadscale = 3usize;
    // Fault-armed thread-scaling: the same saturated torus with a live
    // link fail/repair plan — the parallel engine runs fault plans
    // natively (no active-set downgrade), so its speedup must survive
    // with the fault phase and deferred-loss replay in the loop.
    cmp_jobs.push((torus_itb_rr, SAT_LOAD, Scheduler::ActiveSet, true));
    for threads in [1usize, 2, 4] {
        cmp_jobs.push((
            torus_itb_rr,
            SAT_LOAD,
            Scheduler::Parallel { threads },
            true,
        ));
    }
    let cmp_jobs = cmp_jobs;

    // best[cell_index] = (wall_ns, events, phases); calibration keeps its
    // own best across rounds.
    let n_matrix = setups.len() * 2;
    let n_cells = n_matrix + cmp_jobs.len();
    let mut best: Vec<Option<(u64, u64, Vec<regnet_netsim::PhaseProfile>)>> = vec![None; n_cells];
    let mut calibration = f64::NEG_INFINITY;
    let rounds = p.rounds.max(1) as usize;
    let mut rounds_progress = Progress::start("bench", rounds);
    // Live status beside the report: one item per timing round.
    let status_path = std::path::Path::new(&out_path).with_extension("status.json");
    let mut board = StatusBoard::new(&status_path, "bench_report", rounds, 1);
    for round in 0..rounds {
        let item = format!("round {}/{rounds}", round + 1);
        board.started(0, &item);
        calibration = calibration.max(calibration_window());
        for (i, setup) in setups.iter().enumerate() {
            for (j, traced) in [false, true].into_iter().enumerate() {
                let (wall_ns, events, phases) =
                    time_window(setup, traced, &p, Scheduler::default(), LOAD, false);
                let slot = &mut best[i * 2 + j];
                if slot.as_ref().is_none_or(|(w, _, _)| wall_ns < *w) {
                    *slot = Some((wall_ns, events, phases));
                }
            }
        }
        for (k, &(i, load, sched, faulted)) in cmp_jobs.iter().enumerate() {
            let (wall_ns, events, phases) =
                time_window(&setups[i], false, &p, sched, load, faulted);
            let slot = &mut best[n_matrix + k];
            if slot.as_ref().is_none_or(|(w, _, _)| wall_ns < *w) {
                *slot = Some((wall_ns, events, phases));
            }
        }
        board.done(0, &item);
        rounds_progress.step("round complete");
    }
    rounds_progress.finish("");
    board.finish("done");

    let mut cells = Vec::with_capacity(n_cells);
    for (i, s) in setups.iter().enumerate() {
        for (j, traced) in [false, true].into_iter().enumerate() {
            let (wall_ns, events, phases) = best[i * 2 + j].take().expect("every cell ran");
            let wall_s = wall_ns as f64 / 1e9;
            cells.push(BenchCell {
                topo: s.topo_key.to_string(),
                scheme: s.scheme.label().to_string(),
                traced,
                scheduler: Scheduler::default().label().to_string(),
                load: LOAD,
                threads: None,
                faulted: false,
                cycles: p.measure,
                wall_ns,
                cycles_per_sec: p.measure as f64 / wall_s,
                events_per_sec: events as f64 / wall_s,
                phases,
            });
        }
    }
    for (k, &(i, load, sched, faulted)) in cmp_jobs.iter().enumerate() {
        let (wall_ns, events, phases) = best[n_matrix + k].take().expect("every cell ran");
        let wall_s = wall_ns as f64 / 1e9;
        cells.push(BenchCell {
            topo: setups[i].topo_key.to_string(),
            scheme: setups[i].scheme.label().to_string(),
            traced: false,
            scheduler: sched.label().to_string(),
            load,
            threads: sched.parallel_threads(),
            faulted,
            cycles: p.measure,
            wall_ns,
            cycles_per_sec: p.measure as f64 / wall_s,
            events_per_sec: events as f64 / wall_s,
            phases,
        });
    }
    let report = BenchReport {
        schema: BENCH_SCHEMA.to_string(),
        mode: p.mode.to_string(),
        calibration_cycles_per_sec: calibration,
        peak_rss_kb: peak_rss_kb().unwrap_or(0),
        cells,
    };
    print!("{}", report.to_table());

    // Observer overhead summary: traced vs plain, per matrix cell.
    for pair in report.cells[..n_matrix].chunks(2) {
        if let [plain, traced] = pair {
            println!(
                "  overhead {:<22} {:>6.1}%  ({} journal+counter events/s)",
                format!("{}/{}", plain.topo, plain.scheme),
                (plain.cycles_per_sec / traced.cycles_per_sec - 1.0) * 100.0,
                traced.events_per_sec as u64
            );
        }
    }

    // Scheduler summary: each contender's speedup over the scan reference
    // at its comparison points (cmp_jobs emits scan first per group).
    let sched_cells = &report.cells[n_matrix..n_matrix + n_schedcmp];
    println!("  scheduler vs scan (itb-rr):");
    for scan in sched_cells.iter().filter(|c| c.scheduler == "scan") {
        for other in sched_cells
            .iter()
            .filter(|c| c.topo == scan.topo && c.load == scan.load && c.scheduler != "scan")
        {
            println!(
                "    {:<8} load {:<7} {:<10} {:>+8.1}%  ({:.0} -> {:.0} cycles/s)",
                scan.topo,
                scan.load,
                other.scheduler,
                (other.cycles_per_sec / scan.cycles_per_sec - 1.0) * 100.0,
                scan.cycles_per_sec,
                other.cycles_per_sec
            );
        }
    }

    // The event-driven driver exists to win at low load: it must at
    // least match the active set's cycles/sec there (the expected ratio
    // is far above 1x; see DESIGN.md §4g and EXPERIMENTS.md).
    let mut event_ok = true;
    println!("  event-driven vs active-set (itb-rr, low load):");
    for ev in sched_cells
        .iter()
        .filter(|c| c.scheduler == "event" && c.load == LOW_LOAD)
    {
        let active = sched_cells
            .iter()
            .find(|c| c.topo == ev.topo && c.load == ev.load && c.scheduler == "active-set")
            .expect("active-set low-load counterpart");
        let ratio = ev.cycles_per_sec / active.cycles_per_sec;
        println!(
            "    {:<8} {:>6.2}x  ({:.0} -> {:.0} cycles/s)",
            ev.topo, ratio, active.cycles_per_sec, ev.cycles_per_sec
        );
        if ratio < 1.0 {
            eprintln!(
                "FAIL: event-driven low-load throughput {ratio:.2}x < 1.0x of active-set ({})",
                ev.topo
            );
            event_ok = false;
        }
    }
    if !event_ok {
        return ExitCode::FAILURE;
    }

    // Thread-scaling summary: the parallel engine against the saturated
    // torus active-set baseline measured just above.
    let sat_active = report.cells[n_matrix..n_matrix + n_schedcmp]
        .iter()
        .find(|c| c.topo == "torus" && c.scheduler == "active-set" && c.load == SAT_LOAD)
        .expect("saturated torus active-set cell")
        .cycles_per_sec;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("  parallel engine vs active-set (torus itb-rr, saturated, {cores} core(s)):");
    let mut par4_speedup = None;
    let threadscale = n_matrix + n_schedcmp;
    for c in &report.cells[threadscale..threadscale + n_threadscale] {
        let speedup = c.cycles_per_sec / sat_active;
        if c.threads == Some(4) {
            par4_speedup = Some(speedup);
        }
        println!(
            "    threads {:<2} {:>6.2}x  ({:.0} cycles/s)",
            c.threads.unwrap_or(0),
            speedup,
            c.cycles_per_sec
        );
    }
    // The ≥2x target only means anything when the host can actually run
    // 4 executors; on smaller runners the column still guards overhead
    // (via --check) but the scaling claim is untestable.
    if cores >= 4 {
        let s = par4_speedup.expect("4-thread cell ran");
        if s < 2.0 {
            eprintln!("FAIL: parallel(4) speedup {s:.2}x < 2.0x on a {cores}-core host");
            return ExitCode::FAILURE;
        }
    }

    // Fault-armed thread-scaling: the faulted active-set cell leads its
    // column, then the faulted parallel cells. The parallel engine runs
    // fault plans natively; at 4 executors it must keep a ≥1.5x speedup
    // over the faulted active set (slightly below the fault-free 2x bar:
    // the per-cycle fault phase and the loss replay are serial sections).
    let faulted_col = &report.cells[threadscale + n_threadscale..];
    let sat_active_faulted = faulted_col
        .iter()
        .find(|c| c.scheduler == "active-set" && c.faulted)
        .expect("faulted saturated torus active-set cell")
        .cycles_per_sec;
    println!("  parallel engine vs active-set (torus itb-rr, saturated, fault-armed):");
    let mut par4_faulted_speedup = None;
    for c in faulted_col.iter().filter(|c| c.scheduler == "parallel") {
        let speedup = c.cycles_per_sec / sat_active_faulted;
        if c.threads == Some(4) {
            par4_faulted_speedup = Some(speedup);
        }
        println!(
            "    threads {:<2} {:>6.2}x  ({:.0} cycles/s)",
            c.threads.unwrap_or(0),
            speedup,
            c.cycles_per_sec
        );
    }
    if cores >= 4 {
        let s = par4_faulted_speedup.expect("faulted 4-thread cell ran");
        if s < 1.5 {
            eprintln!(
                "FAIL: fault-armed parallel(4) speedup {s:.2}x < 1.5x on a {cores}-core host"
            );
            return ExitCode::FAILURE;
        }
    }

    match std::fs::write(&out_path, report.to_json()) {
        Ok(()) => println!("[saved {out_path}]"),
        Err(e) => {
            eprintln!("could not save {out_path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(base_path) = baseline_path {
        let base = match std::fs::read_to_string(&base_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("could not read baseline {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match check_against(&report, &base, threshold) {
            Ok(lines) => {
                let mut failed = false;
                for l in &lines {
                    println!(
                        "  check {:<30} {:>6.1}% of baseline{}",
                        l.key,
                        l.ratio * 100.0,
                        if l.regressed {
                            "  ** REGRESSION **"
                        } else {
                            ""
                        }
                    );
                    failed |= l.regressed;
                }
                if lines.is_empty() {
                    eprintln!("warning: no comparable cells in baseline {base_path}");
                }
                if failed {
                    eprintln!(
                        "FAIL: at least one cell regressed more than {:.0}% \
                         (calibrated against machine speed)",
                        threshold * 100.0
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "check passed: no cell slower than {:.0}% of baseline",
                    (1.0 - threshold) * 100.0
                );
            }
            Err(e) => {
                eprintln!("could not check against {base_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
