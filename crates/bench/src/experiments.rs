//! One function per table and figure of the paper's evaluation section.
//!
//! Each function runs the corresponding experiment and returns structured
//! results; the `bin/` wrappers print them and save JSON. Quick mode keeps
//! the same workloads and sweep shapes with shorter measurement windows.

use rand::SeedableRng;
use regnet_core::{RouteDb, RouteDbConfig, RoutingScheme};
use regnet_metrics::{Curve, TimeSeries, UtilizationSummary};
use regnet_netsim::experiment::RunOptions;
use regnet_netsim::trace::ChannelUtilSeries;
use regnet_netsim::ChannelDesc;
use regnet_topology::{HostId, NodeId, SwitchId};
use regnet_traffic::{random_hotspots, PatternSpec};
use serde::Serialize;

use crate::{experiment, load_ladder, table_search, threads, Mode, Topo};

/// A latency-vs-traffic figure: one curve per routing scheme.
#[derive(Debug, Serialize)]
pub struct FigureResult {
    pub name: String,
    pub curves: Vec<Curve>,
}

impl FigureResult {
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.name);
        for c in &self.curves {
            out.push_str(&c.to_table());
            out.push_str(&format!(
                "  -> throughput (max accepted): {:.4} flits/ns/switch\n\n",
                c.throughput()
            ));
        }
        out
    }
}

/// A hotspot-throughput table (Tables 1–3 of the paper).
#[derive(Debug, Serialize)]
pub struct TableResult {
    pub name: String,
    /// Column labels after the first ("Hotspot") column.
    pub header: Vec<String>,
    /// One row per hotspot location: (label, one value per column).
    pub rows: Vec<(String, Vec<f64>)>,
}

impl TableResult {
    /// Column averages (the paper's "Avg" row).
    pub fn averages(&self) -> Vec<f64> {
        let cols = self.header.len();
        let mut sums = vec![0.0; cols];
        for (_, vals) in &self.rows {
            for (s, v) in sums.iter_mut().zip(vals) {
                *s += v;
            }
        }
        let n = self.rows.len().max(1) as f64;
        sums.iter().map(|s| s / n).collect()
    }

    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\nHotspot  ", self.name);
        for h in &self.header {
            out.push_str(&format!("{h:>10}"));
        }
        out.push('\n');
        for (label, vals) in &self.rows {
            out.push_str(&format!("{label:<9}"));
            for v in vals {
                out.push_str(&format!("{v:>10.4}"));
            }
            out.push('\n');
        }
        out.push_str("Avg      ");
        for v in self.averages() {
            out.push_str(&format!("{v:>10.4}"));
        }
        out.push('\n');
        out
    }
}

/// A link-utilization experiment (Figures 8, 9, 11): labelled snapshots.
#[derive(Debug, Serialize)]
pub struct UtilSnapshot {
    pub label: String,
    pub offered: f64,
    pub summary: UtilizationSummary,
    pub descs: Vec<ChannelDesc>,
    /// Per-link utilization over time (fractions per sampling interval),
    /// recorded by the `channel_util_interval` trace observer.
    pub util_series: Option<TimeSeries>,
}

#[derive(Debug, Serialize)]
pub struct UtilReport {
    pub name: String,
    pub snapshots: Vec<UtilSnapshot>,
}

impl UtilReport {
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.name);
        for s in &self.snapshots {
            out.push_str(&format!(
                "\n-- {} @ {:.4} flits/ns/switch --\n",
                s.label, s.offered
            ));
            out.push_str(&format!(
                "links: {}  util min {:.1}% max {:.1}% mean {:.1}%  imbalance (cv) {:.2}\n",
                s.summary.per_channel.len(),
                s.summary.min() * 100.0,
                s.summary.max() * 100.0,
                s.summary.mean() * 100.0,
                s.summary.imbalance()
            ));
            out.push_str(&format!(
                "fraction of links under 10%%: {:.0}%  under 12%%: {:.0}%  under 30%%: {:.0}%\n",
                s.summary.fraction_below(0.10) * 100.0,
                s.summary.fraction_below(0.12) * 100.0,
                s.summary.fraction_below(0.30) * 100.0
            ));
            out.push_str(&s.summary.to_histogram_table());
        }
        out
    }
}

/// Offered-load ladder for a (topology, pattern family) cell, bracketing
/// every scheme's saturation point.
fn ladder_for(topo: Topo, pattern: &PatternSpec, mode: Mode) -> Vec<f64> {
    let n = match mode {
        Mode::Quick => 8,
        Mode::Full => 12,
    };
    let (lo, hi) = match (topo, pattern) {
        (Topo::Torus, PatternSpec::Local { .. }) => (0.01, 0.22),
        (Topo::Express, PatternSpec::Local { .. }) => (0.01, 0.30),
        (Topo::Cplant, PatternSpec::Local { .. }) => (0.01, 0.25),
        (Topo::Torus, _) => (0.003, 0.045),
        (Topo::Express, _) => (0.008, 0.16),
        (Topo::Cplant, _) => (0.006, 0.13),
    };
    load_ladder(lo, hi, n)
}

fn sweep_schemes(
    name: String,
    topo: Topo,
    pattern: PatternSpec,
    mode: Mode,
    seed: u64,
) -> FigureResult {
    let loads = ladder_for(topo, &pattern, mode);
    let opts = mode.run_options(seed);
    let curves = RoutingScheme::all()
        .into_iter()
        .map(|scheme| {
            let exp = experiment(topo.build(), scheme, pattern);
            exp.sweep(&loads, &opts, threads())
        })
        .collect();
    FigureResult { name, curves }
}

/// **Figure 7** — uniform traffic, latency vs accepted traffic.
/// 7a: 2-D torus; 7b: torus + express channels; 7c: CPLANT.
pub fn fig07(topo: Topo, mode: Mode) -> FigureResult {
    sweep_schemes(
        format!("Figure 7 ({}) — uniform", topo.label()),
        topo,
        PatternSpec::Uniform,
        mode,
        7,
    )
}

/// **Figure 10** — bit-reversal traffic (torus and express only; CPLANT's
/// 400 hosts are not a power of two, as the paper notes).
pub fn fig10(topo: Topo, mode: Mode) -> FigureResult {
    assert!(topo != Topo::Cplant, "bit-reversal needs 2^k hosts");
    sweep_schemes(
        format!("Figure 10 ({}) — bit-reversal", topo.label()),
        topo,
        PatternSpec::BitReversal,
        mode,
        10,
    )
}

/// **Figure 12** — local traffic (destinations at most 3 switches away).
pub fn fig12(topo: Topo, mode: Mode) -> FigureResult {
    sweep_schemes(
        format!("Figure 12 ({}) — local(3)", topo.label()),
        topo,
        PatternSpec::Local { max_switch_dist: 3 },
        mode,
        12,
    )
}

/// The paper also studies local traffic with 4-switch radius (section 4.2).
pub fn fig12_radius4(topo: Topo, mode: Mode) -> FigureResult {
    sweep_schemes(
        format!("Figure 12 variant ({}) — local(4)", topo.label()),
        topo,
        PatternSpec::Local { max_switch_dist: 4 },
        mode,
        13,
    )
}

/// Sampling interval (cycles) for the utilization time series of the
/// figure-8/9/11 runs.
fn util_trace_interval(mode: Mode) -> u64 {
    match mode {
        Mode::Quick => 5_000,
        Mode::Full => 20_000,
    }
}

fn desc_label(d: &ChannelDesc) -> String {
    let node = |n: &NodeId| match n {
        NodeId::Switch(s) => s.to_string(),
        NodeId::Host(h) => h.to_string(),
    };
    format!("{}->{}", node(&d.from), node(&d.to))
}

/// Convert raw busy-cycle buckets from the trace observer into a
/// utilization-fraction [`TimeSeries`], one named series per channel.
fn util_time_series(label: &str, descs: &[ChannelDesc], s: &ChannelUtilSeries) -> TimeSeries {
    let mut ts = TimeSeries::new(label, s.interval);
    for (d, row) in descs.iter().zip(&s.busy) {
        let values = row
            .iter()
            .map(|&b| f64::from(b) / s.interval as f64)
            .collect();
        ts.push(desc_label(d), values);
    }
    ts
}

fn util_snapshot(
    topo: Topo,
    scheme: RoutingScheme,
    pattern: PatternSpec,
    offered: f64,
    mode: Mode,
) -> UtilSnapshot {
    let exp = experiment(topo.build(), scheme, pattern);
    let mut opts = mode.run_options(8);
    opts.trace.channel_util_interval = Some(util_trace_interval(mode));
    let (summary, descs, series) = exp.link_utilization_traced(offered, &opts);
    let label = format!("{} {}", scheme.label(), pattern.label());
    let util_series = series.map(|s| util_time_series(&format!("{label} @ {offered}"), &descs, &s));
    UtilSnapshot {
        label,
        offered,
        summary,
        descs,
        util_series,
    }
}

/// **Figure 8** — link utilization in the 2-D torus under uniform traffic:
/// UP/DOWN at its saturation point (0.015), ITB-RR at the same load, and
/// ITB-RR near its own saturation (0.03).
pub fn fig08(mode: Mode) -> UtilReport {
    UtilReport {
        name: "Figure 8 — link utilization, 2-D torus, uniform".into(),
        snapshots: vec![
            util_snapshot(
                Topo::Torus,
                RoutingScheme::UpDown,
                PatternSpec::Uniform,
                0.015,
                mode,
            ),
            util_snapshot(
                Topo::Torus,
                RoutingScheme::ItbRr,
                PatternSpec::Uniform,
                0.015,
                mode,
            ),
            util_snapshot(
                Topo::Torus,
                RoutingScheme::ItbRr,
                PatternSpec::Uniform,
                0.03,
                mode,
            ),
        ],
    }
}

/// **Figure 9** — link utilization in the torus with express channels at
/// UP/DOWN's saturation point (0.066).
pub fn fig09(mode: Mode) -> UtilReport {
    UtilReport {
        name: "Figure 9 — link utilization, torus+express, uniform".into(),
        snapshots: vec![
            util_snapshot(
                Topo::Express,
                RoutingScheme::UpDown,
                PatternSpec::Uniform,
                0.066,
                mode,
            ),
            util_snapshot(
                Topo::Express,
                RoutingScheme::ItbRr,
                PatternSpec::Uniform,
                0.066,
                mode,
            ),
        ],
    }
}

/// **Figure 11** — link utilization in the torus with 10% hotspot traffic
/// at UP/DOWN's saturation point (~0.0123).
pub fn fig11(mode: Mode) -> UtilReport {
    let topo = Topo::Torus.build();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(1111);
    let hotspot = random_hotspots(&topo, 1, &mut rng)[0];
    let pattern = PatternSpec::Hotspot {
        fraction: 0.10,
        host: hotspot,
    };
    UtilReport {
        name: format!(
            "Figure 11 — link utilization, 2-D torus, 10% hotspot at {hotspot} (switch {})",
            topo.host_switch(hotspot)
        ),
        snapshots: vec![
            util_snapshot(Topo::Torus, RoutingScheme::UpDown, pattern, 0.0123, mode),
            util_snapshot(Topo::Torus, RoutingScheme::ItbRr, pattern, 0.0123, mode),
        ],
    }
}

fn hotspot_table(
    name: String,
    topo: Topo,
    fractions: &[f64],
    search_start: f64,
    mode: Mode,
) -> TableResult {
    let t = topo.build();
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xB07);
    let count = match mode {
        Mode::Quick => 3,
        Mode::Full => 10,
    };
    let hotspots = random_hotspots(&t, count, &mut rng);
    let mut header = Vec::new();
    for f in fractions {
        for scheme in RoutingScheme::all() {
            header.push(format!("{}% {}", (f * 100.0).round(), scheme.label()));
        }
    }
    // Throughput searches need less precision per point than latency curves.
    let opts = RunOptions {
        warmup_cycles: mode.run_options(0).warmup_cycles / 2,
        measure_cycles: mode.run_options(0).measure_cycles / 2,
        seed: 21,
        ..RunOptions::default()
    };
    let mut rows = Vec::new();
    for (i, &hs) in hotspots.iter().enumerate() {
        let mut vals = Vec::new();
        for &f in fractions {
            let pattern = PatternSpec::Hotspot {
                fraction: f,
                host: hs,
            };
            for scheme in RoutingScheme::all() {
                let exp = experiment(topo.build(), scheme, pattern);
                vals.push(exp.find_throughput(&table_search(search_start), &opts));
            }
        }
        rows.push((format!("{} ({hs})", i + 1), vals));
    }
    TableResult { name, header, rows }
}

/// **Table 1** — throughput under hotspot traffic in the 2-D torus, for
/// 5% and 10% hotspot load, over several random hotspot locations.
pub fn table1(mode: Mode) -> TableResult {
    hotspot_table(
        "Table 1 — hotspot throughput, 2-D torus".into(),
        Topo::Torus,
        &[0.05, 0.10],
        0.004,
        mode,
    )
}

/// **Table 2** — hotspot throughput in the torus with express channels,
/// 3% and 5% hotspot load.
pub fn table2(mode: Mode) -> TableResult {
    hotspot_table(
        "Table 2 — hotspot throughput, torus+express".into(),
        Topo::Express,
        &[0.03, 0.05],
        0.01,
        mode,
    )
}

/// **Table 3** — hotspot throughput in CPLANT, 5% hotspot load.
pub fn table3(mode: Mode) -> TableResult {
    hotspot_table(
        "Table 3 — hotspot throughput, CPLANT".into(),
        Topo::Cplant,
        &[0.05],
        0.008,
        mode,
    )
}

/// Route-level statistics quoted in section 4.7.1 of the paper.
#[derive(Debug, Serialize)]
pub struct RouteStatsReport {
    pub rows: Vec<(String, regnet_core::analysis::RouteStats)>,
}

impl RouteStatsReport {
    pub fn render(&self) -> String {
        let mut out = String::from(
            "topology/scheme              minimal%   avg-dist   avg-itbs   max-itbs   alts\n",
        );
        for (label, s) in &self.rows {
            out.push_str(&format!(
                "{label:<28} {:>7.1}%   {:>8.3}   {:>8.3}   {:>8}   {:>4.1}\n",
                s.minimal_fraction * 100.0,
                s.avg_distance,
                s.avg_itbs,
                s.max_itbs,
                s.avg_alternatives
            ));
        }
        out
    }
}

/// Compute route statistics for every (topology, scheme) cell.
pub fn route_stats() -> RouteStatsReport {
    let mut rows = Vec::new();
    for topo in [Topo::Torus, Topo::Express, Topo::Cplant] {
        let t = topo.build();
        for scheme in RoutingScheme::all() {
            let db = RouteDb::build(&t, scheme, &RouteDbConfig::default());
            let stats = regnet_core::analysis::RouteStats::compute(&t, &db);
            rows.push((format!("{} / {}", t.name(), scheme.label()), stats));
        }
    }
    RouteStatsReport { rows }
}

/// Render an 8×8 per-switch utilization map (average utilization of the
/// switch-link channels leaving each switch) for torus-shaped topologies —
/// the textual analogue of the paper's greyscale link maps.
pub fn switch_grid_map(snapshot: &UtilSnapshot, cols: usize, n_switches: usize) -> String {
    let mut sum = vec![0.0f64; n_switches];
    let mut cnt = vec![0usize; n_switches];
    for (d, &u) in snapshot.descs.iter().zip(&snapshot.summary.per_channel) {
        if let NodeId::Switch(SwitchId(s)) = d.from {
            sum[s as usize] += u;
            cnt[s as usize] += 1;
        }
    }
    let mut out = format!(
        "{} @ {:.4} (mean outgoing util %)\n",
        snapshot.label, snapshot.offered
    );
    for s in 0..n_switches {
        let u = if cnt[s] > 0 {
            sum[s] / cnt[s] as f64
        } else {
            0.0
        };
        out.push_str(&format!("{:>5.1}", u * 100.0));
        if (s + 1) % cols == 0 {
            out.push('\n');
        }
    }
    out
}

/// Locate a host id's switch in the paper torus (row, col) — helper for
/// hotspot map rendering.
pub fn torus_coords(topo: &regnet_topology::Topology, host: HostId, cols: usize) -> (usize, usize) {
    let s = topo.host_switch(host).idx();
    (s / cols, s % cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_bracket_paper_saturation_points() {
        // The ladder must span each scheme's expected knee.
        let l = ladder_for(Topo::Torus, &PatternSpec::Uniform, Mode::Quick);
        assert!(*l.first().unwrap() < 0.01);
        assert!(*l.last().unwrap() > 0.035);
        let l = ladder_for(Topo::Express, &PatternSpec::Uniform, Mode::Quick);
        assert!(*l.last().unwrap() > 0.12);
        let l = ladder_for(
            Topo::Torus,
            &PatternSpec::Local { max_switch_dist: 3 },
            Mode::Quick,
        );
        assert!(*l.last().unwrap() > 0.13);
    }

    #[test]
    fn table_render_has_average_row() {
        let t = TableResult {
            name: "t".into(),
            header: vec!["a".into(), "b".into()],
            rows: vec![("1".into(), vec![1.0, 2.0]), ("2".into(), vec![3.0, 4.0])],
        };
        assert_eq!(t.averages(), vec![2.0, 3.0]);
        let r = t.render();
        assert!(r.contains("Avg"));
        assert!(r.contains("2.0000"));
    }

    #[test]
    fn util_report_and_grid_render() {
        use regnet_metrics::UtilizationSummary;
        use regnet_topology::{HostId, NodeId, SwitchId};
        let snap = UtilSnapshot {
            label: "UP/DOWN uniform".into(),
            offered: 0.015,
            summary: UtilizationSummary::from_busy_cycles(&[50, 10, 0], 100),
            descs: vec![
                ChannelDesc {
                    from: NodeId::Switch(SwitchId(0)),
                    to: NodeId::Switch(SwitchId(1)),
                    switch_link: true,
                },
                ChannelDesc {
                    from: NodeId::Switch(SwitchId(1)),
                    to: NodeId::Switch(SwitchId(0)),
                    switch_link: true,
                },
                ChannelDesc {
                    from: NodeId::Host(HostId(0)),
                    to: NodeId::Switch(SwitchId(0)),
                    switch_link: false,
                },
            ],
            util_series: None,
        };
        let report = UtilReport {
            name: "Figure X".into(),
            snapshots: vec![snap],
        };
        let text = report.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("max 50.0%"));
        let grid = switch_grid_map(&report.snapshots[0], 2, 2);
        // Switch 0 has one outgoing switch channel at 50%; switch 1 at 10%.
        assert!(grid.contains("50.0"));
        assert!(grid.contains("10.0"));
    }

    #[test]
    fn route_stats_report_renders() {
        // Only checks the formatting path; the statistics themselves are
        // asserted in regnet-core's tests.
        let report = RouteStatsReport {
            rows: vec![(
                "x".into(),
                regnet_core::analysis::RouteStats {
                    minimal_fraction: 0.8,
                    avg_distance: 4.5,
                    avg_itbs: 0.4,
                    max_itbs: 2,
                    avg_alternatives: 5.0,
                },
            )],
        };
        assert!(report.render().contains("80.0%"));
    }
}
