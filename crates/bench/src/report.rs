//! Self-profiling bench pipeline: the data model behind `bench_report`.
//!
//! A [`BenchReport`] is a fixed matrix of engine-throughput measurements
//! (topology × routing scheme × observers on/off) plus a machine-speed
//! calibration scalar and the process peak RSS. The report is written as
//! JSON (`BENCH_netsim.json` at the repository root is the committed
//! baseline) and [`check_against`] compares a fresh run to a baseline,
//! failing on relative slowdowns beyond a threshold.
//!
//! Cross-machine comparison: raw cycles/sec depends on the host, so every
//! report carries `calibration_cycles_per_sec` — the throughput of one
//! tiny fixed workload measured by the same binary in the same process.
//! The check compares *normalized* throughput (cell ÷ calibration), which
//! cancels first-order machine-speed differences; only slowdowns fail,
//! speedups are reported but never an error.

use regnet_metrics::json::JsonValue;
use regnet_netsim::PhaseProfile;
use serde::{Deserialize, Serialize};

/// Schema tag written into every report, bumped on layout changes.
/// v2 added the `scheduler` and `load` cell fields (cycle-loop scheduler
/// comparison columns); v3 added the optional `threads` cell field (the
/// shard-parallel engine's thread-scaling column); v4 added the
/// event-driven driver's low-load comparison cells (`scheduler: "event"`)
/// — new rows, not a layout change; v5 added the `faulted` cell field and
/// the fault-armed thread-scaling rows (the parallel engine runs faulted
/// plans natively instead of downgrading to the active set).
/// [`check_against`] matches cells by their fields, so it still accepts
/// v1–v4 baselines (a v4 baseline simply carries no faulted rows to
/// compare).
pub const BENCH_SCHEMA: &str = "regnet-bench-v5";

/// Default relative-slowdown threshold for [`check_against`].
pub const DEFAULT_THRESHOLD: f64 = 0.15;

/// One cell of the bench matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchCell {
    /// Topology key (`torus` / `express` / `cplant`).
    pub topo: String,
    /// Routing-scheme label.
    pub scheme: String,
    /// Whether the observers (counters + event journal + profiler) were on.
    pub traced: bool,
    /// Cycle-loop scheduler label (`scan` / `active-set` / `event` /
    /// `parallel`).
    pub scheduler: String,
    /// Offered load the cell was measured at (flits/ns/switch).
    pub load: f64,
    /// Shard/thread count for the `parallel` scheduler; `None` (JSON
    /// `null`) for the sequential engines. Pre-v3 baselines lack the
    /// field entirely — [`check_against`] treats both the same way.
    pub threads: Option<usize>,
    /// Whether a fault plan was armed for the window (the fault phase and
    /// the deferred-loss replay run every cycle). Pre-v5 baselines lack
    /// the field; their cells match the fault-free rows, which come first
    /// in document order ([`check_against`] reads baselines through the
    /// permissive `JsonValue` parser, never through this derive).
    pub faulted: bool,
    /// Measured cycles (the measurement window, warmup excluded).
    pub cycles: u64,
    /// Wall time of the measurement window, ns.
    pub wall_ns: u64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Counter events per wall-clock second (0 when untraced).
    pub events_per_sec: f64,
    /// Per-phase wall-time breakdown (empty when untraced).
    pub phases: Vec<PhaseProfile>,
}

impl BenchCell {
    /// Stable identity of a cell across runs.
    pub fn key(&self) -> String {
        let sched = match self.threads {
            Some(t) => format!("{}:{t}", self.scheduler),
            None => self.scheduler.clone(),
        };
        format!(
            "{}/{}/{}/{}{}@{}",
            self.topo,
            self.scheme,
            sched,
            if self.traced { "traced" } else { "plain" },
            if self.faulted { "+faults" } else { "" },
            self.load
        )
    }
}

/// A full bench run: matrix cells + calibration + footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// Layout tag, always [`BENCH_SCHEMA`].
    pub schema: String,
    /// `smoke` (scaled-down topologies) or `full` (paper topologies).
    pub mode: String,
    /// Throughput of the fixed calibration workload on this machine.
    pub calibration_cycles_per_sec: f64,
    /// Process peak RSS after the matrix, KiB (0 when unavailable).
    pub peak_rss_kb: u64,
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize bench report")
    }

    /// Compact terminal table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "bench report ({}): calibration {:.0} cycles/s, peak RSS {} KiB\n",
            self.mode, self.calibration_cycles_per_sec, self.peak_rss_kb
        );
        for c in &self.cells {
            out.push_str(&format!(
                "  {:<42} {:>12.0} cycles/s  {:>12.0} events/s\n",
                c.key(),
                c.cycles_per_sec,
                c.events_per_sec
            ));
        }
        out
    }
}

/// What [`check_against`] decided for one baseline cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckLine {
    pub key: String,
    /// Normalized current ÷ normalized baseline (1.0 = same speed,
    /// 0.8 = 20% slower).
    pub ratio: f64,
    pub regressed: bool,
}

/// Compare `current` to a baseline report previously written by
/// [`BenchReport::to_json`]. Returns one [`CheckLine`] per cell present in
/// both reports; `Err` carries a human-readable reason when the baseline
/// cannot be parsed. A cell regresses when its normalized throughput falls
/// below `1 - threshold` of the baseline's.
pub fn check_against(
    current: &BenchReport,
    baseline_json: &str,
    threshold: f64,
) -> Result<Vec<CheckLine>, String> {
    let root = JsonValue::parse(baseline_json).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let base_cal = root
        .get("calibration_cycles_per_sec")
        .and_then(|v| v.as_f64())
        .ok_or("baseline missing calibration_cycles_per_sec")?;
    if base_cal <= 0.0 {
        return Err("baseline calibration must be positive".to_string());
    }
    if current.calibration_cycles_per_sec <= 0.0 {
        return Err("current calibration must be positive".to_string());
    }
    let cells = root
        .get("cells")
        .and_then(|v| v.as_array())
        .ok_or("baseline missing cells array")?;
    let mut lines = Vec::new();
    for cell in cells {
        let (topo, scheme, traced, base_cps) = match (
            cell.get("topo").and_then(|v| v.as_str()),
            cell.get("scheme").and_then(|v| v.as_str()),
            cell.get("traced").and_then(|v| v.as_bool()),
            cell.get("cycles_per_sec").and_then(|v| v.as_f64()),
        ) {
            (Some(t), Some(s), Some(tr), Some(c)) => (t, s, tr, c),
            _ => return Err("baseline cell missing topo/scheme/traced/cycles_per_sec".into()),
        };
        // Pre-v2 baselines carry no scheduler/load fields, pre-v3 no
        // threads field; such cells match on the fields they do carry —
        // document order puts the default-matrix cells first, so they win.
        let base_sched = cell.get("scheduler").and_then(|v| v.as_str());
        let base_load = cell.get("load").and_then(|v| v.as_f64());
        let base_threads = cell
            .get("threads")
            .and_then(|v| v.as_f64())
            .map(|t| t as usize);
        let base_faulted = cell.get("faulted").and_then(|v| v.as_bool());
        let Some(cur) = current.cells.iter().find(|c| {
            c.topo == topo
                && c.scheme == scheme
                && c.traced == traced
                && base_sched.is_none_or(|s| c.scheduler == s)
                && base_load.is_none_or(|l| c.load == l)
                && base_threads.is_none_or(|t| c.threads == Some(t))
                && base_faulted.is_none_or(|f| c.faulted == f)
        }) else {
            continue; // baseline cell not in this run (e.g. different mode)
        };
        if base_cps <= 0.0 {
            continue;
        }
        let base_norm = base_cps / base_cal;
        let cur_norm = cur.cycles_per_sec / current.calibration_cycles_per_sec;
        let ratio = cur_norm / base_norm;
        lines.push(CheckLine {
            key: cur.key(),
            ratio,
            regressed: ratio < 1.0 - threshold,
        });
    }
    Ok(lines)
}

/// Peak resident-set size of this process in KiB. Kept as a re-export so
/// bench callers don't need a direct `regnet_metrics` import; the probe
/// itself lives in `regnet_metrics::sys` where the campaign layer shares
/// it.
pub use regnet_metrics::peak_rss_kb;

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(scheduler: &str, load: f64, cps: f64) -> BenchCell {
        BenchCell {
            topo: "torus".to_string(),
            scheme: "itb-rr".to_string(),
            traced: false,
            scheduler: scheduler.to_string(),
            load,
            threads: None,
            faulted: false,
            cycles: 20_000,
            wall_ns: 1_000_000,
            cycles_per_sec: cps,
            events_per_sec: 0.0,
            phases: Vec::new(),
        }
    }

    fn par_cell(threads: usize, cps: f64) -> BenchCell {
        BenchCell {
            threads: Some(threads),
            ..cell("parallel", 0.05, cps)
        }
    }

    fn report(cal: f64, cps: f64) -> BenchReport {
        BenchReport {
            schema: BENCH_SCHEMA.to_string(),
            mode: "smoke".to_string(),
            calibration_cycles_per_sec: cal,
            peak_rss_kb: 1234,
            cells: vec![cell("active-set", 0.01, cps)],
        }
    }

    #[test]
    fn check_passes_same_speed_and_fails_slowdown() {
        let base = report(1e6, 5e5).to_json();
        // Same normalized speed on a machine twice as fast: passes.
        let ok = check_against(&report(2e6, 1e6), &base, 0.15).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(!ok[0].regressed, "ratio {:.3}", ok[0].ratio);
        assert!((ok[0].ratio - 1.0).abs() < 1e-9);
        // 30% normalized slowdown: fails at the 15% threshold.
        let slow = check_against(&report(1e6, 3.5e5), &base, 0.15).unwrap();
        assert!(slow[0].regressed);
        // Speedup never fails.
        let fast = check_against(&report(1e6, 9e5), &base, 0.15).unwrap();
        assert!(!fast[0].regressed);
    }

    #[test]
    fn check_roundtrips_through_own_json() {
        let r = report(1e6, 5e5);
        let lines = check_against(&r, &r.to_json(), 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].regressed);
        assert!((lines[0].ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn check_rejects_garbage_baseline() {
        assert!(check_against(&report(1e6, 5e5), "not json", 0.15).is_err());
        assert!(check_against(&report(1e6, 5e5), "{}", 0.15).is_err());
    }

    #[test]
    fn scheduler_and_load_disambiguate_cells() {
        // Same topo/scheme/traced four ways: a v2 baseline must compare
        // each variant against its own counterpart, not the first match.
        let mut base = report(1e6, 0.0);
        base.cells = vec![
            cell("scan", 0.0005, 1e5),
            cell("active-set", 0.0005, 4e5),
            cell("scan", 0.01, 2e5),
        ];
        let mut cur = base.clone();
        // The scan low-load cell regresses 50%; the others hold steady.
        cur.cells[0].cycles_per_sec = 5e4;
        let lines = check_against(&cur, &base.to_json(), 0.15).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].regressed, "{lines:?}");
        assert!(!lines[1].regressed && !lines[2].regressed, "{lines:?}");
        assert!(lines[0].key.contains("scan"), "{}", lines[0].key);
        assert!(lines[0].key.ends_with("@0.0005"), "{}", lines[0].key);
    }

    #[test]
    fn legacy_baseline_without_scheduler_still_checks() {
        // A pre-v2 baseline cell (no scheduler/load members) matches the
        // first current cell with the legacy identity.
        let legacy = r#"{
            "calibration_cycles_per_sec": 1e6,
            "cells": [{"topo": "torus", "scheme": "itb-rr",
                       "traced": false, "cycles_per_sec": 5e5}]
        }"#;
        let lines = check_against(&report(1e6, 5e5), legacy, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].regressed);
    }

    #[test]
    fn threads_disambiguate_parallel_cells() {
        // Three parallel cells differing only in thread count: each must
        // check against its own counterpart, and the key shows the count.
        let mut base = report(1e6, 0.0);
        base.cells = vec![par_cell(1, 1e5), par_cell(2, 2e5), par_cell(4, 4e5)];
        let mut cur = base.clone();
        cur.cells[2].cycles_per_sec = 1e5; // the 4-thread cell regresses 75%
        let lines = check_against(&cur, &base.to_json(), 0.15).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(!lines[0].regressed && !lines[1].regressed, "{lines:?}");
        assert!(lines[2].regressed, "{lines:?}");
        assert!(lines[2].key.contains("parallel:4"), "{}", lines[2].key);
    }

    #[test]
    fn v2_baseline_without_threads_still_checks() {
        // A v2 baseline cell (scheduler/load but no threads member) must
        // match the sequential cell, not a parallel one with the same
        // topo/scheme/load.
        let v2 = r#"{
            "calibration_cycles_per_sec": 1e6,
            "cells": [{"topo": "torus", "scheme": "itb-rr", "traced": false,
                       "scheduler": "active-set", "load": 0.05,
                       "cycles_per_sec": 5e5}]
        }"#;
        let mut cur = report(1e6, 0.0);
        cur.cells = vec![
            BenchCell {
                load: 0.05,
                ..cell("active-set", 0.05, 5e5)
            },
            par_cell(4, 1e3),
        ];
        let lines = check_against(&cur, v2, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].regressed, "{lines:?}");
        assert!(lines[0].key.contains("active-set"), "{}", lines[0].key);
    }

    #[test]
    fn faulted_disambiguates_cells() {
        // A fault-armed cell and its fault-free twin share every other
        // identity field; each must check against its own counterpart and
        // the key must show the difference.
        let mut base = report(1e6, 0.0);
        base.cells = vec![
            par_cell(4, 4e5),
            BenchCell {
                faulted: true,
                ..par_cell(4, 3e5)
            },
        ];
        let mut cur = base.clone();
        cur.cells[1].cycles_per_sec = 1e5; // only the faulted cell regresses
        let lines = check_against(&cur, &base.to_json(), 0.15).unwrap();
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].regressed, "{lines:?}");
        assert!(lines[1].regressed, "{lines:?}");
        assert!(lines[1].key.contains("+faults"), "{}", lines[1].key);
    }

    #[test]
    fn v4_baseline_without_faulted_still_checks() {
        // A v4 baseline cell (no faulted member) must match the
        // fault-free cell, which a v5 report lists first.
        let v4 = r#"{
            "calibration_cycles_per_sec": 1e6,
            "cells": [{"topo": "torus", "scheme": "itb-rr", "traced": false,
                       "scheduler": "parallel", "load": 0.05, "threads": 4,
                       "cycles_per_sec": 5e5}]
        }"#;
        let mut cur = report(1e6, 0.0);
        cur.cells = vec![
            par_cell(4, 5e5),
            BenchCell {
                faulted: true,
                ..par_cell(4, 1e3)
            },
        ];
        let lines = check_against(&cur, v4, 0.15).unwrap();
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].regressed, "{lines:?}");
        assert!(!lines[0].key.contains("+faults"), "{}", lines[0].key);
    }

    #[test]
    fn missing_cells_are_skipped_not_errors() {
        let mut base = report(1e6, 5e5);
        base.cells[0].topo = "cplant".to_string();
        let lines = check_against(&report(1e6, 5e5), &base.to_json(), 0.15).unwrap();
        assert!(lines.is_empty());
    }

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        #[cfg(target_os = "linux")]
        assert!(peak_rss_kb().unwrap() > 0);
    }
}
