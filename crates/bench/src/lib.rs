//! Shared experiment harness for the paper-reproduction binaries and
//! Criterion benches: topology construction by name, standard sweep
//! parameters, result formatting, and JSON output.

pub mod experiments;
pub mod report;

use std::io::Write;
use std::path::Path;

use regnet_core::{RouteDbConfig, RoutingScheme};
use regnet_metrics::Curve;
use regnet_netsim::experiment::{Experiment, RunOptions, ThroughputSearch};
use regnet_netsim::SimConfig;
use regnet_topology::{gen, Topology};
use regnet_traffic::PatternSpec;

/// The three topologies of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topo {
    /// 8×8 2-D torus, 512 hosts (Figure 4).
    Torus,
    /// 8×8 2-D torus with express channels (Figure 5).
    Express,
    /// CPLANT, 50 switches / 400 hosts (Figure 6).
    Cplant,
}

impl Topo {
    pub fn build(self) -> Topology {
        match self {
            Topo::Torus => gen::torus_2d(8, 8, 8).expect("torus"),
            Topo::Express => gen::torus_2d_express(8, 8, 8).expect("express torus"),
            Topo::Cplant => gen::cplant().expect("cplant"),
        }
    }

    /// A scaled-down variant for quick runs and Criterion benches.
    pub fn build_small(self) -> Topology {
        match self {
            Topo::Torus => gen::torus_2d(4, 4, 4).expect("torus"),
            Topo::Express => gen::torus_2d_express(4, 4, 4).expect("express torus"),
            Topo::Cplant => gen::cplant().expect("cplant"),
        }
    }

    pub fn parse(s: &str) -> Option<Topo> {
        match s {
            "torus" => Some(Topo::Torus),
            "express" => Some(Topo::Express),
            "cplant" => Some(Topo::Cplant),
            _ => None,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Topo::Torus => "2-D Torus",
            Topo::Express => "2-D Torus with express channels",
            Topo::Cplant => "CPLANT",
        }
    }
}

/// Fidelity of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reduced warmup/window and fewer sweep points: minutes, same shape.
    Quick,
    /// Paper-fidelity windows: slower, tighter statistics.
    Full,
}

impl Mode {
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    pub fn run_options(self, seed: u64) -> RunOptions {
        match self {
            Mode::Quick => RunOptions {
                warmup_cycles: 60_000,
                measure_cycles: 150_000,
                seed,
                ..RunOptions::default()
            },
            Mode::Full => RunOptions {
                warmup_cycles: 200_000,
                measure_cycles: 500_000,
                seed,
                ..RunOptions::default()
            },
        }
    }
}

/// Build the standard experiment for a (topology, scheme, pattern) cell
/// with paper-default hardware parameters.
pub fn experiment(topo: Topology, scheme: RoutingScheme, pattern: PatternSpec) -> Experiment {
    Experiment::new(
        topo,
        scheme,
        RouteDbConfig::default(),
        pattern,
        SimConfig::default(),
    )
    .expect("experiment construction")
}

// Worker-thread sizing (`REGNET_THREADS`) now lives next to the parallel
// cycle engine that shares it; re-exported here so the bench binaries and
// downstream callers keep their `regnet_bench::threads()` spelling.
pub use regnet_netsim::threads::{threads, threads_from};

/// Parse every `--fail-link <id>@<cycle>` occurrence in `args` into a
/// fault plan; `None` when the flag is absent. Shared by the probe and
/// diagnose binaries.
pub fn parse_fail_links(args: &[String]) -> Option<regnet_netsim::FaultPlan> {
    let mut plan = regnet_netsim::FaultPlan::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--fail-link" {
            let spec = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--fail-link needs <id>@<cycle>"));
            let (id, cycle) = spec
                .split_once('@')
                .unwrap_or_else(|| panic!("bad --fail-link {spec:?}: expected <id>@<cycle>"));
            let id: u32 = id.parse().expect("link id must be an integer");
            let cycle: u64 = cycle.parse().expect("cycle must be an integer");
            plan.fail_link(cycle, regnet_topology::LinkId(id));
            i += 2;
        } else {
            i += 1;
        }
    }
    (!plan.is_empty()).then_some(plan)
}

/// Value following `flag` in `args` (e.g. `--events trace.json`); `None`
/// when the flag is absent. Shared by the probe/diagnose binaries.
pub fn parse_flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Dump an event journal as Chrome `trace_event` JSON to `path` (load it
/// in Perfetto / `chrome://tracing`); prints the path and event count.
pub fn save_chrome_trace(path: &str, journal: &regnet_netsim::EventJournal) {
    let trace = journal.to_chrome();
    match std::fs::write(path, trace.to_json()) {
        Ok(()) => println!(
            "[saved {path}: {} trace events from {} journal entries ({} evicted)]",
            trace.len(),
            journal.len(),
            journal.evicted()
        ),
        Err(e) => eprintln!("could not save {path}: {e}"),
    }
}

/// Geometric load ladder between `lo` and `hi` (inclusive), `n` points.
pub fn load_ladder(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2 && hi > lo && lo > 0.0);
    let ratio = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * ratio.powi(i as i32)).collect()
}

/// Standard throughput search for the hotspot tables.
pub fn table_search(start: f64) -> ThroughputSearch {
    ThroughputSearch {
        start,
        growth: 1.3,
        saturated_points: 2,
        ratio: 0.92,
        max_points: 20,
    }
}

/// Write curves to `target/experiments/<name>.json` (machine-readable) and
/// as gnuplot-ready `.dat` files plus a `<name>.gp` script; prints the
/// paths.
pub fn save_curves(name: &str, curves: &[Curve]) {
    let dir = Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            let json = serde_json::to_string_pretty(curves).expect("serialize curves");
            let _ = f.write_all(json.as_bytes());
            println!("[saved {}]", path.display());
        }
        Err(e) => eprintln!("could not save {}: {e}", path.display()),
    }
    match regnet_metrics::export::write_figure(dir, name, name, curves) {
        Ok(script) => println!("[saved {} + data]", script.display()),
        Err(e) => eprintln!("could not export plot files for {name}: {e}"),
    }
}

/// Write a telemetry time series (e.g. per-link utilization over time) to
/// `target/experiments/<name>.{json,dat,gp}`; prints the path.
pub fn save_time_series(name: &str, ts: &regnet_metrics::TimeSeries) {
    let dir = Path::new("target/experiments");
    match regnet_metrics::export::write_time_series(dir, name, ts) {
        Ok(json) => println!("[saved {} + data]", json.display()),
        Err(e) => eprintln!("could not export time series {name}: {e}"),
    }
}

/// Print a curve in the paper's presentation format.
pub fn print_curve(curve: &Curve) {
    println!("{}", curve.to_table());
    println!(
        "  -> throughput (max accepted): {:.4} flits/ns/switch\n",
        curve.throughput()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topo_parsing_and_sizes() {
        assert_eq!(Topo::parse("torus"), Some(Topo::Torus));
        assert_eq!(Topo::parse("express"), Some(Topo::Express));
        assert_eq!(Topo::parse("cplant"), Some(Topo::Cplant));
        assert_eq!(Topo::parse("nope"), None);
        assert_eq!(Topo::Torus.build().num_hosts(), 512);
        assert_eq!(Topo::Cplant.build().num_hosts(), 400);
    }

    #[test]
    fn fail_link_parsing() {
        let args: Vec<String> = [
            "x",
            "--fail-link",
            "3@5000",
            "--load",
            "0.01",
            "--fail-link",
            "7@9000",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let plan = parse_fail_links(&args).expect("two events");
        assert_eq!(plan.len(), 2);
        assert!(parse_fail_links(&["x".to_string()]).is_none());
    }

    #[test]
    fn threads_env_override() {
        // The override rules are tested through the pure function — no
        // process-global env mutation, so this cannot race with other
        // tests (or with threads()' one-shot env read).
        assert_eq!(threads_from(Some("3")), 3);
        assert_eq!(threads_from(Some(" 8 ")), 8, "whitespace is trimmed");
        assert!(
            threads_from(Some("zero")) >= 1,
            "bad override falls back to detection"
        );
        assert!(threads_from(Some("0")) >= 1, "zero threads is rejected");
        assert!(threads_from(None) >= 1);
        // The cached entry point agrees with some valid configuration.
        assert!(threads() >= 1);
    }

    #[test]
    fn ladder_monotone() {
        let l = load_ladder(0.002, 0.04, 10);
        assert_eq!(l.len(), 10);
        assert!(l.windows(2).all(|w| w[1] > w[0]));
        assert!((l[0] - 0.002).abs() < 1e-12);
        assert!((l[9] - 0.04).abs() < 1e-9);
    }
}
