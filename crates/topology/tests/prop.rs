//! Property tests of the topology substrate.

use proptest::prelude::*;

use regnet_topology::{gen, DistanceMatrix, Orientation, PortTarget, SpanningTree, SwitchId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generator invariants on random irregular networks.
    #[test]
    fn irregular_generator_invariants(
        n in 2usize..24,
        degree in 1usize..5,
        hosts in 1usize..4,
        seed in any::<u64>(),
    ) {
        let t = gen::irregular_random(n, degree, hosts, seed).unwrap();
        prop_assert_eq!(t.num_switches(), n);
        prop_assert_eq!(t.num_hosts(), n * hosts);
        // Port bookkeeping: occupied ports equal links*2 + hosts.
        let occupied: usize = t.switches().map(|s| t.occupied_ports(s)).sum();
        prop_assert_eq!(occupied, t.num_switch_links() * 2 + t.num_hosts());
        // Host id convention.
        for h in t.hosts() {
            prop_assert_eq!(t.host_switch(h).idx(), h.idx() / hosts);
        }
        // Every port target is symmetric.
        for s in t.switches() {
            for (p, target) in t.ports_of(s) {
                match target {
                    PortTarget::Switch { to, to_port, link } => {
                        match t.port_target(to, to_port) {
                            Some(PortTarget::Switch { to: back, to_port: bp, link: bl }) => {
                                prop_assert_eq!(back, s);
                                prop_assert_eq!(bp, p);
                                prop_assert_eq!(bl, link);
                            }
                            other => return Err(TestCaseError::fail(format!("asymmetric port: {other:?}"))),
                        }
                    }
                    PortTarget::Host { host, .. } => {
                        prop_assert_eq!(t.host_switch(host), s);
                    }
                }
            }
        }
    }

    /// BFS tree: levels differ by one along tree edges; every non-root has
    /// a parent at the previous level; level bounds the true distance.
    #[test]
    fn spanning_tree_invariants(n in 2usize..20, seed in any::<u64>(), root_pick in any::<u32>()) {
        let t = gen::irregular_random(n, 3, 1, seed).unwrap();
        let root = SwitchId(root_pick % n as u32);
        let tree = SpanningTree::bfs(&t, root);
        let dm = DistanceMatrix::compute(&t);
        prop_assert_eq!(tree.level(root), 0);
        for s in t.switches() {
            // BFS level == true shortest distance from the root.
            prop_assert_eq!(tree.level(s), dm.get(root, s) as u32);
            if s != root {
                let p = tree.parent(s).unwrap();
                prop_assert_eq!(tree.level(p) + 1, tree.level(s));
                prop_assert!(t.port_to(s, p).is_some());
            } else {
                prop_assert!(tree.parent(s).is_none());
            }
        }
        prop_assert!(tree.depth() <= dm.diameter() as u32);
    }

    /// Distance matrix: symmetry, triangle inequality, adjacency = 1.
    #[test]
    fn distance_matrix_is_a_metric(n in 2usize..16, seed in any::<u64>()) {
        let t = gen::irregular_random(n, 3, 1, seed).unwrap();
        let dm = DistanceMatrix::compute(&t);
        for a in t.switches() {
            prop_assert_eq!(dm.get(a, a), 0);
            for b in t.switches() {
                prop_assert_eq!(dm.get(a, b), dm.get(b, a));
                for c in t.switches() {
                    prop_assert!(dm.get(a, c) <= dm.get(a, b) + dm.get(b, c));
                }
            }
            for (_, b, _) in t.switch_neighbors(a) {
                prop_assert_eq!(dm.get(a, b), 1);
            }
        }
    }

    /// Orientation: antisymmetric on every adjacent pair; the root is
    /// "up" from all its neighbours.
    #[test]
    fn orientation_antisymmetry(n in 2usize..20, seed in any::<u64>()) {
        let t = gen::irregular_random(n, 3, 1, seed).unwrap();
        let o = Orientation::compute(&t, SwitchId(0));
        for a in t.switches() {
            for (_, b, _) in t.switch_neighbors(a) {
                prop_assert_ne!(o.is_up_move(a, b), o.is_up_move(b, a));
                prop_assert_eq!(o.up_end(a, b), o.up_end(b, a));
            }
        }
        for (_, nb, _) in t.switch_neighbors(SwitchId(0)) {
            prop_assert!(o.is_up_move(nb, SwitchId(0)));
        }
    }

    /// Tori of any size: switch count, degree and host budget hold.
    #[test]
    fn torus_shape(rows in 2usize..7, cols in 2usize..7, hosts in 1usize..4) {
        let t = gen::torus_2d(rows, cols, hosts).unwrap();
        prop_assert_eq!(t.num_switches(), rows * cols);
        prop_assert_eq!(t.num_switch_links(), rows * cols * 2);
        prop_assert_eq!(t.num_hosts(), rows * cols * hosts);
        let dm = DistanceMatrix::compute(&t);
        prop_assert_eq!(dm.diameter() as usize, rows / 2 + cols / 2);
    }
}
