//! Graphviz export: render a topology (optionally with per-switch labels,
//! e.g. up/down tree levels or utilization) as a `dot` graph.

use std::fmt::Write as _;

use crate::graph::Topology;
use crate::orientation::Orientation;

/// Render the switch graph as Graphviz `dot`. Host counts are shown inside
/// each switch node; pass an [`Orientation`] to annotate every link with an
/// arrowhead pointing at its "up" end and to rank switches by tree level.
pub fn to_dot(topo: &Topology, orient: Option<&Orientation>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// {}", topo.name());
    let directed = orient.is_some();
    let _ = writeln!(
        out,
        "{} regnet {{",
        if directed { "digraph" } else { "graph" }
    );
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for s in topo.switches() {
        let hosts = topo.hosts_of(s).len();
        let extra = match orient {
            Some(o) => format!("\\nlevel {}", o.level(s)),
            None => String::new(),
        };
        let _ = writeln!(out, "  s{} [label=\"{s}\\n{hosts} hosts{extra}\"];", s.0);
    }
    for link in topo.links() {
        if let Some((a, b)) = link.switch_ends() {
            match orient {
                Some(o) => {
                    // Draw the edge pointing "up".
                    let up = o.up_end(a, b);
                    let down = if up == a { b } else { a };
                    let _ = writeln!(out, "  s{} -> s{};", down.0, up.0);
                }
                None => {
                    let _ = writeln!(out, "  s{} -- s{};", a.0, b.0);
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::ids::SwitchId;

    #[test]
    fn undirected_dot() {
        let t = gen::torus_2d(2, 2, 1).unwrap();
        let d = to_dot(&t, None);
        assert!(d.starts_with("// torus-2x2\ngraph regnet {"));
        assert_eq!(d.matches(" -- ").count(), t.num_switch_links());
        assert!(d.contains("s0 [label=\"s0\\n1 hosts\"]"));
        assert!(d.trim_end().ends_with('}'));
    }

    #[test]
    fn oriented_dot_points_up() {
        let t = gen::torus_2d(4, 4, 1).unwrap();
        let o = Orientation::compute(&t, SwitchId(0));
        let d = to_dot(&t, Some(&o));
        assert!(d.contains("digraph"));
        assert_eq!(d.matches(" -> ").count(), t.num_switch_links());
        assert!(d.contains("level 0"));
        // Every arrow into s0 (the root), never out of it.
        assert!(d.contains("-> s0;"));
        assert!(!d.contains("s0 -> "));
    }
}
