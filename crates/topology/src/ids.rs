//! Strongly-typed identifiers for the entities of a [`Topology`](crate::Topology).

use serde::{Deserialize, Serialize};

/// Identifier of a switch. Switches are numbered densely from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Identifier of a host (workstation / NIC). Hosts are numbered densely from
/// zero across the whole network, in switch order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(pub u32);

/// Identifier of a physical (bidirectional) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A port index on a switch. Myrinet switches in the paper have 16 ports.
///
/// In a Myrinet source route, the header carries one `Port` byte per switch
/// traversed: the output port that switch must use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Port(pub u8);

/// Either endpoint type a link can attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    Switch(SwitchId),
    Host(HostId),
}

impl SwitchId {
    /// The switch id as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl HostId {
    /// The host id as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The link id as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl Port {
    /// The port number as a usable index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SwitchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl std::fmt::Display for Port {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl std::fmt::Display for LinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_index() {
        assert!(SwitchId(1) < SwitchId(2));
        assert_eq!(SwitchId(7).idx(), 7);
        assert_eq!(HostId(3).idx(), 3);
        assert_eq!(Port(15).idx(), 15);
        assert_eq!(LinkId(9).idx(), 9);
    }

    #[test]
    fn ids_display() {
        assert_eq!(SwitchId(4).to_string(), "s4");
        assert_eq!(HostId(4).to_string(), "h4");
        assert_eq!(Port(4).to_string(), "p4");
        assert_eq!(LinkId(4).to_string(), "l4");
    }
}
