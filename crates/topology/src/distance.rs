//! All-pairs shortest switch distances (BFS per switch).

use std::collections::VecDeque;

use crate::graph::Topology;
use crate::ids::SwitchId;

/// All-pairs shortest-path distances over the switch graph, measured in
/// switch-to-switch links traversed (host links not counted, matching the
/// paper's "average distance ... measured as the number of traversed
/// links").
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    dist: Vec<u16>,
}

impl DistanceMatrix {
    /// Compute the full matrix with one BFS per switch.
    pub fn compute(topo: &Topology) -> DistanceMatrix {
        let n = topo.num_switches();
        let mut dist = vec![u16::MAX; n * n];
        let mut queue = VecDeque::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(SwitchId(src as u32));
            while let Some(s) = queue.pop_front() {
                let d = row[s.idx()];
                for (_, t, _) in topo.switch_neighbors(s) {
                    if row[t.idx()] == u16::MAX {
                        row[t.idx()] = d + 1;
                        queue.push_back(t);
                    }
                }
            }
        }
        DistanceMatrix { n, dist }
    }

    /// Shortest distance between two switches, in links.
    #[inline]
    pub fn get(&self, a: SwitchId, b: SwitchId) -> u16 {
        self.dist[a.idx() * self.n + b.idx()]
    }

    /// The network diameter (longest shortest path).
    pub fn diameter(&self) -> u16 {
        self.dist.iter().copied().max().unwrap_or(0)
    }

    /// Average distance over all *ordered distinct* switch pairs.
    pub fn average(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let sum: u64 = self.dist.iter().map(|&d| d as u64).sum();
        sum as f64 / (self.n * (self.n - 1)) as f64
    }

    /// All switches at distance `<= radius` from `s` (including `s`).
    pub fn within(&self, s: SwitchId, radius: u16) -> Vec<SwitchId> {
        (0..self.n as u32)
            .map(SwitchId)
            .filter(|&t| self.get(s, t) <= radius)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn torus_distances() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        assert_eq!(dm.get(SwitchId(0), SwitchId(0)), 0);
        assert_eq!(dm.get(SwitchId(0), SwitchId(1)), 1);
        // Opposite corner of an 8x8 torus: 4+4 wrapped.
        assert_eq!(dm.get(SwitchId(0), SwitchId(36)), 8);
        assert_eq!(dm.diameter(), 8);
        // Average ring distance on an 8-ring over ordered pairs incl. self
        // is 2.0 per dimension => 4.0; excluding self pairs scales by 64/63.
        let expected = 4.0 * 64.0 / 63.0;
        assert!((dm.average() - expected).abs() < 1e-9, "{}", dm.average());
    }

    #[test]
    fn symmetric() {
        let topo = gen::cplant().unwrap();
        let dm = DistanceMatrix::compute(&topo);
        for a in topo.switches() {
            for b in topo.switches() {
                assert_eq!(dm.get(a, b), dm.get(b, a));
            }
        }
    }

    #[test]
    fn express_channels_halve_distances() {
        let plain = DistanceMatrix::compute(&gen::torus_2d(8, 8, 1).unwrap());
        let express = DistanceMatrix::compute(&gen::torus_2d_express(8, 8, 1).unwrap());
        // Paper: "average distance to message destinations is almost reduced
        // to the half" — the exact ratio on an 8x8 torus is 0.625.
        assert!(express.average() < plain.average() * 0.63);
        assert_eq!(express.diameter(), 4);
    }

    #[test]
    fn within_radius() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let near = dm.within(SwitchId(0), 1);
        assert_eq!(near.len(), 5); // self + 4 neighbours
        let all = dm.within(SwitchId(0), 8);
        assert_eq!(all.len(), 64);
    }
}
