//! Topology substrate for `regnet`.
//!
//! This crate models networks of *switches* and *hosts* interconnected by
//! *links*, in the style of Myrinet clusters: every switch has a fixed number
//! of ports, hosts hang off switch ports through their network interface
//! card, and switch-to-switch links carry the traffic between them.
//!
//! It provides:
//!
//! * [`Topology`] — an immutable, validated network graph, built through
//!   [`TopologyBuilder`].
//! * Generators for the regular topologies evaluated in the paper
//!   (ICPP 2000, Flich et al.): the 8×8 [2-D torus](gen::torus_2d), the
//!   [2-D torus with express channels](gen::torus_2d_express) and the Sandia
//!   [CPLANT](gen::cplant) network — plus meshes, hypercubes and random
//!   irregular networks used by tests and extensions.
//! * [`SpanningTree`] — the breadth-first spanning tree that underlies
//!   up\*/down\* routing.
//! * [`Orientation`] — the Autonet "up"/"down" direction assignment for
//!   every link.
//! * [`DistanceMatrix`] — all-pairs shortest switch distances.
//!
//! # Example
//!
//! ```
//! use regnet_topology::{gen, SpanningTree, Orientation, SwitchId};
//!
//! let topo = gen::torus_2d(8, 8, 8).unwrap();
//! assert_eq!(topo.num_switches(), 64);
//! assert_eq!(topo.num_hosts(), 512);
//!
//! let tree = SpanningTree::bfs(&topo, SwitchId(0));
//! let orient = Orientation::from_tree(&topo, &tree);
//! // Moving towards the root is an "up" move.
//! assert!(orient.is_up_move(SwitchId(1), SwitchId(0)));
//! ```

mod distance;
pub mod dot;
mod error;
mod graph;
mod ids;
mod orientation;
mod tree;

pub mod gen;

pub use distance::DistanceMatrix;
pub use error::TopologyError;
pub use graph::{Link, LinkEnd, PortTarget, Topology, TopologyBuilder};
pub use ids::{HostId, LinkId, NodeId, Port, SwitchId};
pub use orientation::Orientation;
pub use tree::SpanningTree;
