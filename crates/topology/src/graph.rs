//! The immutable network graph and its builder.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::ids::{HostId, LinkId, NodeId, Port, SwitchId};

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PortTarget {
    /// Another switch, reached through `link`; `to_port` is the port on the
    /// remote switch.
    Switch {
        to: SwitchId,
        to_port: Port,
        link: LinkId,
    },
    /// A host NIC, attached through `link`.
    Host { host: HostId, link: LinkId },
}

/// One end of a physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkEnd {
    Switch { sw: SwitchId, port: Port },
    Host { host: HostId },
}

impl LinkEnd {
    /// The node at this end.
    pub fn node(&self) -> NodeId {
        match *self {
            LinkEnd::Switch { sw, .. } => NodeId::Switch(sw),
            LinkEnd::Host { host } => NodeId::Host(host),
        }
    }
}

/// A physical, bidirectional link (a cable): either switch↔switch or
/// switch↔host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    pub id: LinkId,
    pub ends: [LinkEnd; 2],
}

impl Link {
    /// `true` when both ends are switches.
    pub fn is_switch_link(&self) -> bool {
        matches!(
            (self.ends[0], self.ends[1]),
            (LinkEnd::Switch { .. }, LinkEnd::Switch { .. })
        )
    }

    /// For a switch link, the two switch ids.
    pub fn switch_ends(&self) -> Option<(SwitchId, SwitchId)> {
        match (self.ends[0], self.ends[1]) {
            (LinkEnd::Switch { sw: a, .. }, LinkEnd::Switch { sw: b, .. }) => Some((a, b)),
            _ => None,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct SwitchNode {
    ports: Vec<Option<PortTarget>>,
    /// Hosts attached to this switch, in attachment order.
    hosts: Vec<HostId>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct HostNode {
    switch: SwitchId,
    /// Port on `switch` where this host is attached.
    port: Port,
    link: LinkId,
}

/// An immutable, validated network of switches, hosts and links.
///
/// Build one with a [generator](crate::gen) or with [`TopologyBuilder`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    max_ports: u8,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    links: Vec<Link>,
}

impl Topology {
    /// Human-readable topology name (e.g. `"torus-8x8"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of ports per switch.
    pub fn max_ports(&self) -> u8 {
        self.max_ports
    }

    pub fn num_switches(&self) -> usize {
        self.switches.len()
    }

    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Total number of physical links, including host links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of switch↔switch links.
    pub fn num_switch_links(&self) -> usize {
        self.links.iter().filter(|l| l.is_switch_link()).count()
    }

    /// All switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switches.len() as u32).map(SwitchId)
    }

    /// All host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId)
    }

    /// All links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link by id.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.idx()]
    }

    /// What is connected at `(sw, port)`, if anything.
    pub fn port_target(&self, sw: SwitchId, port: Port) -> Option<PortTarget> {
        self.switches[sw.idx()]
            .ports
            .get(port.idx())
            .copied()
            .flatten()
    }

    /// Iterate `(port, target)` over the occupied ports of a switch.
    pub fn ports_of(&self, sw: SwitchId) -> impl Iterator<Item = (Port, PortTarget)> + '_ {
        self.switches[sw.idx()]
            .ports
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (Port(i as u8), t)))
    }

    /// Iterate the neighbouring switches of `sw` as `(port, neighbour, link)`.
    /// Parallel links appear once per link.
    pub fn switch_neighbors(
        &self,
        sw: SwitchId,
    ) -> impl Iterator<Item = (Port, SwitchId, LinkId)> + '_ {
        self.ports_of(sw).filter_map(|(p, t)| match t {
            PortTarget::Switch { to, link, .. } => Some((p, to, link)),
            PortTarget::Host { .. } => None,
        })
    }

    /// The hosts attached to a switch, in attachment order.
    pub fn hosts_of(&self, sw: SwitchId) -> &[HostId] {
        &self.switches[sw.idx()].hosts
    }

    /// The switch a host is attached to.
    pub fn host_switch(&self, h: HostId) -> SwitchId {
        self.hosts[h.idx()].switch
    }

    /// The port (on its switch) a host is attached to.
    pub fn host_port(&self, h: HostId) -> Port {
        self.hosts[h.idx()].port
    }

    /// The link connecting a host to its switch.
    pub fn host_link(&self, h: HostId) -> LinkId {
        self.hosts[h.idx()].link
    }

    /// All ports on `from` whose link leads to switch `to` (several with
    /// parallel links).
    pub fn ports_to(&self, from: SwitchId, to: SwitchId) -> Vec<Port> {
        self.switch_neighbors(from)
            .filter(|&(_, n, _)| n == to)
            .map(|(p, _, _)| p)
            .collect()
    }

    /// First port on `from` leading to `to`, if adjacent.
    pub fn port_to(&self, from: SwitchId, to: SwitchId) -> Option<Port> {
        self.switch_neighbors(from)
            .find(|&(_, n, _)| n == to)
            .map(|(p, _, _)| p)
    }

    /// Number of occupied ports on a switch.
    pub fn occupied_ports(&self, sw: SwitchId) -> usize {
        self.switches[sw.idx()].ports.iter().flatten().count()
    }
}

/// Incremental builder for a [`Topology`].
///
/// ```
/// use regnet_topology::{TopologyBuilder, SwitchId};
///
/// let mut b = TopologyBuilder::new("tiny", 4);
/// b.add_switches(2);
/// b.connect(SwitchId(0), SwitchId(1)).unwrap();
/// b.attach_host(SwitchId(0)).unwrap();
/// b.attach_host(SwitchId(1)).unwrap();
/// let topo = b.build().unwrap();
/// assert_eq!(topo.num_hosts(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    name: String,
    max_ports: u8,
    switches: Vec<SwitchNode>,
    hosts: Vec<HostNode>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Start a new topology where every switch has `max_ports` ports.
    pub fn new(name: impl Into<String>, max_ports: u8) -> Self {
        TopologyBuilder {
            name: name.into(),
            max_ports,
            switches: Vec::new(),
            hosts: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Add `n` switches, returning the id of the first.
    pub fn add_switches(&mut self, n: usize) -> SwitchId {
        let first = self.switches.len() as u32;
        self.switches.extend((0..n).map(|_| SwitchNode {
            ports: vec![None; self.max_ports as usize],
            hosts: Vec::new(),
        }));
        SwitchId(first)
    }

    fn free_port(&self, sw: SwitchId) -> Result<Port, TopologyError> {
        let node = self
            .switches
            .get(sw.idx())
            .ok_or(TopologyError::UnknownSwitch(sw))?;
        node.ports
            .iter()
            .position(|p| p.is_none())
            .map(|i| Port(i as u8))
            .ok_or(TopologyError::NoFreePort(sw))
    }

    /// Connect two switches with a new link, assigning the lowest free port
    /// on each side. Parallel links are allowed (they occur in 2-ary tori).
    pub fn connect(&mut self, a: SwitchId, b: SwitchId) -> Result<LinkId, TopologyError> {
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        let pa = self.free_port(a)?;
        let pb = self.free_port(b)?;
        let link = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id: link,
            ends: [
                LinkEnd::Switch { sw: a, port: pa },
                LinkEnd::Switch { sw: b, port: pb },
            ],
        });
        self.switches[a.idx()].ports[pa.idx()] = Some(PortTarget::Switch {
            to: b,
            to_port: pb,
            link,
        });
        self.switches[b.idx()].ports[pb.idx()] = Some(PortTarget::Switch {
            to: a,
            to_port: pa,
            link,
        });
        Ok(link)
    }

    /// Attach a new host to `sw` on its lowest free port.
    pub fn attach_host(&mut self, sw: SwitchId) -> Result<HostId, TopologyError> {
        let port = self.free_port(sw)?;
        let host = HostId(self.hosts.len() as u32);
        let link = LinkId(self.links.len() as u32);
        self.links.push(Link {
            id: link,
            ends: [LinkEnd::Switch { sw, port }, LinkEnd::Host { host }],
        });
        self.switches[sw.idx()].ports[port.idx()] = Some(PortTarget::Host { host, link });
        self.switches[sw.idx()].hosts.push(host);
        self.hosts.push(HostNode {
            switch: sw,
            port,
            link,
        });
        Ok(host)
    }

    /// Attach `n` hosts to every switch, in switch order. Host ids therefore
    /// follow the Myrinet convention `host = switch * n + k`.
    pub fn attach_hosts_everywhere(&mut self, n: usize) -> Result<(), TopologyError> {
        for s in 0..self.switches.len() as u32 {
            for _ in 0..n {
                self.attach_host(SwitchId(s))?;
            }
        }
        Ok(())
    }

    /// Validate and freeze the topology.
    pub fn build(self) -> Result<Topology, TopologyError> {
        if self.switches.is_empty() {
            return Err(TopologyError::Empty);
        }
        if self.hosts.is_empty() {
            return Err(TopologyError::NoHosts);
        }
        // Connectivity check over the switch graph.
        let n = self.switches.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut reachable = 1;
        while let Some(s) = stack.pop() {
            for t in self.switches[s].ports.iter().flatten() {
                if let PortTarget::Switch { to, .. } = t {
                    if !seen[to.idx()] {
                        seen[to.idx()] = true;
                        reachable += 1;
                        stack.push(to.idx());
                    }
                }
            }
        }
        if reachable != n {
            return Err(TopologyError::Disconnected {
                reachable,
                total: n,
            });
        }
        Ok(Topology {
            name: self.name,
            max_ports: self.max_ports,
            switches: self.switches,
            hosts: self.hosts,
            links: self.links,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> Topology {
        let mut b = TopologyBuilder::new("line3", 4);
        b.add_switches(3);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.connect(SwitchId(1), SwitchId(2)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_ports_in_order() {
        let t = line3();
        // Switch 1 connects to 0 first (port 0) then 2 (port 1), host on port 2.
        assert_eq!(t.port_to(SwitchId(1), SwitchId(0)), Some(Port(0)));
        assert_eq!(t.port_to(SwitchId(1), SwitchId(2)), Some(Port(1)));
        assert_eq!(t.host_port(HostId(1)), Port(2));
        assert_eq!(t.host_switch(HostId(1)), SwitchId(1));
    }

    #[test]
    fn port_targets_are_symmetric() {
        let t = line3();
        match t.port_target(SwitchId(0), Port(0)) {
            Some(PortTarget::Switch { to, to_port, link }) => {
                assert_eq!(to, SwitchId(1));
                match t.port_target(to, to_port) {
                    Some(PortTarget::Switch {
                        to: back,
                        to_port: back_port,
                        link: l2,
                    }) => {
                        assert_eq!(back, SwitchId(0));
                        assert_eq!(back_port, Port(0));
                        assert_eq!(l2, link);
                    }
                    other => panic!("expected switch target, got {other:?}"),
                }
            }
            other => panic!("expected switch target, got {other:?}"),
        }
    }

    #[test]
    fn counts() {
        let t = line3();
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_hosts(), 3);
        assert_eq!(t.num_links(), 5);
        assert_eq!(t.num_switch_links(), 2);
        assert_eq!(t.occupied_ports(SwitchId(1)), 3);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new("x", 4);
        b.add_switches(1);
        assert_eq!(
            b.connect(SwitchId(0), SwitchId(0)),
            Err(TopologyError::SelfLoop(SwitchId(0)))
        );
    }

    #[test]
    fn rejects_port_exhaustion() {
        let mut b = TopologyBuilder::new("x", 1);
        b.add_switches(3);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        assert_eq!(
            b.connect(SwitchId(0), SwitchId(2)),
            Err(TopologyError::NoFreePort(SwitchId(0)))
        );
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = TopologyBuilder::new("x", 4);
        b.add_switches(4);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.connect(SwitchId(2), SwitchId(3)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        assert!(matches!(
            b.build(),
            Err(TopologyError::Disconnected {
                reachable: 2,
                total: 4
            })
        ));
    }

    #[test]
    fn rejects_empty_and_hostless() {
        assert_eq!(
            TopologyBuilder::new("x", 4).build().unwrap_err(),
            TopologyError::Empty
        );
        let mut b = TopologyBuilder::new("x", 4);
        b.add_switches(1);
        assert_eq!(b.build().unwrap_err(), TopologyError::NoHosts);
    }

    #[test]
    fn parallel_links_supported() {
        let mut b = TopologyBuilder::new("dbl", 4);
        b.add_switches(2);
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.connect(SwitchId(0), SwitchId(1)).unwrap();
        b.attach_hosts_everywhere(1).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.ports_to(SwitchId(0), SwitchId(1)).len(), 2);
        assert_eq!(t.num_switch_links(), 2);
    }

    #[test]
    fn clone_preserves_structure() {
        let t = line3();
        let cloned = t.clone();
        assert_eq!(cloned.num_links(), t.num_links());
        assert_eq!(cloned.num_hosts(), t.num_hosts());
        assert_eq!(cloned.name(), t.name());
    }
}
