//! Generators for the topologies evaluated in the paper, plus a few extras
//! used by tests and extensions.
//!
//! All generators attach hosts in switch order so that host ids follow the
//! convention `host = switch * hosts_per_switch + k`.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::TopologyError;
use crate::graph::{Topology, TopologyBuilder};
use crate::ids::SwitchId;

/// Default number of ports of a Myrinet switch in the paper.
pub const MYRINET_PORTS: u8 = 16;

fn torus_builder(
    name: String,
    rows: usize,
    cols: usize,
    hosts_per_switch: usize,
    express: bool,
) -> Result<Topology, TopologyError> {
    if rows < 2 || cols < 2 {
        return Err(TopologyError::BadParameters(format!(
            "torus needs rows, cols >= 2 (got {rows}x{cols})"
        )));
    }
    let switch_degree = 4 + if express { 4 } else { 0 };
    let ports_needed = switch_degree + hosts_per_switch;
    let max_ports = ports_needed.max(MYRINET_PORTS as usize);
    if max_ports > u8::MAX as usize {
        return Err(TopologyError::BadParameters(
            "too many ports per switch".into(),
        ));
    }
    let mut b = TopologyBuilder::new(name, max_ports as u8);
    b.add_switches(rows * cols);
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u32);
    // +1 neighbours in each dimension: every switch owns its "east" and
    // "south" link, so each torus link is created exactly once.
    for r in 0..rows {
        for c in 0..cols {
            b.connect(id(r, c), id(r, (c + 1) % cols))?;
            b.connect(id(r, c), id((r + 1) % rows, c))?;
        }
    }
    if express {
        // Express channels [Dally'91]: links to the second-order neighbour in
        // each dimension. For 4-ary rings +2 == -2, which yields parallel
        // express links — physically two cables, as in a doubled channel.
        for r in 0..rows {
            for c in 0..cols {
                b.connect(id(r, c), id(r, (c + 2) % cols))?;
                b.connect(id(r, c), id((r + 2) % rows, c))?;
            }
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// The paper's 2-D torus: `rows × cols` switches, 4 inter-switch links each,
/// `hosts_per_switch` hosts per switch. The evaluated instance is
/// `torus_2d(8, 8, 8)`: 64 switches, 512 hosts, 4 ports left open.
pub fn torus_2d(
    rows: usize,
    cols: usize,
    hosts_per_switch: usize,
) -> Result<Topology, TopologyError> {
    torus_builder(
        format!("torus-{rows}x{cols}"),
        rows,
        cols,
        hosts_per_switch,
        false,
    )
}

/// The paper's 2-D torus with express channels: the torus plus links to the
/// second-order neighbours (two hops away in each dimension). The evaluated
/// instance is `torus_2d_express(8, 8, 8)`: all 16 ports used.
pub fn torus_2d_express(
    rows: usize,
    cols: usize,
    hosts_per_switch: usize,
) -> Result<Topology, TopologyError> {
    torus_builder(
        format!("torus-express-{rows}x{cols}"),
        rows,
        cols,
        hosts_per_switch,
        true,
    )
}

/// A 2-D mesh (no wraparound). Not in the paper's evaluation; used by tests
/// and as an extension topology.
pub fn mesh_2d(
    rows: usize,
    cols: usize,
    hosts_per_switch: usize,
) -> Result<Topology, TopologyError> {
    if rows < 1 || cols < 1 || rows * cols < 2 {
        return Err(TopologyError::BadParameters(format!(
            "mesh needs at least 2 switches (got {rows}x{cols})"
        )));
    }
    let ports_needed = 4 + hosts_per_switch;
    let mut b = TopologyBuilder::new(
        format!("mesh-{rows}x{cols}"),
        ports_needed.max(MYRINET_PORTS as usize) as u8,
    );
    b.add_switches(rows * cols);
    let id = |r: usize, c: usize| SwitchId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.connect(id(r, c), id(r, c + 1))?;
            }
            if r + 1 < rows {
                b.connect(id(r, c), id(r + 1, c))?;
            }
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// A binary hypercube of dimension `dim` (2^dim switches).
pub fn hypercube(dim: u32, hosts_per_switch: usize) -> Result<Topology, TopologyError> {
    if dim == 0 || dim > 10 {
        return Err(TopologyError::BadParameters(format!(
            "hypercube dimension must be in 1..=10 (got {dim})"
        )));
    }
    let n = 1usize << dim;
    let ports_needed = dim as usize + hosts_per_switch;
    let mut b = TopologyBuilder::new(
        format!("hypercube-{dim}"),
        ports_needed.max(MYRINET_PORTS as usize) as u8,
    );
    b.add_switches(n);
    for s in 0..n {
        for d in 0..dim {
            let t = s ^ (1 << d);
            if t > s {
                b.connect(SwitchId(s as u32), SwitchId(t as u32))?;
            }
        }
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

/// The Sandia CPLANT network, reconstructed from the paper's prose:
///
/// * 50 16-port switches, 8 hosts each (400 hosts total);
/// * 48 switches in 6 groups of 8; each group is a 3-hypercube plus one
///   link from every switch to the farthest switch in the group (the
///   bit-complement), using 4 intra-group ports;
/// * the 6 groups form an incomplete hypercube (vertices 0–5 of a 3-cube)
///   that "also contains connections between farthest nodes" (we add the
///   complement pairs 2↔5 and 3↔4); switch *i* of a group links to switch
///   *i* of each adjacent group;
/// * the remaining 2 switches form an additional group; we attach the first
///   to switch 0 of every group and the second to switch 7 of every group,
///   and link the two together — the paper only says the result "is not
///   completely regular".
pub fn cplant() -> Result<Topology, TopologyError> {
    const GROUPS: u32 = 6;
    const GROUP_SIZE: u32 = 8;
    let mut b = TopologyBuilder::new("cplant", MYRINET_PORTS);
    b.add_switches((GROUPS * GROUP_SIZE) as usize + 2);
    let id = |g: u32, i: u32| SwitchId(g * GROUP_SIZE + i);
    let extra_a = SwitchId(GROUPS * GROUP_SIZE);
    let extra_b = SwitchId(GROUPS * GROUP_SIZE + 1);

    // Intra-group 3-cube + complement link.
    for g in 0..GROUPS {
        for i in 0..GROUP_SIZE {
            for d in 0..3 {
                let j = i ^ (1 << d);
                if j > i {
                    b.connect(id(g, i), id(g, j))?;
                }
            }
            let j = i ^ 0b111;
            if j > i {
                b.connect(id(g, i), id(g, j))?;
            }
        }
    }

    // Inter-group fabric: incomplete 3-cube on groups 0..6 plus the
    // complement pairs that exist within 0..6.
    let mut group_edges: Vec<(u32, u32)> = Vec::new();
    for a in 0..GROUPS {
        for d in 0..3 {
            let c = a ^ (1 << d);
            if c > a && c < GROUPS {
                group_edges.push((a, c));
            }
        }
        let c = a ^ 0b111;
        if c > a && c < GROUPS {
            group_edges.push((a, c));
        }
    }
    for (ga, gb) in group_edges {
        for i in 0..GROUP_SIZE {
            b.connect(id(ga, i), id(gb, i))?;
        }
    }

    // The additional 2-switch group.
    for g in 0..GROUPS {
        b.connect(extra_a, id(g, 0))?;
        b.connect(extra_b, id(g, 7))?;
    }
    b.connect(extra_a, extra_b)?;

    b.attach_hosts_everywhere(8)?;
    b.build()
}

/// A random connected irregular network, as used in the authors' companion
/// papers on irregular topologies. Each switch gets close to `degree`
/// switch-to-switch links. Deterministic for a given `seed`.
pub fn irregular_random(
    n_switches: usize,
    degree: usize,
    hosts_per_switch: usize,
    seed: u64,
) -> Result<Topology, TopologyError> {
    if n_switches < 2 {
        return Err(TopologyError::BadParameters(
            "need at least 2 switches".into(),
        ));
    }
    if degree < 1 {
        return Err(TopologyError::BadParameters("degree must be >= 1".into()));
    }
    let ports_needed = degree + hosts_per_switch;
    let mut b = TopologyBuilder::new(
        format!("irregular-{n_switches}-d{degree}-s{seed}"),
        ports_needed.max(MYRINET_PORTS as usize) as u8,
    );
    b.add_switches(n_switches);
    let mut rng = SmallRng::seed_from_u64(seed);

    // Random spanning tree first (guarantees connectivity): attach each new
    // switch to a random earlier one.
    let mut deg = vec![0usize; n_switches];
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for s in 1..n_switches {
        let t = rng.gen_range(0..s);
        edges.push((t as u32, s as u32));
        deg[s] += 1;
        deg[t] += 1;
    }
    // Then add random extra links until most switches reach `degree`.
    let mut attempts = 0;
    let max_attempts = n_switches * degree * 20;
    while attempts < max_attempts {
        attempts += 1;
        let mut candidates: Vec<usize> = (0..n_switches).filter(|&s| deg[s] < degree).collect();
        if candidates.len() < 2 {
            break;
        }
        candidates.shuffle(&mut rng);
        let (a, bq) = (candidates[0], candidates[1]);
        let (lo, hi) = (a.min(bq) as u32, a.max(bq) as u32);
        if edges.contains(&(lo, hi)) {
            continue;
        }
        edges.push((lo, hi));
        deg[a] += 1;
        deg[bq] += 1;
    }
    for (a, bq) in edges {
        b.connect(SwitchId(a), SwitchId(bq))?;
    }
    b.attach_hosts_everywhere(hosts_per_switch)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    #[test]
    fn paper_torus_dimensions() {
        let t = torus_2d(8, 8, 8).unwrap();
        assert_eq!(t.num_switches(), 64);
        assert_eq!(t.num_hosts(), 512);
        // 64 switches x 4 links / 2 ends = 128 switch links.
        assert_eq!(t.num_switch_links(), 128);
        // 8 hosts + 4 links = 12 occupied ports, 4 left open (paper).
        for s in t.switches() {
            assert_eq!(t.occupied_ports(s), 12);
        }
    }

    #[test]
    fn paper_express_torus_dimensions() {
        let t = torus_2d_express(8, 8, 8).unwrap();
        assert_eq!(t.num_switches(), 64);
        assert_eq!(t.num_hosts(), 512);
        // Twice the links of the plain torus (paper: "the number of links in
        // the network is doubled").
        assert_eq!(t.num_switch_links(), 256);
        // All 16 ports used (paper).
        for s in t.switches() {
            assert_eq!(t.occupied_ports(s), 16);
        }
    }

    #[test]
    fn torus_neighbour_structure() {
        let t = torus_2d(4, 4, 1).unwrap();
        // Switch 0 neighbours: 1 (east), 4 (south), 3 (west wrap), 12 (north wrap).
        let mut n: Vec<u32> = t
            .switch_neighbors(SwitchId(0))
            .map(|(_, s, _)| s.0)
            .collect();
        n.sort_unstable();
        assert_eq!(n, vec![1, 3, 4, 12]);
    }

    #[test]
    fn express_second_order_neighbours() {
        let t = torus_2d_express(8, 8, 1).unwrap();
        let mut n: Vec<u32> = t
            .switch_neighbors(SwitchId(0))
            .map(|(_, s, _)| s.0)
            .collect();
        n.sort_unstable();
        // 1,7 (ring ±1), 8,56 (col ±1), 2,6 (ring ±2), 16,48 (col ±2)
        assert_eq!(n, vec![1, 2, 6, 7, 8, 16, 48, 56]);
    }

    #[test]
    fn cplant_dimensions() {
        let t = cplant().unwrap();
        assert_eq!(t.num_switches(), 50);
        assert_eq!(t.num_hosts(), 400);
        // Every switch within a 16-port budget.
        for s in t.switches() {
            assert!(t.occupied_ports(s) <= 16, "switch {s} over budget");
        }
        // Group switches: 4 intra + >=3 inter + 8 hosts.
        for g in 0..6u32 {
            for i in 0..8u32 {
                let occ = t.occupied_ports(SwitchId(g * 8 + i));
                assert!(occ >= 15, "group switch under-connected: {occ}");
            }
        }
    }

    #[test]
    fn cplant_link_census() {
        // Exact wiring of our reconstruction (documented in DESIGN.md):
        // per group, a 3-cube (12 links) plus 4 complement links; 9 group
        // edges with 8 parallel switch links each; the extra pair of
        // switches adds 6 + 6 + 1 links.
        let t = cplant().unwrap();
        let expected = 6 * (12 + 4) + 9 * 8 + 13;
        assert_eq!(t.num_switch_links(), expected);
        // Inter-group degree of every group switch is exactly 3, so
        // switches 0 and 7 of each group (which also serve the extra pair)
        // fill all 16 ports.
        for g in 0..6u32 {
            assert_eq!(t.occupied_ports(SwitchId(g * 8)), 16);
            assert_eq!(t.occupied_ports(SwitchId(g * 8 + 7)), 16);
        }
    }

    #[test]
    fn mesh_has_no_wrap() {
        let t = mesh_2d(3, 3, 1).unwrap();
        let n: Vec<u32> = t
            .switch_neighbors(SwitchId(0))
            .map(|(_, s, _)| s.0)
            .collect();
        assert_eq!(n.len(), 2); // corner switch: east + south only
        assert_eq!(t.num_switch_links(), 12);
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(3, 2).unwrap();
        assert_eq!(t.num_switches(), 8);
        assert_eq!(t.num_switch_links(), 12);
        assert_eq!(t.num_hosts(), 16);
    }

    #[test]
    fn host_id_convention() {
        let t = torus_2d(4, 4, 8).unwrap();
        // host = switch * hosts_per_switch + k
        assert_eq!(t.host_switch(HostId(0)), SwitchId(0));
        assert_eq!(t.host_switch(HostId(7)), SwitchId(0));
        assert_eq!(t.host_switch(HostId(8)), SwitchId(1));
        assert_eq!(t.host_switch(HostId(127)), SwitchId(15));
    }

    #[test]
    fn irregular_is_deterministic_and_connected() {
        let a = irregular_random(16, 4, 2, 42).unwrap();
        let b = irregular_random(16, 4, 2, 42).unwrap();
        assert_eq!(a.num_links(), b.num_links());
        let c = irregular_random(16, 4, 2, 43).unwrap();
        // Different seeds should (almost surely) wire differently.
        let edges = |t: &Topology| -> Vec<(u32, u32)> {
            t.links()
                .iter()
                .filter_map(|l| l.switch_ends())
                .map(|(a, b)| (a.0, b.0))
                .collect()
        };
        assert_eq!(edges(&a), edges(&b));
        assert_ne!(edges(&a), edges(&c));
    }

    #[test]
    fn generators_reject_bad_parameters() {
        assert!(torus_2d(1, 8, 8).is_err());
        assert!(hypercube(0, 1).is_err());
        assert!(hypercube(11, 1).is_err());
        assert!(irregular_random(1, 3, 1, 0).is_err());
        assert!(irregular_random(8, 0, 1, 0).is_err());
        assert!(mesh_2d(1, 1, 1).is_err());
    }

    #[test]
    fn two_ary_torus_has_parallel_links() {
        let t = torus_2d(2, 2, 1).unwrap();
        // Each ring of size 2 produces a doubled link.
        assert_eq!(t.ports_to(SwitchId(0), SwitchId(1)).len(), 2);
    }
}
