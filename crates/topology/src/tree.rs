//! Breadth-first spanning tree, the basis of up\*/down\* routing.

use std::collections::VecDeque;

use crate::graph::Topology;
use crate::ids::SwitchId;

/// A breadth-first spanning tree over the switch graph.
///
/// Ties during the BFS are broken by switch id (neighbours are visited in
/// id order), which matches the deterministic behaviour of Myrinet's mapper
/// and makes every run reproducible.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    root: SwitchId,
    parent: Vec<Option<SwitchId>>,
    level: Vec<u32>,
}

impl SpanningTree {
    /// Compute the BFS spanning tree rooted at `root`.
    pub fn bfs(topo: &Topology, root: SwitchId) -> SpanningTree {
        let n = topo.num_switches();
        assert!(root.idx() < n, "root {root} out of range");
        let mut parent = vec![None; n];
        let mut level = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        level[root.idx()] = 0;
        queue.push_back(root);
        while let Some(s) = queue.pop_front() {
            let mut neighbours: Vec<SwitchId> =
                topo.switch_neighbors(s).map(|(_, t, _)| t).collect();
            neighbours.sort_unstable();
            neighbours.dedup();
            for t in neighbours {
                if level[t.idx()] == u32::MAX {
                    level[t.idx()] = level[s.idx()] + 1;
                    parent[t.idx()] = Some(s);
                    queue.push_back(t);
                }
            }
        }
        debug_assert!(
            level.iter().all(|&l| l != u32::MAX),
            "topology validation guarantees connectivity"
        );
        SpanningTree {
            root,
            parent,
            level,
        }
    }

    /// The root switch.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Tree level (distance from the root along the tree) of a switch.
    pub fn level(&self, s: SwitchId) -> u32 {
        self.level[s.idx()]
    }

    /// The parent of a switch in the tree; `None` for the root.
    pub fn parent(&self, s: SwitchId) -> Option<SwitchId> {
        self.parent[s.idx()]
    }

    /// The deepest level of the tree.
    pub fn depth(&self) -> u32 {
        self.level.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn torus_tree_levels() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let tree = SpanningTree::bfs(&topo, SwitchId(0));
        assert_eq!(tree.root(), SwitchId(0));
        assert_eq!(tree.level(SwitchId(0)), 0);
        // Direct neighbours of 0 sit at level 1.
        for l in [1u32, 3, 4, 12] {
            assert_eq!(tree.level(SwitchId(l)), 1, "switch {l}");
        }
        // Farthest switch in a 4x4 torus is 2+2 hops away.
        assert_eq!(tree.level(SwitchId(10)), 4);
        assert_eq!(tree.depth(), 4);
    }

    #[test]
    fn parents_form_a_tree() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let tree = SpanningTree::bfs(&topo, SwitchId(5));
        assert_eq!(tree.parent(SwitchId(5)), None);
        for s in topo.switches() {
            if s != SwitchId(5) {
                let p = tree.parent(s).expect("non-root must have a parent");
                assert_eq!(tree.level(p) + 1, tree.level(s));
                // Parent must actually be adjacent.
                assert!(topo.port_to(s, p).is_some());
            }
        }
    }

    #[test]
    fn deterministic() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let a = SpanningTree::bfs(&topo, SwitchId(0));
        let b = SpanningTree::bfs(&topo, SwitchId(0));
        for s in topo.switches() {
            assert_eq!(a.parent(s), b.parent(s));
        }
    }
}
