//! Error type for topology construction.

use crate::ids::SwitchId;

/// Errors raised while building or validating a [`Topology`](crate::Topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A switch ran out of free ports.
    NoFreePort(SwitchId),
    /// A switch id was out of range.
    UnknownSwitch(SwitchId),
    /// A link would connect a switch to itself.
    SelfLoop(SwitchId),
    /// The switch graph is not connected.
    Disconnected { reachable: usize, total: usize },
    /// The network has no switches.
    Empty,
    /// The network has no hosts (nothing could send or receive).
    NoHosts,
    /// A generator was given invalid parameters.
    BadParameters(String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoFreePort(s) => write!(f, "switch {s} has no free port"),
            TopologyError::UnknownSwitch(s) => write!(f, "switch {s} does not exist"),
            TopologyError::SelfLoop(s) => write!(f, "refusing to connect {s} to itself"),
            TopologyError::Disconnected { reachable, total } => write!(
                f,
                "switch graph is not connected: {reachable} of {total} switches reachable"
            ),
            TopologyError::Empty => write!(f, "topology has no switches"),
            TopologyError::NoHosts => write!(f, "topology has no hosts"),
            TopologyError::BadParameters(msg) => write!(f, "bad generator parameters: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
