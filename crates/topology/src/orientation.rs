//! Autonet-style "up"/"down" direction assignment.
//!
//! Following the Autonet rules used by Myrinet [Schroeder et al., SRC-59]:
//! after computing a breadth-first spanning tree, the "up" end of every link
//! is (1) the end whose switch is closer to the root, or (2) the end whose
//! switch has the lower id when both ends are at the same tree level. The
//! assignment guarantees that every cycle in the network has at least one
//! link in the "up" direction and one in the "down" direction, so forbidding
//! down→up transitions breaks every cyclic channel dependency.

use crate::graph::Topology;
use crate::ids::SwitchId;
use crate::tree::SpanningTree;

/// The up/down orientation of every switch-to-switch link.
///
/// Because the orientation of a link depends only on the tree levels and ids
/// of its two endpoint switches, orientation queries take the two switches
/// rather than a link id — parallel links always share an orientation.
#[derive(Debug, Clone)]
pub struct Orientation {
    root: SwitchId,
    level: Vec<u32>,
}

impl Orientation {
    /// Derive the orientation from a spanning tree.
    pub fn from_tree(topo: &Topology, tree: &SpanningTree) -> Orientation {
        Orientation {
            root: tree.root(),
            level: topo.switches().map(|s| tree.level(s)).collect(),
        }
    }

    /// Convenience: BFS tree from `root`, then orient.
    pub fn compute(topo: &Topology, root: SwitchId) -> Orientation {
        Orientation::from_tree(topo, &SpanningTree::bfs(topo, root))
    }

    /// The root switch the tree was computed from.
    pub fn root(&self) -> SwitchId {
        self.root
    }

    /// Tree level of a switch.
    pub fn level(&self, s: SwitchId) -> u32 {
        self.level[s.idx()]
    }

    /// Is traversing a link from `from` to `to` an "up" move (towards the
    /// up end)?
    ///
    /// `from` and `to` must be adjacent switches for the answer to be
    /// meaningful; the predicate itself only needs their levels/ids.
    #[inline]
    pub fn is_up_move(&self, from: SwitchId, to: SwitchId) -> bool {
        let (lf, lt) = (self.level[from.idx()], self.level[to.idx()]);
        lt < lf || (lt == lf && to < from)
    }

    /// The switch at the "up" end of a link between `a` and `b`.
    pub fn up_end(&self, a: SwitchId, b: SwitchId) -> SwitchId {
        if self.is_up_move(b, a) {
            a
        } else {
            b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn root_is_up_from_neighbours() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let o = Orientation::compute(&topo, SwitchId(0));
        for (_, n, _) in topo.switch_neighbors(SwitchId(0)) {
            assert!(o.is_up_move(n, SwitchId(0)));
            assert!(!o.is_up_move(SwitchId(0), n));
        }
    }

    #[test]
    fn same_level_ties_break_by_id() {
        // Use a torus with an odd ring: even-sized tori are bipartite and
        // have no adjacent same-level pairs at all.
        let topo = gen::torus_2d(4, 5, 1).unwrap();
        let o = Orientation::compute(&topo, SwitchId(0));
        let mut found = false;
        for s in topo.switches() {
            for (_, t, _) in topo.switch_neighbors(s) {
                if o.level(s) == o.level(t) && s != t {
                    found = true;
                    assert_eq!(o.is_up_move(s, t), t < s);
                    assert_eq!(o.up_end(s, t), s.min(t));
                }
            }
        }
        assert!(found, "expected at least one same-level adjacent pair");
    }

    #[test]
    fn exactly_one_direction_is_up() {
        let topo = gen::torus_2d_express(4, 4, 1).unwrap();
        let o = Orientation::compute(&topo, SwitchId(3));
        for link in topo.links() {
            if let Some((a, b)) = link.switch_ends() {
                assert_ne!(o.is_up_move(a, b), o.is_up_move(b, a));
            }
        }
    }

    #[test]
    fn every_cycle_has_up_and_down() {
        // The up*/down* safety property: orient all switch links from their
        // down end to their up end; the resulting directed graph must be
        // acyclic (each undirected cycle then necessarily contains both an
        // up and a down link in either traversal direction).
        let topo = gen::cplant().unwrap();
        let o = Orientation::compute(&topo, SwitchId(0));
        let n = topo.num_switches();
        // Edges point "up": from lower (down) end to up end.
        let mut indeg = vec![0usize; n];
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for link in topo.links() {
            if let Some((a, b)) = link.switch_ends() {
                let up = o.up_end(a, b);
                let down = if up == a { b } else { a };
                adj[down.idx()].push(up.idx());
                indeg[up.idx()] += 1;
            }
        }
        // Kahn's algorithm: all nodes must be removable.
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut removed = 0;
        while let Some(u) = queue.pop() {
            removed += 1;
            for &v in &adj[u] {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    queue.push(v);
                }
            }
        }
        assert_eq!(removed, n, "up-direction graph must be acyclic");
    }
}
