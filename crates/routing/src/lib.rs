//! up\*/down\* source routing for `regnet`.
//!
//! This crate implements the baseline routing machinery of the paper:
//!
//! * [`SwitchPath`] — a path through the switch graph, with legality
//!   ([`SwitchPath::is_legal`]) and minimality checks and conversion to
//!   Myrinet port sequences.
//! * [`LegalDistances`] — shortest *legal* up\*/down\* distances to a
//!   destination, computed by BFS over the `(switch, phase)` product graph.
//! * [`simple_routes`] — an emulation of Myricom's `simple_routes` program:
//!   one up\*/down\* path per source-destination pair, selected among the
//!   shortest legal paths while balancing accumulated link weights (the
//!   paper's description of the GM route selection).
//! * [`minimal`] — enumeration and counting of graph-minimal paths, used by
//!   the in-transit buffer mechanism in `regnet-core`.
//!
//! # Example: a forbidden minimal path (as in the paper's Figure 1)
//!
//! ```
//! use regnet_topology::{TopologyBuilder, SwitchId, Orientation};
//! use regnet_routing::{LegalDistances, SwitchPath};
//!
//! // A ring of 4 switches: the minimal path 2 -> 3 is forbidden because it
//! // would need a down -> up transition; the legal route detours.
//! let mut b = TopologyBuilder::new("ring4", 4);
//! b.add_switches(4);
//! for i in 0..4u32 {
//!     b.connect(SwitchId(i), SwitchId((i + 1) % 4)).unwrap();
//! }
//! b.attach_hosts_everywhere(1).unwrap();
//! let topo = b.build().unwrap();
//! let orient = Orientation::compute(&topo, SwitchId(0));
//!
//! // Ring levels from root 0: [0, 1, 2, 1].
//! let legal = LegalDistances::to_dest(&topo, &orient, SwitchId(1));
//! // 2 -> 1 is a direct up move: distance 1.
//! assert_eq!(legal.from(SwitchId(2)), 1);
//! // 3 -> 2 -> 1? 3->2 is down (level 1 -> 2), 2->1 is up: forbidden.
//! // The legal path is 3 -> 0 -> 1 (up then down): distance 2. Both are
//! // minimal here; on larger networks the legal path is often longer.
//! let bad = SwitchPath::new(vec![SwitchId(3), SwitchId(2), SwitchId(1)]);
//! assert!(!bad.is_legal(&orient));
//! let good = SwitchPath::new(vec![SwitchId(3), SwitchId(0), SwitchId(1)]);
//! assert!(good.is_legal(&orient));
//! ```

mod legal;
pub mod minimal;
mod path;
mod simple;

pub use legal::{LegalDistances, Phase};
pub use path::SwitchPath;
pub use simple::{simple_routes, PairPaths, SimpleRoutesConfig};
