//! Shortest *legal* up\*/down\* distances via BFS on the (switch, phase)
//! product graph.

use std::collections::VecDeque;

use regnet_topology::{Orientation, SwitchId, Topology};

/// The routing phase of a packet under the up\*/down\* rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// The packet may still take "up" links (it has not taken a "down" link
    /// yet).
    Up,
    /// The packet has taken a "down" link; only "down" links remain legal.
    Down,
}

/// Shortest legal up\*/down\* distance from every `(switch, phase)` state to
/// one destination switch.
///
/// Built by a backward BFS over the product graph with states
/// `(switch, phase)` and the forward transitions
///
/// * `(s, Up) → (t, Up)`   when `s→t` is an up move,
/// * `(s, Up) → (t, Down)` when `s→t` is a down move,
/// * `(s, Down) → (t, Down)` when `s→t` is a down move.
///
/// The distance of a fresh packet at `s` is [`LegalDistances::from`]`(s)`,
/// i.e. the `Up`-phase distance.
#[derive(Debug, Clone)]
pub struct LegalDistances {
    dest: SwitchId,
    /// `dist[2*s + 0]` = distance from `(s, Up)`, `dist[2*s + 1]` from
    /// `(s, Down)`.
    dist: Vec<u16>,
}

impl LegalDistances {
    /// Backward BFS from `dest`.
    pub fn to_dest(topo: &Topology, orient: &Orientation, dest: SwitchId) -> LegalDistances {
        let n = topo.num_switches();
        let mut dist = vec![u16::MAX; 2 * n];
        let mut queue: VecDeque<(SwitchId, Phase)> = VecDeque::new();
        dist[2 * dest.idx()] = 0;
        dist[2 * dest.idx() + 1] = 0;
        queue.push_back((dest, Phase::Up));
        queue.push_back((dest, Phase::Down));
        while let Some((t, ph_t)) = queue.pop_front() {
            let d = dist[2 * t.idx() + (ph_t == Phase::Down) as usize];
            for (_, s, _) in topo.switch_neighbors(t) {
                let up_move = orient.is_up_move(s, t);
                // Which predecessor states (s, ph_s) transition into (t, ph_t)?
                let preds: &[Phase] = match (up_move, ph_t) {
                    (true, Phase::Up) => &[Phase::Up],
                    (true, Phase::Down) => &[],
                    (false, Phase::Down) => &[Phase::Up, Phase::Down],
                    (false, Phase::Up) => &[],
                };
                for &ph_s in preds {
                    let slot = 2 * s.idx() + (ph_s == Phase::Down) as usize;
                    if dist[slot] == u16::MAX {
                        dist[slot] = d + 1;
                        queue.push_back((s, ph_s));
                    }
                }
            }
        }
        LegalDistances { dest, dist }
    }

    /// The destination these distances lead to.
    pub fn dest(&self) -> SwitchId {
        self.dest
    }

    /// Shortest legal distance from `s` for a fresh packet (phase `Up`).
    #[inline]
    pub fn from(&self, s: SwitchId) -> u16 {
        self.dist[2 * s.idx()]
    }

    /// Shortest legal distance from the state `(s, phase)`.
    #[inline]
    pub fn from_state(&self, s: SwitchId, phase: Phase) -> u16 {
        self.dist[2 * s.idx() + (phase == Phase::Down) as usize]
    }

    /// Compute legal distances for every destination. Returns one entry per
    /// switch, indexed by destination id.
    pub fn all_destinations(topo: &Topology, orient: &Orientation) -> Vec<LegalDistances> {
        topo.switches()
            .map(|d| LegalDistances::to_dest(topo, orient, d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::{gen, DistanceMatrix};

    #[test]
    fn every_pair_is_reachable_legally() {
        // up*/down* is connected: the tree alone provides a legal route
        // (up to the common ancestor, then down).
        for topo in [
            gen::torus_2d(4, 4, 1).unwrap(),
            gen::torus_2d_express(4, 4, 1).unwrap(),
            gen::cplant().unwrap(),
        ] {
            let orient = Orientation::compute(&topo, SwitchId(0));
            for d in topo.switches() {
                let legal = LegalDistances::to_dest(&topo, &orient, d);
                for s in topo.switches() {
                    assert_ne!(legal.from(s), u16::MAX, "{s} cannot reach {d}");
                }
            }
        }
    }

    #[test]
    fn legal_distance_bounds() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        let mut some_pair_longer = false;
        for d in topo.switches() {
            let legal = LegalDistances::to_dest(&topo, &orient, d);
            for s in topo.switches() {
                // Legal distance can never beat the graph distance...
                assert!(legal.from(s) >= dm.get(s, d));
                // ...and never exceeds the tree route (level(s) + level(d)).
                assert!(legal.from(s) as u32 <= orient.level(s) + orient.level(d));
                if legal.from(s) > dm.get(s, d) {
                    some_pair_longer = true;
                }
                // Down-phase is at least as constrained as up-phase.
                assert!(legal.from_state(s, Phase::Down) >= legal.from_state(s, Phase::Up));
            }
        }
        // The paper: ~20% of torus pairs have no minimal legal path.
        assert!(some_pair_longer, "expected some forbidden minimal paths");
    }

    #[test]
    fn dest_distance_is_zero() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let legal = LegalDistances::to_dest(&topo, &orient, SwitchId(9));
        assert_eq!(legal.from(SwitchId(9)), 0);
        assert_eq!(legal.from_state(SwitchId(9), Phase::Down), 0);
        assert_eq!(legal.dest(), SwitchId(9));
    }

    #[test]
    fn forbidden_fraction_on_paper_torus() {
        // Paper (section 4.7.1): on the 8x8 torus, 80% of up*/down* pairs
        // have a minimal legal path available. Check our machinery sees a
        // comparable forbidden fraction (the exact number depends on which
        // paths simple_routes picks; here we measure availability).
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let dm = DistanceMatrix::compute(&topo);
        let mut minimal_ok = 0usize;
        let mut total = 0usize;
        for d in topo.switches() {
            let legal = LegalDistances::to_dest(&topo, &orient, d);
            for s in topo.switches() {
                if s == d {
                    continue;
                }
                total += 1;
                if legal.from(s) == dm.get(s, d) {
                    minimal_ok += 1;
                }
            }
        }
        let frac = minimal_ok as f64 / total as f64;
        assert!(
            (0.70..=0.92).contains(&frac),
            "minimal-legal fraction {frac} out of expected band"
        );
    }
}
