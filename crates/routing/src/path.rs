//! Switch-level paths and their properties.

use serde::{Deserialize, Serialize};

use regnet_topology::{DistanceMatrix, HostId, Orientation, Port, SwitchId, Topology};

/// A path through the switch graph: the ordered list of switches traversed.
///
/// A path with a single switch (`[s]`) represents intra-switch traffic
/// (source and destination hosts attached to the same switch).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SwitchPath(Vec<SwitchId>);

impl SwitchPath {
    /// Wrap an ordered switch list. Panics (debug) on an empty list.
    pub fn new(switches: Vec<SwitchId>) -> SwitchPath {
        debug_assert!(!switches.is_empty(), "a path visits at least one switch");
        SwitchPath(switches)
    }

    /// The switches visited, in order.
    pub fn switches(&self) -> &[SwitchId] {
        &self.0
    }

    /// First switch (source side).
    pub fn src(&self) -> SwitchId {
        self.0[0]
    }

    /// Last switch (destination side).
    pub fn dst(&self) -> SwitchId {
        *self.0.last().unwrap()
    }

    /// Number of switch-to-switch links traversed.
    pub fn len_links(&self) -> usize {
        self.0.len() - 1
    }

    /// Consecutive `(from, to)` hops.
    pub fn hops(&self) -> impl Iterator<Item = (SwitchId, SwitchId)> + '_ {
        self.0.windows(2).map(|w| (w[0], w[1]))
    }

    /// Is every hop between adjacent switches?
    pub fn is_connected(&self, topo: &Topology) -> bool {
        self.hops().all(|(a, b)| topo.port_to(a, b).is_some())
    }

    /// Does the path satisfy the up\*/down\* rule (zero or more up moves
    /// followed by zero or more down moves)?
    pub fn is_legal(&self, orient: &Orientation) -> bool {
        let mut seen_down = false;
        for (a, b) in self.hops() {
            if orient.is_up_move(a, b) {
                if seen_down {
                    return false;
                }
            } else {
                seen_down = true;
            }
        }
        true
    }

    /// Is the path as short as any path between its endpoints?
    pub fn is_minimal(&self, dm: &DistanceMatrix) -> bool {
        self.len_links() == dm.get(self.src(), self.dst()) as usize
    }

    /// Index of the first hop that performs a forbidden down→up transition,
    /// if any. This is where an in-transit buffer must be inserted.
    pub fn first_violation(&self, orient: &Orientation) -> Option<usize> {
        let mut seen_down = false;
        for (i, (a, b)) in self.hops().enumerate() {
            if orient.is_up_move(a, b) {
                if seen_down {
                    return Some(i);
                }
            } else {
                seen_down = true;
            }
        }
        None
    }

    /// Materialise the Myrinet source-route header for this path: one output
    /// port per switch traversed, ending with the port of the destination
    /// host on the final switch.
    ///
    /// With parallel links between two switches the port is chosen
    /// deterministically from `select`, a small integer that callers vary to
    /// spread traffic across the parallel cables.
    pub fn port_sequence(&self, topo: &Topology, dst_host: HostId, select: usize) -> Vec<Port> {
        let mut ports = Vec::with_capacity(self.0.len());
        for (a, b) in self.hops() {
            let choices = topo.ports_to(a, b);
            debug_assert!(!choices.is_empty(), "path not connected at {a}->{b}");
            ports.push(choices[select % choices.len()]);
        }
        debug_assert_eq!(topo.host_switch(dst_host), self.dst());
        ports.push(topo.host_port(dst_host));
        ports
    }
}

impl std::fmt::Display for SwitchPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for s in &self.0 {
            if !first {
                write!(f, "->")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::gen;

    fn ring4() -> (Topology, Orientation) {
        let mut b = regnet_topology::TopologyBuilder::new("ring4", 4);
        b.add_switches(4);
        for i in 0..4u32 {
            b.connect(SwitchId(i), SwitchId((i + 1) % 4)).unwrap();
        }
        b.attach_hosts_everywhere(1).unwrap();
        let topo = b.build().unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        (topo, orient)
    }

    #[test]
    fn legality_on_ring() {
        let (_, orient) = ring4();
        // Levels: 0->0, 1->1, 2->2, 3->1.
        let up_up = SwitchPath::new(vec![SwitchId(2), SwitchId(1), SwitchId(0)]);
        assert!(up_up.is_legal(&orient));
        let up_down = SwitchPath::new(vec![SwitchId(2), SwitchId(1), SwitchId(0), SwitchId(3)]);
        assert!(up_down.is_legal(&orient));
        let down_up = SwitchPath::new(vec![SwitchId(1), SwitchId(2), SwitchId(3)]);
        // 1->2 is down (level 1->2); 2->3 is up (level 2->1): forbidden.
        assert!(!down_up.is_legal(&orient));
        assert_eq!(down_up.first_violation(&orient), Some(1));
        assert_eq!(up_down.first_violation(&orient), None);
    }

    #[test]
    fn single_switch_path_is_trivially_legal_and_minimal() {
        let (topo, orient) = ring4();
        let dm = DistanceMatrix::compute(&topo);
        let p = SwitchPath::new(vec![SwitchId(2)]);
        assert!(p.is_legal(&orient));
        assert!(p.is_minimal(&dm));
        assert_eq!(p.len_links(), 0);
        assert!(p.is_connected(&topo));
    }

    #[test]
    fn minimality() {
        let (topo, _) = ring4();
        let dm = DistanceMatrix::compute(&topo);
        let short = SwitchPath::new(vec![SwitchId(0), SwitchId(1)]);
        assert!(short.is_minimal(&dm));
        let long = SwitchPath::new(vec![SwitchId(0), SwitchId(3), SwitchId(2), SwitchId(1)]);
        assert!(!long.is_minimal(&dm));
        assert!(long.is_connected(&topo));
    }

    #[test]
    fn port_sequence_ends_with_host_port() {
        let topo = gen::torus_2d(4, 4, 2).unwrap();
        let p = SwitchPath::new(vec![SwitchId(0), SwitchId(1), SwitchId(2)]);
        let dst = HostId(5); // host 5 = switch 2, second host
        let ports = p.port_sequence(&topo, dst, 0);
        assert_eq!(ports.len(), 3);
        assert_eq!(*ports.last().unwrap(), topo.host_port(dst));
        // First two ports route 0->1 and 1->2.
        assert_eq!(ports[0], topo.port_to(SwitchId(0), SwitchId(1)).unwrap());
        assert_eq!(ports[1], topo.port_to(SwitchId(1), SwitchId(2)).unwrap());
    }

    #[test]
    fn port_sequence_spreads_over_parallel_links() {
        let topo = gen::torus_2d(2, 2, 1).unwrap();
        let p = SwitchPath::new(vec![SwitchId(0), SwitchId(1)]);
        let a = p.port_sequence(&topo, HostId(1), 0);
        let b = p.port_sequence(&topo, HostId(1), 1);
        assert_ne!(a[0], b[0], "parallel links should be alternated");
        let c = p.port_sequence(&topo, HostId(1), 2);
        assert_eq!(a[0], c[0]);
    }

    #[test]
    fn display() {
        let p = SwitchPath::new(vec![SwitchId(4), SwitchId(6), SwitchId(1)]);
        assert_eq!(p.to_string(), "s4->s6->s1");
    }
}
