//! Enumeration and counting of graph-minimal paths.
//!
//! The in-transit buffer mechanism routes every packet on a *minimal* path;
//! the round-robin policy additionally wants several alternative minimal
//! paths per pair (the paper caps the routing table at 10 alternatives).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use regnet_topology::{DistanceMatrix, SwitchId, Topology};

use crate::path::SwitchPath;

/// Number of distinct minimal paths between two switches (dynamic program
/// over the shortest-path DAG). Saturates at `u64::MAX`.
pub fn count_minimal_paths(
    topo: &Topology,
    dm: &DistanceMatrix,
    src: SwitchId,
    dst: SwitchId,
) -> u64 {
    if src == dst {
        return 1;
    }
    let d = dm.get(src, dst);
    // counts[s] = number of minimal paths from s to dst, filled in by
    // increasing distance from dst.
    let mut order: Vec<SwitchId> = topo.switches().filter(|&s| dm.get(s, dst) <= d).collect();
    order.sort_unstable_by_key(|&s| dm.get(s, dst));
    let mut counts = vec![0u64; topo.num_switches()];
    counts[dst.idx()] = 1;
    for &s in order.iter().skip(1) {
        let ds = dm.get(s, dst);
        let mut total: u64 = 0;
        for (_, t, _) in topo.switch_neighbors(s) {
            if dm.get(t, dst) + 1 == ds {
                total = total.saturating_add(counts[t.idx()]);
            }
        }
        counts[s.idx()] = total;
    }
    counts[src.idx()]
}

/// Enumerate up to `k` distinct minimal paths from `src` to `dst`.
///
/// Paths are discovered by seeded randomised walks over the shortest-path
/// DAG, which yields a diverse sample (walks that share long prefixes are
/// no more likely than the DAG structure dictates). The result is
/// deterministic for a given `seed`, sorted for stability, and contains the
/// full set when fewer than `k` minimal paths exist.
pub fn k_minimal_paths(
    topo: &Topology,
    dm: &DistanceMatrix,
    src: SwitchId,
    dst: SwitchId,
    k: usize,
    seed: u64,
) -> Vec<SwitchPath> {
    if k == 0 {
        return Vec::new();
    }
    if src == dst {
        return vec![SwitchPath::new(vec![src])];
    }
    let total = count_minimal_paths(topo, dm, src, dst);
    let want = (total.min(k as u64)) as usize;

    let mut found: Vec<Vec<SwitchId>> = Vec::with_capacity(want);
    if total <= k as u64 * 4 {
        // Few enough paths: enumerate exhaustively by DFS, then subsample.
        let mut stack = vec![src];
        dfs_all(topo, dm, dst, &mut stack, &mut found, k * 4);
    } else {
        // Sample by randomised walks until `want` distinct paths are found.
        let mut rng = SmallRng::seed_from_u64(seed ^ ((src.0 as u64) << 32) ^ dst.0 as u64);
        let mut tries = 0;
        let max_tries = 200 * k;
        while found.len() < want && tries < max_tries {
            tries += 1;
            let mut walk = vec![src];
            let mut cur = src;
            while cur != dst {
                let dc = dm.get(cur, dst);
                let nexts: Vec<SwitchId> = topo
                    .switch_neighbors(cur)
                    .filter(|&(_, t, _)| dm.get(t, dst) + 1 == dc)
                    .map(|(_, t, _)| t)
                    .collect();
                cur = nexts[rng.gen_range(0..nexts.len())];
                walk.push(cur);
            }
            if !found.contains(&walk) {
                found.push(walk);
            }
        }
    }
    found.sort_unstable();
    found.dedup();
    found.truncate(k);
    found.into_iter().map(SwitchPath::new).collect()
}

fn dfs_all(
    topo: &Topology,
    dm: &DistanceMatrix,
    dst: SwitchId,
    stack: &mut Vec<SwitchId>,
    out: &mut Vec<Vec<SwitchId>>,
    cap: usize,
) {
    if out.len() >= cap {
        return;
    }
    let cur = *stack.last().unwrap();
    if cur == dst {
        out.push(stack.clone());
        return;
    }
    let dc = dm.get(cur, dst);
    let mut nexts: Vec<SwitchId> = topo
        .switch_neighbors(cur)
        .filter(|&(_, t, _)| dm.get(t, dst) + 1 == dc)
        .map(|(_, t, _)| t)
        .collect();
    nexts.sort_unstable();
    nexts.dedup();
    for t in nexts {
        stack.push(t);
        dfs_all(topo, dm, dst, stack, out, cap);
        stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::gen;

    #[test]
    fn counts_on_torus() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        // Straight line: exactly one minimal path.
        assert_eq!(count_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(3)), 1);
        // (0,0) -> (2,2): C(4,2) = 6 lattice paths.
        assert_eq!(
            count_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(18)),
            6
        );
        // Same switch: one (empty) path.
        assert_eq!(count_minimal_paths(&topo, &dm, SwitchId(5), SwitchId(5)), 1);
    }

    #[test]
    fn enumeration_is_minimal_and_distinct() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let paths = k_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(18), 10, 7);
        assert_eq!(paths.len(), 6); // only 6 exist
        for p in &paths {
            assert!(p.is_connected(&topo));
            assert!(p.is_minimal(&dm));
            assert_eq!(p.src(), SwitchId(0));
            assert_eq!(p.dst(), SwitchId(18));
        }
        let mut dedup = paths.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), paths.len());
    }

    #[test]
    fn caps_at_k() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        // (0,0) -> (4,4) wraps either way: lots of minimal paths.
        let n = count_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(36));
        assert!(n > 10, "{n}");
        let paths = k_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(36), 10, 3);
        assert_eq!(paths.len(), 10);
        for p in &paths {
            assert!(p.is_minimal(&dm));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let a = k_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(36), 10, 3);
        let b = k_minimal_paths(&topo, &dm, SwitchId(0), SwitchId(36), 10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn same_switch_pair() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        let p = k_minimal_paths(&topo, &dm, SwitchId(2), SwitchId(2), 10, 0);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].len_links(), 0);
    }

    #[test]
    fn express_torus_counts_consistent() {
        let topo = gen::torus_2d_express(8, 8, 1).unwrap();
        let dm = DistanceMatrix::compute(&topo);
        for (s, d) in [(0u32, 36u32), (0, 9), (3, 60)] {
            let n = count_minimal_paths(&topo, &dm, SwitchId(s), SwitchId(d));
            let paths = k_minimal_paths(&topo, &dm, SwitchId(s), SwitchId(d), 64, 5);
            if n <= 64 {
                assert_eq!(paths.len() as u64, n, "{s}->{d}");
            } else {
                assert_eq!(paths.len(), 64);
            }
        }
    }
}
