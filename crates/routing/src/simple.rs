//! Emulation of Myricom's `simple_routes` route selection.
//!
//! The paper (section 4.5) describes the GM `simple_routes` program as:
//! "computes the entire set of up\*/down\* paths and then selects the final
//! set of up\*/down\* paths (one path for every source-destination pair)
//! trying to balance traffic among all the links. This is done by using
//! weighted links."
//!
//! We reproduce that behaviour: for every ordered switch pair we walk a
//! shortest *legal* path hop by hop, always choosing the next hop (among
//! those on some shortest legal path) whose directed channel has accumulated
//! the least weight, then charging the chosen channels. Ties break on the
//! lower switch id and lower link id, which keeps the whole computation
//! deterministic.

use regnet_topology::{LinkId, Orientation, SwitchId, Topology};

use crate::legal::{LegalDistances, Phase};
use crate::path::SwitchPath;

/// Options for the [`simple_routes`] computation.
#[derive(Debug, Clone)]
pub struct SimpleRoutesConfig {
    /// Weight added to each directed channel a selected route crosses.
    pub weight_increment: u32,
}

impl Default for SimpleRoutesConfig {
    fn default() -> Self {
        SimpleRoutesConfig {
            weight_increment: 1,
        }
    }
}

/// One selected path per ordered switch pair, indexed `[src][dst]`.
#[derive(Debug, Clone)]
pub struct PairPaths {
    n: usize,
    paths: Vec<SwitchPath>,
}

impl PairPaths {
    /// The selected path from `src` to `dst`. For `src == dst` this is the
    /// trivial single-switch path.
    pub fn get(&self, src: SwitchId, dst: SwitchId) -> &SwitchPath {
        &self.paths[src.idx() * self.n + dst.idx()]
    }

    /// Iterate over all ordered distinct pairs with their paths.
    pub fn iter(&self) -> impl Iterator<Item = (SwitchId, SwitchId, &SwitchPath)> + '_ {
        (0..self.n).flat_map(move |s| {
            (0..self.n).filter_map(move |d| {
                if s == d {
                    None
                } else {
                    Some((
                        SwitchId(s as u32),
                        SwitchId(d as u32),
                        &self.paths[s * self.n + d],
                    ))
                }
            })
        })
    }

    /// Average path length in links over ordered distinct pairs.
    pub fn average_length(&self) -> f64 {
        let (mut sum, mut cnt) = (0usize, 0usize);
        for (_, _, p) in self.iter() {
            sum += p.len_links();
            cnt += 1;
        }
        sum as f64 / cnt.max(1) as f64
    }
}

/// Directed-channel weight table: two slots per link (one per direction).
struct Weights {
    w: Vec<u32>,
}

impl Weights {
    fn new(topo: &Topology) -> Weights {
        Weights {
            w: vec![0; topo.num_links() * 2],
        }
    }

    fn slot(link: LinkId, from: SwitchId, to: SwitchId) -> usize {
        // Direction bit: travelling from the lower-id switch end or not.
        link.idx() * 2 + usize::from(from > to)
    }

    fn get(&self, link: LinkId, from: SwitchId, to: SwitchId) -> u32 {
        self.w[Self::slot(link, from, to)]
    }

    fn add(&mut self, link: LinkId, from: SwitchId, to: SwitchId, inc: u32) {
        self.w[Self::slot(link, from, to)] += inc;
    }
}

/// Compute one balanced up\*/down\* route per ordered switch pair.
///
/// Routes are selected among the *shortest legal* paths; like the real
/// `simple_routes`, the result is deterministic and attempts to even out the
/// per-channel route counts.
pub fn simple_routes(topo: &Topology, orient: &Orientation, cfg: &SimpleRoutesConfig) -> PairPaths {
    let n = topo.num_switches();
    let legal_all = LegalDistances::all_destinations(topo, orient);
    let mut weights = Weights::new(topo);
    let mut paths = Vec::with_capacity(n * n);

    for s in 0..n as u32 {
        for d in 0..n as u32 {
            let (src, dst) = (SwitchId(s), SwitchId(d));
            if src == dst {
                paths.push(SwitchPath::new(vec![src]));
                continue;
            }
            let legal = &legal_all[dst.idx()];
            let mut cur = src;
            let mut phase = Phase::Up;
            let mut walk = vec![src];
            let mut chosen_links: Vec<(LinkId, SwitchId, SwitchId)> = Vec::new();
            while cur != dst {
                let remaining = legal.from_state(cur, phase);
                debug_assert!(remaining > 0 && remaining != u16::MAX);
                // Candidate next hops: neighbours reachable by a legal move
                // that lie on some shortest legal path.
                let mut best: Option<(u32, SwitchId, LinkId)> = None;
                for (_, t, link) in topo.switch_neighbors(cur) {
                    let up = orient.is_up_move(cur, t);
                    if phase == Phase::Down && up {
                        continue; // down -> up forbidden
                    }
                    let next_phase = if up { Phase::Up } else { Phase::Down };
                    if legal.from_state(t, next_phase) != remaining - 1 {
                        continue;
                    }
                    let w = weights.get(link, cur, t);
                    let cand = (w, t, link);
                    best = Some(match best {
                        None => cand,
                        Some(b) => {
                            if (cand.0, cand.1, cand.2) < (b.0, b.1, b.2) {
                                cand
                            } else {
                                b
                            }
                        }
                    });
                }
                let (_, t, link) =
                    best.expect("legal distance > 0 implies a legal next hop exists");
                chosen_links.push((link, cur, t));
                if !orient.is_up_move(cur, t) {
                    phase = Phase::Down;
                }
                cur = t;
                walk.push(t);
            }
            for (link, from, to) in chosen_links {
                weights.add(link, from, to, cfg.weight_increment);
            }
            paths.push(SwitchPath::new(walk));
        }
    }

    PairPaths { n, paths }
}

#[cfg(test)]
mod tests {
    use super::*;
    use regnet_topology::{gen, DistanceMatrix};

    fn routes_for(topo: &Topology) -> (PairPaths, Orientation) {
        let orient = Orientation::compute(topo, SwitchId(0));
        let routes = simple_routes(topo, &orient, &SimpleRoutesConfig::default());
        (routes, orient)
    }

    #[test]
    fn all_routes_are_legal_and_connected() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let (routes, orient) = routes_for(&topo);
        for (s, d, p) in routes.iter() {
            assert_eq!(p.src(), s);
            assert_eq!(p.dst(), d);
            assert!(p.is_connected(&topo), "{p} not connected");
            assert!(p.is_legal(&orient), "{p} not legal");
        }
    }

    #[test]
    fn routes_are_shortest_legal() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let (routes, orient) = routes_for(&topo);
        for d in topo.switches() {
            let legal = LegalDistances::to_dest(&topo, &orient, d);
            for s in topo.switches() {
                if s != d {
                    assert_eq!(
                        routes.get(s, d).len_links(),
                        legal.from(s) as usize,
                        "{s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_minimal_fraction_matches_paper() {
        // Paper: "80% of the paths computed by the original Myrinet routing
        // algorithm are minimal paths" on the 8x8 torus.
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let (routes, _) = routes_for(&topo);
        let dm = DistanceMatrix::compute(&topo);
        let total = 64 * 63;
        let minimal = routes.iter().filter(|(_, _, p)| p.is_minimal(&dm)).count();
        let frac = minimal as f64 / total as f64;
        assert!(
            (0.72..=0.88).contains(&frac),
            "minimal fraction {frac}, paper says ~0.80"
        );
    }

    #[test]
    fn torus_average_distance_matches_paper() {
        // Paper: average up*/down* distance 4.57 links vs 4.06 minimal on
        // the 8x8 torus (host pairs; switch pairs differ only through the
        // same-switch pairs, which contribute zero either way).
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let (routes, _) = routes_for(&topo);
        let avg = routes.average_length();
        assert!(
            (4.3..=4.9).contains(&avg),
            "avg up*/down* distance {avg}, paper says 4.57"
        );
        let dm = DistanceMatrix::compute(&topo);
        assert!((dm.average() - 4.06).abs() < 0.1, "{}", dm.average());
    }

    #[test]
    fn cplant_routes_are_all_minimal() {
        // Paper: "UP/DOWN always uses minimal paths in this topology".
        // Our reconstruction should be at least overwhelmingly minimal.
        let topo = gen::cplant().unwrap();
        let (routes, _) = routes_for(&topo);
        let dm = DistanceMatrix::compute(&topo);
        let total = routes.iter().count();
        let minimal = routes.iter().filter(|(_, _, p)| p.is_minimal(&dm)).count();
        let frac = minimal as f64 / total as f64;
        assert!(frac > 0.9, "cplant minimal fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let topo = gen::torus_2d(4, 4, 1).unwrap();
        let (a, _) = routes_for(&topo);
        let (b, _) = routes_for(&topo);
        for (s, d, p) in a.iter() {
            assert_eq!(p, b.get(s, d));
        }
    }

    #[test]
    fn balancing_beats_naive_first_choice() {
        // With weights disabled (increment 0) the walk always takes the
        // lowest-id candidate; with balancing on, the maximum number of
        // routes crossing any single directed channel must not increase.
        let topo = gen::torus_2d(8, 8, 1).unwrap();
        let orient = Orientation::compute(&topo, SwitchId(0));
        let max_chan_load = |routes: &PairPaths| -> usize {
            let mut load = std::collections::HashMap::new();
            for (_, _, p) in routes.iter() {
                for (a, b) in p.hops() {
                    *load.entry((a, b)).or_insert(0usize) += 1;
                }
            }
            load.values().copied().max().unwrap()
        };
        let balanced = simple_routes(&topo, &orient, &SimpleRoutesConfig::default());
        let naive = simple_routes(
            &topo,
            &orient,
            &SimpleRoutesConfig {
                weight_increment: 0,
            },
        );
        assert!(max_chan_load(&balanced) <= max_chan_load(&naive));
    }
}
