//! Structural tests of up*/down* routing on the classical topologies:
//! where the up*/down* rule does and does not forbid minimal paths.

use regnet_routing::{simple_routes, LegalDistances, Phase, SimpleRoutesConfig, SwitchPath};
use regnet_topology::{gen, DistanceMatrix, Orientation, SwitchId};

/// On a hypercube rooted at node 0, every minimal path can be made legal:
/// clear the bits towards the root first (up moves), then set the bits away
/// from it (down moves). The legal distance therefore always equals the
/// Hamming distance.
#[test]
fn hypercube_minimal_paths_are_never_forbidden() {
    let topo = gen::hypercube(4, 1).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    let dm = DistanceMatrix::compute(&topo);
    for d in topo.switches() {
        let legal = LegalDistances::to_dest(&topo, &orient, d);
        for s in topo.switches() {
            assert_eq!(
                legal.from(s),
                dm.get(s, d),
                "hypercube pair {s}->{d} should have a minimal legal path"
            );
        }
    }
}

/// On a mesh rooted at a corner, up*/down* is also non-restrictive: levels
/// are monotone along any minimal path direction change... in fact the
/// corner-rooted mesh admits minimal legal paths for all pairs.
#[test]
fn corner_rooted_mesh_is_unrestricted() {
    let topo = gen::mesh_2d(5, 5, 1).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    let dm = DistanceMatrix::compute(&topo);
    for d in topo.switches() {
        let legal = LegalDistances::to_dest(&topo, &orient, d);
        for s in topo.switches() {
            assert_eq!(legal.from(s), dm.get(s, d), "mesh pair {s}->{d}");
        }
    }
}

/// The torus wraparound is exactly what up*/down* cannot exploit: some
/// pairs must lose their minimal paths, and they concentrate diametrically
/// opposite the root.
#[test]
fn torus_forbidden_pairs_cluster_far_from_root() {
    let topo = gen::torus_2d(8, 8, 1).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    let dm = DistanceMatrix::compute(&topo);
    let mut forbidden: Vec<(SwitchId, SwitchId)> = Vec::new();
    for d in topo.switches() {
        let legal = LegalDistances::to_dest(&topo, &orient, d);
        for s in topo.switches() {
            if s != d && legal.from(s) > dm.get(s, d) {
                forbidden.push((s, d));
            }
        }
    }
    assert!(!forbidden.is_empty());
    // Forbidden pairs involve switches whose tree level is high (far from
    // the root): their minimal paths cross the "level ridge".
    let avg_level: f64 = forbidden
        .iter()
        .map(|&(s, d)| (orient.level(s) + orient.level(d)) as f64 / 2.0)
        .sum::<f64>()
        / forbidden.len() as f64;
    let overall: f64 = topo.switches().map(|s| orient.level(s) as f64).sum::<f64>() / 64.0;
    assert!(
        avg_level > overall,
        "forbidden pairs avg level {avg_level:.2} should exceed network avg {overall:.2}"
    );
}

/// simple_routes on CPLANT: the paper says all its up*/down* routes are
/// minimal; verify path lengths equal legal distances equal (mostly)
/// graph distances.
#[test]
fn cplant_routes_lengths() {
    let topo = gen::cplant().unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    let routes = simple_routes(&topo, &orient, &SimpleRoutesConfig::default());
    let dm = DistanceMatrix::compute(&topo);
    let mut non_minimal = 0;
    let mut total = 0;
    for (s, d, p) in routes.iter() {
        assert!(p.is_legal(&orient));
        total += 1;
        if p.len_links() != dm.get(s, d) as usize {
            non_minimal += 1;
        }
    }
    assert!(
        (non_minimal as f64) < total as f64 * 0.1,
        "{non_minimal}/{total} non-minimal CPLANT routes"
    );
}

/// Phase-state distances: the Down-phase distance to a destination is
/// infinite exactly when no pure-down path exists.
#[test]
fn down_phase_reaches_only_descendant_like_targets() {
    let topo = gen::torus_2d(4, 4, 1).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    // From the root in Down phase, only pure-down paths are allowed; the
    // root is the top of the up-graph so it can still reach everything...
    // verify at least that Down-phase distances are finite iff a monotone
    // down path exists, by checking consistency: finite Down distance
    // implies a legal path whose first move is down.
    for d in topo.switches() {
        let legal = LegalDistances::to_dest(&topo, &orient, d);
        for s in topo.switches() {
            if s == d {
                continue;
            }
            let down = legal.from_state(s, Phase::Down);
            if down != u16::MAX {
                // There must exist a neighbour t with a down move s->t on a
                // shortest remaining path.
                let ok = topo.switch_neighbors(s).any(|(_, t, _)| {
                    let td = legal.from_state(t, Phase::Down);
                    !orient.is_up_move(s, t) && td != u16::MAX && td + 1 == down
                });
                assert!(ok, "inconsistent Down-phase distance at {s}->{d}");
            }
        }
    }
}

/// A legality cross-check: every shortest legal path reported by
/// simple_routes verifies with `SwitchPath::is_legal`, and mutating one hop
/// to violate the rule is caught.
#[test]
fn legality_checker_catches_violations() {
    let topo = gen::torus_2d(4, 4, 1).unwrap();
    let orient = Orientation::compute(&topo, SwitchId(0));
    // Construct a known violation: a down move followed by an up move.
    // Find any switch with a down-neighbour that has an up-neighbour.
    let mut found = false;
    'outer: for a in topo.switches() {
        for (_, b, _) in topo.switch_neighbors(a) {
            if orient.is_up_move(a, b) {
                continue;
            }
            for (_, c, _) in topo.switch_neighbors(b) {
                if c != a && orient.is_up_move(b, c) {
                    let p = SwitchPath::new(vec![a, b, c]);
                    assert!(!p.is_legal(&orient));
                    assert_eq!(p.first_violation(&orient), Some(1));
                    found = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(found, "no down->up pattern found on a torus?!");
}
