//! Targeted "what-if" queries: *given this topology, scheme, pattern and
//! fault plan, what is the saturation load?* — answered by a geometric
//! bracket-and-bisect search over offered load instead of running a full
//! grid.
//!
//! Every probe is an ordinary campaign cell run through the same
//! [`ResultStore`], so probes are checkpointed, deduplicated against any
//! grid cells that already landed, and a repeated query answers entirely
//! from cache (zero cells run).

use crate::cell::{run_cell, CellResult};
use crate::spec::CellSpec;
use crate::store::ResultStore;

/// A saturation-point query. The `cell` is the template: its `load`
/// field is ignored (the search sets it per probe); everything else —
/// topology, scheme, pattern, seed, window, scheduler, faults — defines
/// the scenario being asked about.
#[derive(Debug, Clone)]
pub struct WhatIfQuery {
    pub cell: CellSpec,
    /// First offered load probed (flits/ns/switch).
    pub start: f64,
    /// Bracket expansion/shrink factor (> 1).
    pub growth: f64,
    /// A probe is saturated when accepted < ratio × offered (same 0.92
    /// convention as the aggregate summary).
    pub ratio: f64,
    /// Stop once `hi/lo - 1 <= rel_tol`.
    pub rel_tol: f64,
    /// Hard cap on probes (bracketing + bisection combined).
    pub max_probes: usize,
}

impl WhatIfQuery {
    pub fn new(cell: CellSpec) -> WhatIfQuery {
        WhatIfQuery {
            cell,
            start: 0.004,
            growth: 2.0,
            ratio: crate::aggregate::SATURATION_RATIO,
            rel_tol: 0.05,
            max_probes: 24,
        }
    }
}

/// The bisection's answer: saturation lies in `[lo, hi]`.
#[derive(Debug)]
pub struct WhatIfResult {
    /// Highest probed load that was *not* saturated (0.0 if even the
    /// smallest probe saturated).
    pub lo: f64,
    /// Lowest probed load that *was* saturated.
    pub hi: f64,
    /// Best throughput (accepted traffic) seen across the probes.
    pub throughput: f64,
    /// Every probe, in execution order.
    pub probes: Vec<CellResult>,
    /// Probes actually simulated by this query.
    pub ran: usize,
    /// Probes answered from the store.
    pub cached: usize,
    /// True when the bracket converged to `rel_tol` (false = probe
    /// budget exhausted first; `[lo, hi]` is still a valid bracket).
    pub converged: bool,
}

impl WhatIfResult {
    /// Point estimate: geometric midpoint of the bracket.
    pub fn saturation_load(&self) -> f64 {
        if self.lo <= 0.0 {
            return self.hi;
        }
        (self.lo * self.hi).sqrt()
    }
}

/// Run the query. Probes go through `store` (read *and* write), so a
/// second identical query runs zero cells; `on_probe` fires after each
/// probe with (load, saturated?, from-cache?).
pub fn what_if(
    query: &WhatIfQuery,
    store: &ResultStore,
    mut on_probe: impl FnMut(f64, bool, bool),
) -> Result<WhatIfResult, String> {
    if query.growth.is_nan() || query.growth <= 1.0 {
        return Err(format!("what-if growth {} must be > 1", query.growth));
    }
    if query.start.is_nan() || query.start <= 0.0 {
        return Err(format!(
            "what-if start load {} must be positive",
            query.start
        ));
    }
    let mut ran = 0usize;
    let mut cached = 0usize;
    let mut probes: Vec<CellResult> = Vec::new();
    let mut throughput = 0.0f64;

    let mut probe = |load: f64,
                     ran: &mut usize,
                     cached: &mut usize,
                     probes: &mut Vec<CellResult>,
                     throughput: &mut f64|
     -> Result<bool, String> {
        let spec = CellSpec {
            load,
            ..query.cell.clone()
        };
        let hash = spec.hash_hex();
        let (result, from_cache) = if store.contains(&hash) {
            (store.load(&hash)?, true)
        } else {
            let r = run_cell(&spec)?;
            store.save(&r)?;
            (r, false)
        };
        if from_cache {
            *cached += 1;
        } else {
            *ran += 1;
        }
        let saturated = result.accepted < load * query.ratio;
        *throughput = throughput.max(result.accepted);
        on_probe(load, saturated, from_cache);
        probes.push(result);
        Ok(saturated)
    };

    // Phase 1: bracket. Expand upward from `start` until a saturated
    // load appears; if `start` itself is saturated, shrink downward
    // until an unsaturated load appears (or give up at lo = 0).
    let mut lo;
    let mut hi;
    let budget = query.max_probes;
    if probe(
        query.start,
        &mut ran,
        &mut cached,
        &mut probes,
        &mut throughput,
    )? {
        hi = query.start;
        lo = 0.0;
        let mut load = query.start / query.growth;
        while probes.len() < budget {
            if probe(load, &mut ran, &mut cached, &mut probes, &mut throughput)? {
                hi = load;
                load /= query.growth;
            } else {
                lo = load;
                break;
            }
        }
    } else {
        lo = query.start;
        hi = f64::INFINITY;
        let mut load = query.start * query.growth;
        while probes.len() < budget {
            if probe(load, &mut ran, &mut cached, &mut probes, &mut throughput)? {
                hi = load;
                break;
            } else {
                lo = load;
                load *= query.growth;
            }
        }
    }
    if !hi.is_finite() || lo <= 0.0 {
        // No bracket inside the budget; report what we know.
        return Ok(WhatIfResult {
            lo,
            hi: if hi.is_finite() {
                hi
            } else {
                lo * query.growth
            },
            throughput,
            probes,
            ran,
            cached,
            converged: false,
        });
    }

    // Phase 2: bisect the bracket on the geometric midpoint.
    let mut converged = hi / lo - 1.0 <= query.rel_tol;
    while !converged && probes.len() < budget {
        let mid = (lo * hi).sqrt();
        if probe(mid, &mut ran, &mut cached, &mut probes, &mut throughput)? {
            hi = mid;
        } else {
            lo = mid;
        }
        converged = hi / lo - 1.0 <= query.rel_tol;
    }

    Ok(WhatIfResult {
        lo,
        hi,
        throughput,
        probes,
        ran,
        cached,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::TopoSpec;
    use regnet_core::RoutingScheme;
    use regnet_netsim::Scheduler;
    use regnet_traffic::PatternSpec;

    fn template() -> CellSpec {
        CellSpec {
            topo: TopoSpec::TorusCustom {
                rows: 4,
                cols: 4,
                hosts: 2,
            },
            scheme: RoutingScheme::UpDown,
            pattern: PatternSpec::Uniform,
            load: 0.0, // ignored by the search
            seed: 3,
            warmup_cycles: 3_000,
            measure_cycles: 15_000,
            payload_flits: 64,
            scheduler: Scheduler::ActiveSet,
            goodput_interval: None,
            reconfig_latency_cycles: None,
            faults: None,
        }
    }

    #[test]
    fn bisection_converges_and_second_query_is_all_cache() {
        let dir = std::env::temp_dir().join(format!("regnet-whatif-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).unwrap();
        let query = WhatIfQuery {
            start: 0.004,
            rel_tol: 0.25,
            ..WhatIfQuery::new(template())
        };
        let first = what_if(&query, &store, |_, _, _| {}).unwrap();
        assert!(first.ran > 0);
        assert_eq!(first.cached, 0);
        assert!(first.hi > first.lo, "bracket must be ordered");
        assert!(first.lo > 0.0, "a 4x4 torus accepts 0.004 easily");
        assert!(first.converged, "0.25 tolerance should converge in budget");
        let sat = first.saturation_load();
        assert!(sat >= first.lo && sat <= first.hi);
        assert!(first.throughput > 0.0);
        // Re-ask: every probe must come from the store.
        let second = what_if(&query, &store, |_, _, from_cache| {
            assert!(from_cache, "second query must not simulate anything")
        })
        .unwrap();
        assert_eq!(second.ran, 0);
        assert_eq!(second.cached, first.ran + first.cached);
        assert_eq!(second.lo, first.lo);
        assert_eq!(second.hi, first.hi);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_bad_parameters() {
        let dir = std::env::temp_dir().join(format!("regnet-whatif2-{}", std::process::id()));
        let store = ResultStore::open(&dir).unwrap();
        let mut q = WhatIfQuery::new(template());
        q.growth = 0.9;
        assert!(what_if(&q, &store, |_, _, _| {}).is_err());
        let mut q = WhatIfQuery::new(template());
        q.start = 0.0;
        assert!(what_if(&q, &store, |_, _, _| {}).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
