//! One shared stderr progress printer for every long-running binary
//! (`campaign`, `fault_sweep`, `bench_report`), replacing their
//! hand-rolled status lines: `[label] done/total (elapsed, ETA) detail`,
//! with the ETA extrapolated from completed-item wall times.

use std::time::Instant;

/// Incremental progress over a known number of items.
pub struct Progress {
    label: String,
    total: usize,
    done: usize,
    started: Instant,
    /// Suppress output (tests, `--quiet`).
    quiet: bool,
}

/// Render a duration compactly (`850ms`, `12.3s`, `4m07s`).
pub fn fmt_duration(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0}ms", secs * 1000.0)
    } else if secs < 120.0 {
        format!("{secs:.1}s")
    } else {
        let m = (secs / 60.0).floor();
        format!("{m:.0}m{:02.0}s", secs - m * 60.0)
    }
}

impl Progress {
    /// Start a progress report over `total` items.
    pub fn start(label: impl Into<String>, total: usize) -> Progress {
        let p = Progress {
            label: label.into(),
            total,
            done: 0,
            started: Instant::now(),
            quiet: false,
        };
        if total > 0 {
            eprintln!("[{}] 0/{} (ETA --:--)", p.label, p.total);
        }
        p
    }

    /// A silent progress tracker (still computes ETA for callers).
    pub fn start_quiet(label: impl Into<String>, total: usize) -> Progress {
        Progress {
            label: label.into(),
            total,
            done: 0,
            started: Instant::now(),
            quiet: true,
        }
    }

    /// One-off status line in the same style (phase announcements).
    pub fn announce(label: &str, msg: &str) {
        eprintln!("[{label}] {msg}");
    }

    /// Record one finished item and print the updated line.
    pub fn step(&mut self, detail: &str) {
        self.done += 1;
        if self.quiet {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let mut line = format!(
            "[{}] {}/{} ({} elapsed",
            self.label,
            self.done,
            self.total,
            fmt_duration(elapsed)
        );
        match self.eta_secs() {
            Some(eta) => line.push_str(&format!(", ETA {}", fmt_duration(eta))),
            // No estimate yet (nothing landed) but work remains: show a
            // placeholder instead of silently dropping the field.
            None if self.done < self.total => line.push_str(", ETA --:--"),
            None => {}
        }
        line.push(')');
        if !detail.is_empty() {
            line.push(' ');
            line.push_str(detail);
        }
        eprintln!("{line}");
    }

    /// Items completed so far.
    pub fn done(&self) -> usize {
        self.done
    }

    /// Estimated seconds remaining, extrapolated from the mean wall time
    /// of completed items. `None` until at least one item finished or
    /// after everything is done.
    pub fn eta_secs(&self) -> Option<f64> {
        if self.done == 0 || self.done >= self.total {
            return None;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        Some(elapsed / self.done as f64 * (self.total - self.done) as f64)
    }

    /// Final line with the total wall time.
    pub fn finish(&self, msg: &str) {
        if self.quiet {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        if msg.is_empty() {
            eprintln!(
                "[{}] done: {}/{} in {}",
                self.label,
                self.done,
                self.total,
                fmt_duration(elapsed)
            );
        } else {
            eprintln!(
                "[{}] done: {}/{} in {} — {msg}",
                self.label,
                self.done,
                self.total,
                fmt_duration(elapsed)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_extrapolates_from_completed_items() {
        let mut p = Progress::start_quiet("t", 4);
        assert_eq!(p.eta_secs(), None, "no ETA before the first item");
        p.step("");
        let eta = p.eta_secs().expect("ETA after one item");
        // 1 of 4 done: remaining ≈ 3 × elapsed-per-item ≥ 0.
        assert!(eta >= 0.0);
        p.step("");
        p.step("");
        p.step("");
        assert_eq!(p.done(), 4);
        assert_eq!(p.eta_secs(), None, "no ETA once everything finished");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(0.25), "250ms");
        assert_eq!(fmt_duration(12.34), "12.3s");
        assert_eq!(fmt_duration(247.0), "4m07s");
    }
}
