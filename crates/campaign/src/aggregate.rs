//! Aggregation: turn the store's per-cell checkpoints into derived
//! artifacts — latency-vs-load curves per group, a saturation summary,
//! and goodput-dip time series — exported through `regnet_metrics` as
//! `.dat`/`.gp`/JSON.
//!
//! Aggregation is a pure function of (plan, store contents): cells are
//! grouped by their *family* (canonical key minus the load axis) inside
//! each declared group, families are ordered by key and points by load,
//! so the exported artifacts are byte-identical no matter which worker
//! finished which cell first — and identical between an uninterrupted
//! run and a killed-then-resumed one. Re-exporting on every completed
//! cell is how the campaign binary "streams" curves as they land.

use std::collections::BTreeMap;
use std::path::Path;

use regnet_metrics::{write_figure, write_time_series, Curve, CurvePoint, TimeSeries};
use serde::Serialize;

use crate::cell::CellResult;
use crate::spec::{pattern_key, RunPlan};

/// Curves of one declared group.
#[derive(Debug, Clone)]
pub struct GroupCurves {
    pub group: String,
    pub curves: Vec<Curve>,
}

/// One line of the saturation summary table.
#[derive(Debug, Clone, Serialize)]
pub struct SaturationRow {
    pub group: String,
    pub label: String,
    /// Highest accepted traffic seen across the family's loads.
    pub throughput: f64,
    /// First offered load with accepted < ratio × offered, if any.
    pub saturation_offered: Option<f64>,
    pub zero_load_latency_ns: Option<f64>,
    /// Points aggregated so far (grows as the campaign streams).
    pub points: usize,
}

/// Everything derived from the results landed so far.
#[derive(Debug, Clone)]
pub struct Aggregates {
    pub groups: Vec<GroupCurves>,
    pub summary: Vec<SaturationRow>,
    /// Goodput time series per cell that recorded one, keyed by hash.
    pub goodput: Vec<(String, TimeSeries)>,
    pub cells_done: usize,
    pub cells_total: usize,
}

/// Saturation ratio used in the summary (the repo's paper-wide
/// convention: a point is saturated when accepted < 0.92 × offered).
pub const SATURATION_RATIO: f64 = 0.92;

fn to_point(r: &CellResult) -> CurvePoint {
    CurvePoint {
        offered: r.offered,
        accepted: r.accepted,
        avg_latency_ns: r.avg_latency_ns,
        p99_latency_ns: r.p99_latency_ns,
        avg_total_latency_ns: r.avg_total_latency_ns,
        avg_itbs_per_msg: r.avg_itbs_per_msg,
        delivered: r.delivered,
    }
}

/// Compute the aggregates for every result present in `results` (partial
/// campaigns are fine — that is the streaming case).
pub fn aggregate(plan: &RunPlan, results: &BTreeMap<String, CellResult>) -> Aggregates {
    // group → family key → (display label, points).
    let mut groups: BTreeMap<&str, BTreeMap<String, (String, Vec<CurvePoint>)>> = BTreeMap::new();
    // How many distinct seeds/schedulers a group spans (labels mention
    // them only when they actually distinguish cells).
    let mut group_seeds: BTreeMap<&str, std::collections::BTreeSet<u64>> = BTreeMap::new();
    let mut group_scheds: BTreeMap<&str, std::collections::BTreeSet<String>> = BTreeMap::new();
    let mut done = 0usize;
    for cell in &plan.cells {
        if !results.contains_key(&cell.hash) {
            continue;
        }
        done += 1;
        for group in &cell.groups {
            group_seeds.entry(group).or_default().insert(cell.spec.seed);
            group_scheds
                .entry(group)
                .or_default()
                .insert(crate::spec::scheduler_key(cell.spec.scheduler));
        }
    }
    for cell in &plan.cells {
        let Some(result) = results.get(&cell.hash) else {
            continue;
        };
        let spec = &cell.spec;
        // Family: every identity field except the load axis.
        let family: String = spec
            .canonical_key()
            .split(';')
            .filter(|f| !f.starts_with("load="))
            .collect::<Vec<_>>()
            .join(";");
        for group in &cell.groups {
            let many_seeds = group_seeds.get(group.as_str()).is_some_and(|s| s.len() > 1);
            let many_scheds = group_scheds
                .get(group.as_str())
                .is_some_and(|s| s.len() > 1);
            let mut label = format!(
                "{} {} {}",
                spec.topo.key(),
                spec.scheme.label(),
                pattern_key(&spec.pattern)
            );
            if many_seeds {
                label.push_str(&format!(" seed={}", spec.seed));
            }
            if many_scheds {
                label.push_str(&format!(
                    " [{}]",
                    crate::spec::scheduler_key(spec.scheduler)
                ));
            }
            if let Some(f) = &spec.faults {
                label.push_str(&format!(" +{}", f.label));
            }
            groups
                .entry(group)
                .or_default()
                .entry(family.clone())
                .or_insert_with(|| (label, Vec::new()))
                .1
                .push(to_point(result));
        }
    }

    let mut out_groups = Vec::new();
    let mut summary = Vec::new();
    for (group, families) in groups {
        let mut curves = Vec::new();
        for (_family, (label, points)) in families {
            let curve = Curve::from_points(label, points);
            summary.push(SaturationRow {
                group: group.to_string(),
                label: curve.label.clone(),
                throughput: curve.throughput(),
                saturation_offered: curve.saturation_offered(SATURATION_RATIO),
                zero_load_latency_ns: curve.zero_load_latency_ns(),
                points: curve.points.len(),
            });
            curves.push(curve);
        }
        out_groups.push(GroupCurves {
            group: group.to_string(),
            curves,
        });
    }

    // Goodput-dip series, ordered by hash (BTreeMap iteration).
    let mut goodput = Vec::new();
    for cell in &plan.cells {
        let Some(result) = results.get(&cell.hash) else {
            continue;
        };
        if let Some(g) = &result.goodput {
            let mut ts = TimeSeries::new(
                format!("goodput {} ({})", cell.hash, result.key),
                g.interval,
            );
            ts.push(
                "goodput_flits_per_cycle",
                g.samples
                    .iter()
                    .map(|&s| s as f64 / g.interval as f64)
                    .collect(),
            );
            goodput.push((cell.hash.clone(), ts));
        }
    }

    Aggregates {
        groups: out_groups,
        summary,
        goodput,
        cells_done: done,
        cells_total: plan.cells.len(),
    }
}

/// File-system-safe spelling of a group name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

// The vendored serde derive does not support generic/lifetime-carrying
// types, so the summary document owns its data (it is tiny).
#[derive(Serialize)]
struct SummaryDoc {
    campaign: String,
    cells_done: usize,
    cells_total: usize,
    saturation_ratio: f64,
    rows: Vec<SaturationRow>,
}

/// Export the aggregates under `out`: `curves/<group>.{dat,gp}`,
/// `curves/summary.json` and `goodput/goodput_<hash>.{json,dat,gp}`.
/// Called after every landed cell by the campaign binary, so partially
/// complete artifacts are always on disk and always consistent.
pub fn export_campaign(
    plan: &RunPlan,
    results: &BTreeMap<String, CellResult>,
    out: &Path,
) -> Result<Aggregates, String> {
    let agg = aggregate(plan, results);
    let curves_dir = out.join("curves");
    for g in &agg.groups {
        let name = sanitize(&g.group);
        write_figure(
            &curves_dir,
            &name,
            &format!("{} — {}", plan.name, g.group),
            &g.curves,
        )
        .map_err(|e| format!("cannot export curves for group {:?}: {e}", g.group))?;
    }
    std::fs::create_dir_all(&curves_dir)
        .map_err(|e| format!("cannot create {}: {e}", curves_dir.display()))?;
    let doc = SummaryDoc {
        campaign: plan.name.clone(),
        cells_done: agg.cells_done,
        cells_total: agg.cells_total,
        saturation_ratio: SATURATION_RATIO,
        rows: agg.summary.clone(),
    };
    let json = serde_json::to_string_pretty(&doc).expect("summary serialization is infallible");
    let summary_path = curves_dir.join("summary.json");
    std::fs::write(&summary_path, json + "\n")
        .map_err(|e| format!("cannot write {}: {e}", summary_path.display()))?;
    for (hash, ts) in &agg.goodput {
        write_time_series(&out.join("goodput"), &format!("goodput_{hash}"), ts)
            .map_err(|e| format!("cannot export goodput for cell {hash}: {e}"))?;
    }
    Ok(agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CampaignSpec;
    use regnet_netsim::{GoodputSeries, ReliabilityStats};

    fn fake(hash: &str, offered: f64, lat: f64) -> CellResult {
        CellResult {
            key: format!("k-{hash}"),
            hash: hash.to_string(),
            offered,
            accepted: offered * 0.99,
            avg_latency_ns: lat,
            p99_latency_ns: lat * 2.0,
            avg_total_latency_ns: lat * 1.1,
            avg_itbs_per_msg: 0.1,
            delivered: 100,
            generated: 101,
            delivered_payload_flits: 6400,
            window_cycles: 10_000,
            util_mean: 0.2,
            util_max: 0.4,
            digest: Some("0123456789abcdef".into()),
            digest_events: 100,
            reliability: ReliabilityStats::default(),
            goodput: Some(GoodputSeries {
                interval: 1000,
                samples: vec![640, 640, 320],
            }),
            wall_ms: 1,
            peak_rss_kb: 0,
        }
    }

    fn plan() -> RunPlan {
        CampaignSpec::from_json_str(
            r#"{
                "name": "agg-test",
                "sweeps": [
                    {"group": "curves", "topos": ["torus"], "schemes": ["ITB-RR", "UP/DOWN"],
                     "patterns": ["uniform"], "loads": [0.01, 0.02, 0.03]}
                ]
            }"#,
        )
        .unwrap()
        .expand()
        .unwrap()
    }

    #[test]
    fn aggregation_is_order_independent_and_sorted() {
        let plan = plan();
        // Results landing in two different completion orders.
        let mut fwd = BTreeMap::new();
        let mut rev = BTreeMap::new();
        for (i, cell) in plan.cells.iter().enumerate() {
            let r = fake(&cell.hash, cell.spec.load, 1000.0 + i as f64);
            fwd.insert(cell.hash.clone(), r);
        }
        for cell in plan.cells.iter().rev() {
            rev.insert(cell.hash.clone(), fwd[&cell.hash].clone());
        }
        let a = aggregate(&plan, &fwd);
        let b = aggregate(&plan, &rev);
        assert_eq!(a.cells_done, 6);
        assert_eq!(a.groups.len(), 1);
        // Two families (one per scheme), three load points each, sorted.
        assert_eq!(a.groups[0].curves.len(), 2);
        for (ca, cb) in a.groups[0].curves.iter().zip(&b.groups[0].curves) {
            assert_eq!(ca.label, cb.label);
            assert_eq!(ca.points, cb.points);
            let loads: Vec<f64> = ca.points.iter().map(|p| p.offered).collect();
            assert_eq!(loads, vec![0.01, 0.02, 0.03]);
        }
        assert_eq!(a.summary.len(), 2);
    }

    #[test]
    fn partial_results_stream() {
        let plan = plan();
        let mut partial = BTreeMap::new();
        let first = &plan.cells[0];
        partial.insert(
            first.hash.clone(),
            fake(&first.hash, first.spec.load, 900.0),
        );
        let agg = aggregate(&plan, &partial);
        assert_eq!(agg.cells_done, 1);
        assert_eq!(agg.cells_total, 6);
        assert_eq!(agg.groups[0].curves.len(), 1);
        assert_eq!(agg.summary[0].points, 1);
    }

    #[test]
    fn export_writes_expected_files() {
        let plan = plan();
        let mut results = BTreeMap::new();
        for cell in &plan.cells {
            results.insert(cell.hash.clone(), fake(&cell.hash, cell.spec.load, 1000.0));
        }
        let dir = std::env::temp_dir().join(format!("regnet-agg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let agg = export_campaign(&plan, &results, &dir).unwrap();
        assert_eq!(agg.cells_done, 6);
        assert!(dir.join("curves/curves.gp").exists());
        assert!(dir.join("curves/curves_0.dat").exists());
        assert!(dir.join("curves/summary.json").exists());
        let goodput_files = std::fs::read_dir(dir.join("goodput")).unwrap().count();
        assert_eq!(goodput_files, 6 * 3, "json+dat+gp per goodput cell");
        // The summary parses back with our own reader.
        let text = std::fs::read_to_string(dir.join("curves/summary.json")).unwrap();
        let doc = regnet_metrics::JsonValue::parse(&text).unwrap();
        assert_eq!(doc.get("cells_done").and_then(|v| v.as_f64()), Some(6.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
