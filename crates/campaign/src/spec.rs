//! Declarative campaign specifications.
//!
//! A campaign file is a JSON document describing a *grid* of simulation
//! cells — topology × scheme × pattern × load × seed × fault-plan — plus
//! per-campaign defaults. [`CampaignSpec::from_json_str`] parses it with
//! the workspace's own JSON reader ([`regnet_metrics::JsonValue`]), and
//! [`CampaignSpec::expand`] flattens every sweep into deduplicated
//! [`CellSpec`]s keyed by a deterministic config hash (see
//! [`CellSpec::canonical_key`]). The hash is what makes dedup and
//! checkpoint/resume correct: the same cell always hashes the same, no
//! matter how the JSON was ordered or which sweep produced it.

use regnet_core::RoutingScheme;
use regnet_metrics::JsonValue;
use regnet_netsim::{FaultPlan, Scheduler, SimConfig};
use regnet_topology::{gen, HostId, LinkId, SwitchId, Topology};
use regnet_traffic::PatternSpec;

/// Current campaign-file schema identifier.
pub const CAMPAIGN_SCHEMA: &str = "regnet-campaign-v1";

/// Topology selector: the paper's three named topologies, or a parametric
/// torus / express torus for scaled campaigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// 8×8 2-D torus, 8 hosts/switch (the paper's Figure 4).
    Torus,
    /// 8×8 2-D torus with express channels (Figure 5).
    Express,
    /// CPLANT, 50 switches / 400 hosts (Figure 6).
    Cplant,
    /// `torus:<rows>x<cols>:<hosts-per-switch>`.
    TorusCustom { rows: u32, cols: u32, hosts: u32 },
    /// `express:<rows>x<cols>:<hosts-per-switch>`.
    ExpressCustom { rows: u32, cols: u32, hosts: u32 },
}

impl TopoSpec {
    /// Parse the campaign-file spelling.
    pub fn parse(s: &str) -> Result<TopoSpec, String> {
        let s = s.trim();
        match s {
            "torus" => return Ok(TopoSpec::Torus),
            "express" => return Ok(TopoSpec::Express),
            "cplant" => return Ok(TopoSpec::Cplant),
            _ => {}
        }
        let (kind, rest) = s.split_once(':').ok_or_else(|| {
            format!("unknown topology {s:?} (torus|express|cplant|torus:RxC:H|express:RxC:H)")
        })?;
        let (grid, hosts) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad topology {s:?}: expected {kind}:<rows>x<cols>:<hosts>"))?;
        let (r, c) = grid
            .split_once('x')
            .ok_or_else(|| format!("bad topology grid {grid:?}: expected <rows>x<cols>"))?;
        let parse_u32 = |v: &str, what: &str| {
            v.trim()
                .parse::<u32>()
                .map_err(|_| format!("bad {what} {v:?} in topology {s:?}"))
        };
        let rows = parse_u32(r, "rows")?;
        let cols = parse_u32(c, "cols")?;
        let hosts = parse_u32(hosts, "hosts-per-switch")?;
        match kind {
            "torus" => Ok(TopoSpec::TorusCustom { rows, cols, hosts }),
            "express" => Ok(TopoSpec::ExpressCustom { rows, cols, hosts }),
            other => Err(format!("unknown topology family {other:?} in {s:?}")),
        }
    }

    /// Canonical spelling (stable; feeds the config hash).
    pub fn key(&self) -> String {
        match self {
            TopoSpec::Torus => "torus".into(),
            TopoSpec::Express => "express".into(),
            TopoSpec::Cplant => "cplant".into(),
            TopoSpec::TorusCustom { rows, cols, hosts } => format!("torus:{rows}x{cols}:{hosts}"),
            TopoSpec::ExpressCustom { rows, cols, hosts } => {
                format!("express:{rows}x{cols}:{hosts}")
            }
        }
    }

    /// Build the topology.
    pub fn build(&self) -> Result<Topology, String> {
        let built = match *self {
            TopoSpec::Torus => gen::torus_2d(8, 8, 8),
            TopoSpec::Express => gen::torus_2d_express(8, 8, 8),
            TopoSpec::Cplant => gen::cplant(),
            TopoSpec::TorusCustom { rows, cols, hosts } => {
                gen::torus_2d(rows as usize, cols as usize, hosts as usize)
            }
            TopoSpec::ExpressCustom { rows, cols, hosts } => {
                gen::torus_2d_express(rows as usize, cols as usize, hosts as usize)
            }
        };
        built.map_err(|e| format!("cannot build topology {}: {e}", self.key()))
    }
}

/// Parse a routing scheme from its paper label or a relaxed spelling
/// (`UP/DOWN`, `up-down`, `itb-rr`, `ITB_RR`, …).
pub fn parse_scheme(s: &str) -> Result<RoutingScheme, String> {
    let norm: String = s
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    match norm.as_str() {
        "updown" | "ud" => Ok(RoutingScheme::UpDown),
        "itbsp" => Ok(RoutingScheme::ItbSp),
        "itbrr" => Ok(RoutingScheme::ItbRr),
        "itbrnd" | "itbrandom" => Ok(RoutingScheme::ItbRandom),
        _ => Err(format!(
            "unknown routing scheme {s:?} (UP/DOWN|ITB-SP|ITB-RR|ITB-RND)"
        )),
    }
}

/// Parse a traffic pattern: `uniform`, `bit-reversal`, `transpose`,
/// `complement`, `local:<max-switch-dist>`, `hotspot:<fraction>@<host>`.
pub fn parse_pattern(s: &str) -> Result<PatternSpec, String> {
    let s = s.trim();
    match s {
        "uniform" => return Ok(PatternSpec::Uniform),
        "bit-reversal" | "bitreversal" | "bitrev" => return Ok(PatternSpec::BitReversal),
        "transpose" => return Ok(PatternSpec::Transpose),
        "complement" => return Ok(PatternSpec::Complement),
        _ => {}
    }
    if let Some(d) = s.strip_prefix("local:") {
        let max_switch_dist = d
            .trim()
            .parse::<u16>()
            .map_err(|_| format!("bad local radius in pattern {s:?}"))?;
        return Ok(PatternSpec::Local { max_switch_dist });
    }
    if let Some(rest) = s.strip_prefix("hotspot:") {
        let (frac, host) = rest
            .split_once('@')
            .ok_or_else(|| format!("bad pattern {s:?}: expected hotspot:<fraction>@<host>"))?;
        let fraction = frac
            .trim()
            .parse::<f64>()
            .map_err(|_| format!("bad hotspot fraction in pattern {s:?}"))?;
        if !(0.0..=1.0).contains(&fraction) {
            return Err(format!("hotspot fraction {fraction} out of [0,1] in {s:?}"));
        }
        let host = host
            .trim()
            .trim_start_matches(['H', 'h'])
            .parse::<u32>()
            .map_err(|_| format!("bad hotspot host in pattern {s:?}"))?;
        return Ok(PatternSpec::Hotspot {
            fraction,
            host: HostId(host),
        });
    }
    Err(format!(
        "unknown pattern {s:?} (uniform|bit-reversal|transpose|complement|local:<d>|hotspot:<f>@<host>)"
    ))
}

/// Canonical spelling of a pattern (stable; feeds the config hash).
pub fn pattern_key(p: &PatternSpec) -> String {
    match p {
        PatternSpec::Uniform => "uniform".into(),
        PatternSpec::BitReversal => "bit-reversal".into(),
        PatternSpec::Transpose => "transpose".into(),
        PatternSpec::Complement => "complement".into(),
        PatternSpec::Local { max_switch_dist } => format!("local:{max_switch_dist}"),
        PatternSpec::Hotspot { fraction, host } => format!("hotspot:{fraction}@{}", host.0),
    }
}

/// One scripted fault event of a cell's fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultSpecEvent {
    pub cycle: u64,
    pub kind: FaultKind,
    pub id: u32,
}

/// Fault action kinds supported in campaign files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    FailLink,
    RepairLink,
    FailSwitch,
    RepairSwitch,
    FailHost,
    RepairHost,
}

impl FaultKind {
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::FailLink => "fail_link",
            FaultKind::RepairLink => "repair_link",
            FaultKind::FailSwitch => "fail_switch",
            FaultKind::RepairSwitch => "repair_switch",
            FaultKind::FailHost => "fail_host",
            FaultKind::RepairHost => "repair_host",
        }
    }

    pub fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "fail_link" => Some(FaultKind::FailLink),
            "repair_link" => Some(FaultKind::RepairLink),
            "fail_switch" => Some(FaultKind::FailSwitch),
            "repair_switch" => Some(FaultKind::RepairSwitch),
            "fail_host" => Some(FaultKind::FailHost),
            "repair_host" => Some(FaultKind::RepairHost),
            _ => None,
        }
    }
}

/// A named, scripted fault plan for a cell. The label is presentation
/// only; the config hash covers the (canonically ordered) events, so two
/// labels over the same events are the same cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    pub label: String,
    /// Events, canonically sorted by (cycle, kind, id).
    pub events: Vec<FaultSpecEvent>,
}

impl FaultSpec {
    pub fn new(label: impl Into<String>, mut events: Vec<FaultSpecEvent>) -> FaultSpec {
        events.sort();
        FaultSpec {
            label: label.into(),
            events,
        }
    }

    /// Canonical spelling: `fail_link:3@0+repair_link:3@4000`.
    pub fn key(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("{}:{}@{}", e.kind.name(), e.id, e.cycle))
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Parse the canonical spelling (used by `--what-if fault=` queries).
    pub fn parse(label: &str, s: &str) -> Result<FaultSpec, String> {
        let mut events = Vec::new();
        for part in s.split('+').filter(|p| !p.trim().is_empty()) {
            let (kind, rest) = part
                .trim()
                .split_once(':')
                .ok_or_else(|| format!("bad fault event {part:?}: expected <kind>:<id>@<cycle>"))?;
            let kind = FaultKind::parse(kind)
                .ok_or_else(|| format!("unknown fault kind {kind:?} in {part:?}"))?;
            let (id, cycle) = rest
                .split_once('@')
                .ok_or_else(|| format!("bad fault event {part:?}: expected <kind>:<id>@<cycle>"))?;
            let id = id
                .trim()
                .parse::<u32>()
                .map_err(|_| format!("bad id in fault event {part:?}"))?;
            let cycle = cycle
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad cycle in fault event {part:?}"))?;
            events.push(FaultSpecEvent { cycle, kind, id });
        }
        if events.is_empty() {
            return Err(format!("fault spec {s:?} has no events"));
        }
        Ok(FaultSpec::new(label, events))
    }

    /// Lower into the simulator's [`FaultPlan`].
    pub fn to_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for e in &self.events {
            match e.kind {
                FaultKind::FailLink => plan.fail_link(e.cycle, LinkId(e.id)),
                FaultKind::RepairLink => plan.repair_link(e.cycle, LinkId(e.id)),
                FaultKind::FailSwitch => plan.fail_switch(e.cycle, SwitchId(e.id)),
                FaultKind::RepairSwitch => plan.repair_switch(e.cycle, SwitchId(e.id)),
                FaultKind::FailHost => plan.fail_host(e.cycle, HostId(e.id)),
                FaultKind::RepairHost => plan.repair_host(e.cycle, HostId(e.id)),
            };
        }
        plan
    }
}

/// One fully specified simulation cell: everything that determines the
/// run's results, and nothing that doesn't.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    pub topo: TopoSpec,
    pub scheme: RoutingScheme,
    pub pattern: PatternSpec,
    /// Offered load, flits/ns/switch.
    pub load: f64,
    pub seed: u64,
    pub warmup_cycles: u64,
    pub measure_cycles: u64,
    pub payload_flits: usize,
    /// Cycle-loop driver. Part of the key so switching drivers re-runs
    /// cells (all drivers are bit-identical, but the spec is the spec).
    pub scheduler: Scheduler,
    /// Goodput time-series sampling interval; observers do not perturb
    /// results, but a cached cell without the series cannot serve a
    /// campaign that wants it, so it is part of the key.
    pub goodput_interval: Option<u64>,
    /// Override of [`SimConfig::reconfig_latency_cycles`] (smoke campaigns
    /// shrink it so reconfiguration completes inside tiny windows).
    pub reconfig_latency_cycles: Option<u64>,
    pub faults: Option<FaultSpec>,
}

/// Scheduler spelling for the config hash (`parallel` carries its shard
/// count: shard count determines nothing about the results, but it *is*
/// part of the declared spec).
pub fn scheduler_key(s: Scheduler) -> String {
    match s.parallel_threads() {
        Some(n) => format!("parallel:{n}"),
        None => s.label().to_string(),
    }
}

impl CellSpec {
    /// Canonical key: a fixed-order rendering of every result-relevant
    /// field. Floats use Rust's shortest-roundtrip formatting, which is
    /// injective over distinct values, so distinct loads always produce
    /// distinct keys. Field order in the *JSON file* is irrelevant by
    /// construction — parsing goes through the struct.
    pub fn canonical_key(&self) -> String {
        format!(
            "topo={};scheme={};pattern={};load={};seed={};warmup={};measure={};payload={};sched={};goodput={};reconfig={};faults={}",
            self.topo.key(),
            self.scheme.label(),
            pattern_key(&self.pattern),
            self.load,
            self.seed,
            self.warmup_cycles,
            self.measure_cycles,
            self.payload_flits,
            scheduler_key(self.scheduler),
            self.goodput_interval.map_or("off".into(), |i| i.to_string()),
            self.reconfig_latency_cycles
                .map_or("default".into(), |i| i.to_string()),
            self.faults.as_ref().map_or("none".into(), |f| f.key()),
        )
    }

    /// FNV-1a 64 over the canonical key — the cell's identity for dedup,
    /// checkpoint file names and resume.
    pub fn config_hash(&self) -> u64 {
        fnv1a64(self.canonical_key().as_bytes())
    }

    /// The config hash as the 16-hex-digit spelling used for file names.
    pub fn hash_hex(&self) -> String {
        format!("{:016x}", self.config_hash())
    }
}

/// FNV-1a 64-bit (same family the trace digest uses).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Campaign-wide cell defaults; every sweep may override any of them.
#[derive(Debug, Clone)]
pub struct CellDefaults {
    pub warmup_cycles: u64,
    pub measure_cycles: u64,
    pub seed: u64,
    pub payload_flits: usize,
    pub scheduler: Scheduler,
    pub goodput_interval: Option<u64>,
    pub reconfig_latency_cycles: Option<u64>,
}

impl Default for CellDefaults {
    fn default() -> Self {
        CellDefaults {
            warmup_cycles: 60_000,
            measure_cycles: 150_000,
            seed: 1,
            payload_flits: SimConfig::default().payload_flits,
            scheduler: Scheduler::default(),
            goodput_interval: None,
            reconfig_latency_cycles: None,
        }
    }
}

/// One sweep: the cross product of its axes, with optional overrides of
/// the campaign defaults.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Aggregation group: cells of one group land in one curve family.
    pub group: String,
    pub topos: Vec<TopoSpec>,
    pub schemes: Vec<RoutingScheme>,
    pub patterns: Vec<PatternSpec>,
    pub loads: Vec<f64>,
    pub seeds: Vec<u64>,
    pub schedulers: Vec<Scheduler>,
    /// Fault plans; `None` entries are fault-free cells. Defaults to one
    /// fault-free entry.
    pub faults: Vec<Option<FaultSpec>>,
    pub defaults: CellDefaults,
}

/// A parsed campaign file.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    pub name: String,
    pub defaults: CellDefaults,
    pub sweeps: Vec<Sweep>,
}

/// One deduplicated cell of the expanded plan, with every group that
/// produced it (overlapping sweeps merge here).
#[derive(Debug, Clone)]
pub struct PlannedCell {
    pub spec: CellSpec,
    pub hash: String,
    pub key: String,
    pub groups: Vec<String>,
}

/// The expanded, deduplicated campaign: the work-queue's input.
#[derive(Debug, Clone)]
pub struct RunPlan {
    pub name: String,
    /// Cells in first-occurrence order of the campaign file.
    pub cells: Vec<PlannedCell>,
}

impl RunPlan {
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl CampaignSpec {
    /// Parse a campaign file.
    pub fn from_json_str(text: &str) -> Result<CampaignSpec, String> {
        let doc = JsonValue::parse(text).map_err(|e| format!("campaign file is not JSON: {e}"))?;
        if let Some(schema) = doc.get("schema").and_then(|v| v.as_str()) {
            if schema != CAMPAIGN_SCHEMA {
                return Err(format!(
                    "unsupported campaign schema {schema:?} (this build reads {CAMPAIGN_SCHEMA:?})"
                ));
            }
        }
        let name = doc
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("campaign file needs a string \"name\"")?
            .to_string();
        let defaults = parse_defaults(doc.get("defaults"), &CellDefaults::default())?;
        let sweeps_json = doc
            .get("sweeps")
            .and_then(|v| v.as_array())
            .ok_or("campaign file needs a \"sweeps\" array")?;
        if sweeps_json.is_empty() {
            return Err("campaign file has no sweeps".into());
        }
        let mut sweeps = Vec::new();
        for (i, s) in sweeps_json.iter().enumerate() {
            sweeps.push(parse_sweep(s, &defaults, i)?);
        }
        Ok(CampaignSpec {
            name,
            defaults,
            sweeps,
        })
    }

    /// Expand every sweep into its cell grid and deduplicate by config
    /// hash (first occurrence wins the position; group memberships merge).
    pub fn expand(&self) -> Result<RunPlan, String> {
        let mut order: Vec<String> = Vec::new();
        let mut by_hash: std::collections::HashMap<String, PlannedCell> =
            std::collections::HashMap::new();
        for sweep in &self.sweeps {
            for topo in &sweep.topos {
                for scheme in &sweep.schemes {
                    for pattern in &sweep.patterns {
                        for &load in &sweep.loads {
                            if load.is_nan() || load <= 0.0 {
                                return Err(format!(
                                    "sweep {:?}: load {load} must be positive",
                                    sweep.group
                                ));
                            }
                            for &seed in &sweep.seeds {
                                for &scheduler in &sweep.schedulers {
                                    for fault in &sweep.faults {
                                        let spec = CellSpec {
                                            topo: *topo,
                                            scheme: *scheme,
                                            pattern: *pattern,
                                            load,
                                            seed,
                                            warmup_cycles: sweep.defaults.warmup_cycles,
                                            measure_cycles: sweep.defaults.measure_cycles,
                                            payload_flits: sweep.defaults.payload_flits,
                                            scheduler,
                                            goodput_interval: sweep.defaults.goodput_interval,
                                            reconfig_latency_cycles: sweep
                                                .defaults
                                                .reconfig_latency_cycles,
                                            faults: fault.clone(),
                                        };
                                        let hash = spec.hash_hex();
                                        match by_hash.entry(hash.clone()) {
                                            std::collections::hash_map::Entry::Occupied(mut e) => {
                                                let cell = e.get_mut();
                                                if !cell.groups.contains(&sweep.group) {
                                                    cell.groups.push(sweep.group.clone());
                                                }
                                            }
                                            std::collections::hash_map::Entry::Vacant(e) => {
                                                let key = spec.canonical_key();
                                                e.insert(PlannedCell {
                                                    spec,
                                                    hash: hash.clone(),
                                                    key,
                                                    groups: vec![sweep.group.clone()],
                                                });
                                                order.push(hash);
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let cells = order
            .into_iter()
            .map(|h| by_hash.remove(&h).expect("ordered hash is in the map"))
            .collect();
        Ok(RunPlan {
            name: self.name.clone(),
            cells,
        })
    }
}

fn get_u64(obj: &JsonValue, key: &str, what: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("{what}: {key:?} must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("{what}: {key:?} must be a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

fn parse_defaults(v: Option<&JsonValue>, base: &CellDefaults) -> Result<CellDefaults, String> {
    let mut d = base.clone();
    let Some(v) = v else { return Ok(d) };
    let what = "defaults";
    if let Some(w) = get_u64(v, "warmup_cycles", what)? {
        d.warmup_cycles = w;
    }
    if let Some(m) = get_u64(v, "measure_cycles", what)? {
        d.measure_cycles = m;
    }
    if let Some(s) = get_u64(v, "seed", what)? {
        d.seed = s;
    }
    if let Some(p) = get_u64(v, "payload_flits", what)? {
        d.payload_flits = p as usize;
    }
    if let Some(g) = get_u64(v, "goodput_interval", what)? {
        d.goodput_interval = Some(g);
    }
    if let Some(r) = get_u64(v, "reconfig_latency_cycles", what)? {
        d.reconfig_latency_cycles = Some(r);
    }
    if let Some(s) = v.get("scheduler") {
        let s = s
            .as_str()
            .ok_or("defaults: \"scheduler\" must be a string")?;
        d.scheduler =
            Scheduler::parse(s).ok_or_else(|| format!("defaults: unknown scheduler {s:?}"))?;
    }
    Ok(d)
}

fn string_list<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<Vec<&'a str>, String> {
    let arr = v
        .get(key)
        .and_then(|a| a.as_array())
        .ok_or_else(|| format!("{what}: needs a {key:?} array"))?;
    arr.iter()
        .map(|s| {
            s.as_str()
                .ok_or_else(|| format!("{what}: {key:?} entries must be strings"))
        })
        .collect()
}

fn parse_sweep(v: &JsonValue, campaign: &CellDefaults, index: usize) -> Result<Sweep, String> {
    let group = v
        .get("group")
        .and_then(|g| g.as_str())
        .map(String::from)
        .unwrap_or_else(|| format!("sweep{index}"));
    let what = format!("sweep {group:?}");
    let defaults = parse_defaults(Some(v), campaign).map_err(|e| format!("{what}: {e}"))?;

    let topos = string_list(v, "topos", &what)?
        .into_iter()
        .map(TopoSpec::parse)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{what}: {e}"))?;
    let schemes = string_list(v, "schemes", &what)?
        .into_iter()
        .map(parse_scheme)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{what}: {e}"))?;
    let patterns = string_list(v, "patterns", &what)?
        .into_iter()
        .map(parse_pattern)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("{what}: {e}"))?;
    let loads = v
        .get("loads")
        .and_then(|a| a.as_array())
        .ok_or_else(|| format!("{what}: needs a \"loads\" array"))?
        .iter()
        .map(|l| {
            l.as_f64()
                .ok_or_else(|| format!("{what}: loads must be numbers"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = match v.get("seeds") {
        None => vec![defaults.seed],
        Some(arr) => arr
            .as_array()
            .ok_or_else(|| format!("{what}: \"seeds\" must be an array"))?
            .iter()
            .map(|s| {
                s.as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("{what}: seeds must be non-negative integers"))
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    let schedulers = match v.get("schedulers") {
        None => vec![defaults.scheduler],
        Some(_) => string_list(v, "schedulers", &what)?
            .into_iter()
            .map(|s| Scheduler::parse(s).ok_or_else(|| format!("{what}: unknown scheduler {s:?}")))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let faults = match v.get("faults") {
        None => vec![None],
        Some(arr) => {
            let arr = arr
                .as_array()
                .ok_or_else(|| format!("{what}: \"faults\" must be an array"))?;
            let mut out = Vec::new();
            for f in arr {
                out.push(parse_fault(f, &what)?);
            }
            if out.is_empty() {
                vec![None]
            } else {
                out
            }
        }
    };
    for axis in [
        ("topos", topos.is_empty()),
        ("schemes", schemes.is_empty()),
        ("patterns", patterns.is_empty()),
        ("loads", loads.is_empty()),
        ("seeds", seeds.is_empty()),
        ("schedulers", schedulers.is_empty()),
    ] {
        if axis.1 {
            return Err(format!("{what}: axis {:?} is empty", axis.0));
        }
    }
    Ok(Sweep {
        group,
        topos,
        schemes,
        patterns,
        loads,
        seeds,
        schedulers,
        faults,
        defaults,
    })
}

fn parse_fault(v: &JsonValue, what: &str) -> Result<Option<FaultSpec>, String> {
    if let Some(s) = v.as_str() {
        // String form: "none" or the canonical "+"-joined event list.
        if s == "none" {
            return Ok(None);
        }
        return FaultSpec::parse(s, s).map(Some);
    }
    let label = v
        .get("label")
        .and_then(|l| l.as_str())
        .unwrap_or("fault")
        .to_string();
    let events_json = v
        .get("events")
        .and_then(|e| e.as_array())
        .ok_or_else(|| format!("{what}: fault objects need an \"events\" array"))?;
    let mut events = Vec::new();
    for e in events_json {
        let cycle = get_u64(e, "cycle", what)?
            .ok_or_else(|| format!("{what}: fault events need a \"cycle\""))?;
        let mut found = None;
        for kind in [
            FaultKind::FailLink,
            FaultKind::RepairLink,
            FaultKind::FailSwitch,
            FaultKind::RepairSwitch,
            FaultKind::FailHost,
            FaultKind::RepairHost,
        ] {
            if let Some(id) = get_u64(e, kind.name(), what)? {
                found = Some(FaultSpecEvent {
                    cycle,
                    kind,
                    id: id as u32,
                });
                break;
            }
        }
        events.push(found.ok_or_else(|| {
            format!("{what}: fault event needs one of fail_link/repair_link/fail_switch/repair_switch/fail_host/repair_host")
        })?);
    }
    if events.is_empty() {
        return Err(format!("{what}: fault {label:?} has no events"));
    }
    Ok(Some(FaultSpec::new(label, events)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellSpec {
        CellSpec {
            topo: TopoSpec::Torus,
            scheme: RoutingScheme::ItbRr,
            pattern: PatternSpec::Uniform,
            load: 0.015,
            seed: 8,
            warmup_cycles: 60_000,
            measure_cycles: 150_000,
            payload_flits: 512,
            scheduler: Scheduler::ActiveSet,
            goodput_interval: None,
            reconfig_latency_cycles: None,
            faults: None,
        }
    }

    #[test]
    fn topo_parse_roundtrip() {
        for s in ["torus", "express", "cplant", "torus:4x4:2", "express:6x6:3"] {
            let t = TopoSpec::parse(s).unwrap();
            assert_eq!(t.key(), s);
        }
        assert!(TopoSpec::parse("mesh").is_err());
        assert!(TopoSpec::parse("torus:4y4:2").is_err());
        assert!(TopoSpec::parse("torus:4x4").is_err());
    }

    #[test]
    fn scheme_and_pattern_parse() {
        assert_eq!(parse_scheme("UP/DOWN").unwrap(), RoutingScheme::UpDown);
        assert_eq!(parse_scheme("itb-rr").unwrap(), RoutingScheme::ItbRr);
        assert_eq!(parse_scheme("ITB_SP").unwrap(), RoutingScheme::ItbSp);
        assert!(parse_scheme("dimension-order").is_err());
        assert_eq!(parse_pattern("uniform").unwrap(), PatternSpec::Uniform);
        assert_eq!(
            parse_pattern("local:3").unwrap(),
            PatternSpec::Local { max_switch_dist: 3 }
        );
        let h = parse_pattern("hotspot:0.1@37").unwrap();
        assert_eq!(
            h,
            PatternSpec::Hotspot {
                fraction: 0.1,
                host: HostId(37)
            }
        );
        assert_eq!(pattern_key(&h), "hotspot:0.1@37");
        assert!(parse_pattern("hotspot:2.0@1").is_err());
        assert!(parse_pattern("nearest").is_err());
    }

    #[test]
    fn fault_spec_canonical_order_and_roundtrip() {
        let a = FaultSpec::new(
            "x",
            vec![
                FaultSpecEvent {
                    cycle: 100,
                    kind: FaultKind::RepairLink,
                    id: 3,
                },
                FaultSpecEvent {
                    cycle: 0,
                    kind: FaultKind::FailLink,
                    id: 3,
                },
            ],
        );
        assert_eq!(a.key(), "fail_link:3@0+repair_link:3@100");
        let b = FaultSpec::parse("y", &a.key()).unwrap();
        assert_eq!(a.events, b.events);
        assert_eq!(a.key(), b.key());
        assert_eq!(b.to_plan().len(), 2);
        assert!(FaultSpec::parse("z", "melt_link:3@0").is_err());
    }

    #[test]
    fn hash_ignores_fault_label_but_not_events() {
        let mut a = cell();
        let mut b = cell();
        a.faults = Some(FaultSpec::parse("first", "fail_link:3@0").unwrap());
        b.faults = Some(FaultSpec::parse("second", "fail_link:3@0").unwrap());
        assert_eq!(a.config_hash(), b.config_hash());
        b.faults = Some(FaultSpec::parse("second", "fail_link:4@0").unwrap());
        assert_ne!(a.config_hash(), b.config_hash());
    }

    #[test]
    fn hash_distinguishes_every_field() {
        let base = cell();
        let mut seen = std::collections::HashSet::new();
        seen.insert(base.config_hash());
        let variants = [
            CellSpec {
                topo: TopoSpec::Express,
                ..base.clone()
            },
            CellSpec {
                scheme: RoutingScheme::UpDown,
                ..base.clone()
            },
            CellSpec {
                pattern: PatternSpec::BitReversal,
                ..base.clone()
            },
            CellSpec {
                load: 0.0151,
                ..base.clone()
            },
            CellSpec {
                seed: 9,
                ..base.clone()
            },
            CellSpec {
                warmup_cycles: 60_001,
                ..base.clone()
            },
            CellSpec {
                measure_cycles: 150_001,
                ..base.clone()
            },
            CellSpec {
                payload_flits: 32,
                ..base.clone()
            },
            CellSpec {
                scheduler: Scheduler::EventDriven,
                ..base.clone()
            },
            CellSpec {
                goodput_interval: Some(1000),
                ..base.clone()
            },
            CellSpec {
                reconfig_latency_cycles: Some(2000),
                ..base.clone()
            },
        ];
        for v in variants {
            assert!(
                seen.insert(v.config_hash()),
                "hash collision for {}",
                v.canonical_key()
            );
        }
    }

    #[test]
    fn fnv_reference_vector() {
        // FNV-1a 64 of the empty string and of "a" (published constants).
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn expand_dedups_across_sweeps() {
        let spec = CampaignSpec::from_json_str(
            r#"{
                "schema": "regnet-campaign-v1",
                "name": "t",
                "defaults": {"warmup_cycles": 100, "measure_cycles": 200, "seed": 3},
                "sweeps": [
                    {"group": "a", "topos": ["torus:4x4:2"], "schemes": ["ITB-RR", "UP/DOWN"],
                     "patterns": ["uniform"], "loads": [0.01, 0.02]},
                    {"group": "b", "topos": ["torus:4x4:2"], "schemes": ["ITB-RR"],
                     "patterns": ["uniform"], "loads": [0.02, 0.03]}
                ]
            }"#,
        )
        .unwrap();
        let plan = spec.expand().unwrap();
        // a: 2 schemes × 2 loads = 4; b adds ITB-RR@0.03 only (0.02 dedups).
        assert_eq!(plan.len(), 5);
        let shared = plan
            .cells
            .iter()
            .find(|c| c.spec.load == 0.02 && c.spec.scheme == RoutingScheme::ItbRr)
            .unwrap();
        assert_eq!(shared.groups, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn parse_rejects_bad_files() {
        assert!(CampaignSpec::from_json_str("{").is_err());
        assert!(CampaignSpec::from_json_str(r#"{"name": "x"}"#).is_err());
        assert!(CampaignSpec::from_json_str(r#"{"name": "x", "sweeps": []}"#).is_err());
        let bad_scheme = r#"{"name": "x", "sweeps": [
            {"topos": ["torus"], "schemes": ["XY"], "patterns": ["uniform"], "loads": [0.01]}
        ]}"#;
        assert!(CampaignSpec::from_json_str(bad_scheme).is_err());
        let bad_schema = r#"{"schema": "regnet-campaign-v9", "name": "x", "sweeps": [
            {"topos": ["torus"], "schemes": ["ITB-RR"], "patterns": ["uniform"], "loads": [0.01]}
        ]}"#;
        assert!(CampaignSpec::from_json_str(bad_schema).is_err());
        let zero_load = r#"{"name": "x", "sweeps": [
            {"topos": ["torus"], "schemes": ["ITB-RR"], "patterns": ["uniform"], "loads": [0.0]}
        ]}"#;
        assert!(CampaignSpec::from_json_str(zero_load)
            .unwrap()
            .expand()
            .is_err());
    }

    #[test]
    fn sweep_overrides_campaign_defaults() {
        let spec = CampaignSpec::from_json_str(
            r#"{
                "name": "t",
                "defaults": {"warmup_cycles": 100, "measure_cycles": 200, "payload_flits": 64},
                "sweeps": [
                    {"group": "a", "topos": ["torus"], "schemes": ["ITB-RR"],
                     "patterns": ["uniform"], "loads": [0.01],
                     "measure_cycles": 999, "scheduler": "event"}
                ]
            }"#,
        )
        .unwrap();
        let plan = spec.expand().unwrap();
        assert_eq!(plan.cells[0].spec.warmup_cycles, 100);
        assert_eq!(plan.cells[0].spec.measure_cycles, 999);
        assert_eq!(plan.cells[0].spec.payload_flits, 64);
        assert_eq!(plan.cells[0].spec.scheduler, Scheduler::EventDriven);
    }
}
