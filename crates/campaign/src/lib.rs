//! Campaign orchestrator: thousands of simulator runs as the unit of work.
//!
//! The paper's figures are *sweeps* — topology × scheme × load × seed
//! (× fault plan). This crate turns such a sweep into a first-class
//! artifact:
//!
//! * [`spec`] — a declarative JSON campaign file parsed into a
//!   [`CampaignSpec`], expanded into deduplicated [`CellSpec`] cells
//!   keyed by a deterministic FNV-1a config hash.
//! * [`cell`] — runs one cell through [`regnet_netsim::Experiment`] and
//!   captures a serializable [`CellResult`] (RunStats + reliability +
//!   run digest + utilization + goodput series).
//! * [`store`] — a checkpointing [`ResultStore`]: one JSON file per cell
//!   named by its config hash, written atomically (tmp + rename), so an
//!   interrupted campaign resumes by skipping already-hashed cells.
//! * [`runner`] — the work-queue that fans pending cells across a
//!   `std::thread::scope` worker pool sized by
//!   [`regnet_netsim::threads`], streaming completions back in
//!   completion order while keeping aggregation deterministic.
//! * [`aggregate`] — derived curves (latency-vs-load per group,
//!   saturation summary, goodput-dip time series) exported through
//!   `regnet_metrics` as `.dat`/`.gp`/JSON.
//! * [`whatif`] — targeted saturation-point bisection ("what's the
//!   saturation load for this topology+scheme+fault?") that caches every
//!   probe through the same store instead of running a full grid.
//! * [`progress`] — the shared stderr progress/ETA printer also used by
//!   the `fault_sweep` and `bench_report` binaries.
//! * [`status`] — the live `status.json` protocol: an atomically
//!   republished snapshot of counts, per-worker state, ETA and recent
//!   errors, rendered by `campaign --watch` and validated in CI.
//!
//! Determinism contract: a cell's results depend only on its spec (the
//! simulator is bit-deterministic for a given seed on every scheduler),
//! so the store keyed by config hash is invariant to worker count and
//! completion order, and a killed-then-resumed campaign converges to the
//! same results directory as an uninterrupted one.

pub mod aggregate;
pub mod cell;
pub mod progress;
pub mod runner;
pub mod spec;
pub mod status;
pub mod store;
pub mod whatif;

pub use aggregate::{export_campaign, Aggregates};
pub use cell::{run_cell, CellResult};
pub use progress::Progress;
pub use runner::{run_plan, CellDone, RunOutcome, RunnerEvent, RunnerOptions};
pub use spec::{
    fnv1a64, parse_pattern, parse_scheme, pattern_key, scheduler_key, CampaignSpec, CellDefaults,
    CellSpec, FaultKind, FaultSpec, FaultSpecEvent, PlannedCell, RunPlan, Sweep, TopoSpec,
    CAMPAIGN_SCHEMA,
};
pub use status::{
    render_status, validate_status_json, StatusBoard, StatusSnapshot, StatusWriter, WorkerStatus,
    STATUS_SCHEMA,
};
pub use store::ResultStore;
pub use whatif::{what_if, WhatIfQuery, WhatIfResult};
